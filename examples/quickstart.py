"""Quickstart: defend a churning network against a Sybil flood.

Runs Ergo on Gnutella-like churn while an adversary burns 2,000
resource units per second on entrance challenges, then prints the
cost asymmetry and verifies the DefID guarantee.

    python examples/quickstart.py
"""

import repro


def main() -> None:
    rngs = repro.RngRegistry(seed=42)
    network = repro.churn.NETWORKS["gnutella"]
    horizon = 2_000.0

    scenario = network.scenario(
        horizon=horizon, rng=rngs.stream("churn"), n0=2_000
    )
    defense = repro.Ergo()
    adversary = repro.GreedyJoinAdversary(rate=2_000.0)

    sim = repro.Simulation(
        repro.SimulationConfig(horizon=horizon),
        defense,
        scenario.events,
        adversary=adversary,
        rngs=rngs,
        initial_members=scenario.initial,
    )
    result = sim.run()

    print("=== Ergo vs a 2,000/s Sybil flood (Gnutella churn) ===")
    print(f"simulated time        : {result.horizon:,.0f} s")
    print(f"good spend rate  (A)  : {result.good_spend_rate:,.1f} /s")
    print(f"adversary rate   (T)  : {result.adversary_spend_rate:,.1f} /s")
    print(f"asymmetry        (T/A): {result.advantage:,.2f}x in our favor")
    print(f"max bad fraction      : {result.max_bad_fraction:.4f} (< 1/6 required)")
    print(f"purges                : {defense.purge_count}")
    print(f"good join rate est. J̃ : {defense.estimate:.3f} /s")
    print()
    breakdown = result.metrics.good.by_category()
    print("good-ID cost breakdown:")
    for category, amount in sorted(breakdown.items()):
        print(f"  {category:<10} {amount:>12,.0f}")
    assert result.max_bad_fraction < 1 / 6, "DefID invariant violated!"
    print("\nDefID invariant held: the Sybil fraction stayed below 1/6.")


if __name__ == "__main__":
    main()
