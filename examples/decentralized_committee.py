"""Running Ergo without a server: committees and Byzantine-tolerant SMR.

Part 1 runs DecentralizedErgo under attack and reports the Lemma 18
invariants across every elected committee.  Part 2 demonstrates the
synchronous SMR layer tolerating equivocating and flipping replicas.

    python examples/decentralized_committee.py
"""

import repro
from repro.analysis.plotting import format_table
from repro.committee.decentralized import DecentralizedErgo
from repro.committee.smr import Behaviour, Replica, ReplicatedLog


def committee_demo() -> None:
    rngs = repro.RngRegistry(seed=3)
    network = repro.churn.NETWORKS["gnutella"]
    horizon = 1_000.0
    scenario = network.scenario(horizon=horizon, rng=rngs.stream("churn"), n0=2_000)
    defense = DecentralizedErgo()
    sim = repro.Simulation(
        repro.SimulationConfig(horizon=horizon),
        defense,
        scenario.events,
        adversary=repro.GreedyJoinAdversary(rate=5_000.0),
        rngs=rngs,
        initial_members=scenario.initial,
    )
    result = sim.run()

    history = defense.committee_history
    fractions = [r.committee.good_fraction for r in history]
    sizes = [r.committee.size for r in history]
    print("=== Part 1: committee-run Ergo under a 5,000/s flood ===")
    print(f"elections held        : {len(history)}")
    print(f"committee sizes       : {min(sizes)}..{max(sizes)} (C*log N)")
    print(f"min good fraction     : {min(fractions):.3f}")
    print(f"all >= 7/8 good       : {defense.all_committees_meet_lemma18()}")
    print(f"system max bad frac   : {result.max_bad_fraction:.4f}")
    print()


def smr_demo() -> None:
    print("=== Part 2: SMR with Byzantine committee members ===")
    replicas = [Replica(ident=f"good{i}") for i in range(7)]
    replicas.append(Replica(ident="equivocator", behaviour=Behaviour.EQUIVOCATE))
    replicas.append(Replica(ident="flipper", behaviour=Behaviour.FLIP))
    replicas.append(Replica(ident="mute", behaviour=Behaviour.SILENT))
    log = ReplicatedLog(replicas)

    operations = [f"join(id#{i})" for i in range(1, 7)]
    rows = []
    for op in operations:
        committed = log.propose(op)
        rows.append([op, committed if committed else "(round skipped)"])
    print(format_table(["proposed", "committed"], rows))
    print(f"\ngood replicas agree on the log: {log.good_logs_agree()}")
    print(f"committed log: {log.committed_log()}")


def main() -> None:
    committee_demo()
    smr_demo()


if __name__ == "__main__":
    main()
