"""Bitcoin-like network under escalating attack: Ergo vs the baselines.

Sweeps the adversary's spend rate T over three orders of magnitude on
the synthetic Bitcoin churn model and prints how each defense's cost
responds -- a miniature Figure 8.

    python examples/bitcoin_under_attack.py
"""

from repro.analysis.plotting import ascii_loglog_plot, format_table
from repro.baselines.ccom import CCom
from repro.baselines.remp import Remp
from repro.core.ergo import Ergo
from repro.core.heuristics import ergo_sf
from repro.churn.datasets import NETWORKS
from repro.experiments.runner import run_point


def main() -> None:
    network = NETWORKS["bitcoin"]
    t_rates = [2.0**8, 2.0**12, 2.0**16]
    defenses = {
        "ERGO": Ergo,
        "CCOM": CCom,
        "REMP": lambda: Remp(t_max=1.0e7),
        "ERGO-SF": lambda: ergo_sf(0.98, combined=False),
    }
    rows = []
    series = {name: [] for name in defenses}
    for name, factory in defenses.items():
        for t_rate in t_rates:
            point = run_point(
                factory, network, t_rate, horizon=1_500.0, seed=7, n0=2_000
            )
            rows.append(
                [name, t_rate, point.good_spend_rate,
                 point.good_spend_rate / t_rate,
                 "yes" if point.maintains_defid else "NO"]
            )
            series[name].append((t_rate, point.good_spend_rate))

    print(format_table(["defense", "T", "A", "A/T", "defid"], rows))
    print()
    print(
        ascii_loglog_plot(
            series,
            title="Good spend rate vs attack size (synthetic Bitcoin churn)",
            xlabel="adversary spend rate T",
            ylabel="good spend rate A",
        )
    )
    ergo_top = next(a for n, t, a, *_ in rows if n == "ERGO" and t == t_rates[-1])
    ccom_top = next(a for n, t, a, *_ in rows if n == "CCOM" and t == t_rates[-1])
    print(
        f"At T = 2^16, Ergo spends {ccom_top / ergo_top:,.0f}x less than "
        "CCom -- the paper's headline asymmetry."
    )


if __name__ == "__main__":
    main()
