"""GoodJEst in isolation: tracking a join rate that doubles every epoch.

Builds an exactly α,β-smooth trace whose epoch rates rise exponentially
(α = 2), feeds it to the estimation harness, and prints the estimate
against the truth at every interval -- including how the Theorem 2
envelope contains the ratio.

    python examples/estimating_join_rate.py
"""

import numpy as np

from repro.analysis.bounds import goodjest_envelope
from repro.analysis.plotting import format_table
from repro.churn.generators import smooth_trace
from repro.churn.traces import InitialMember
from repro.experiments.estimation import EstimationHarness
from repro.sim.engine import Simulation, SimulationConfig


def main() -> None:
    rng = np.random.default_rng(11)
    n0 = 400
    epoch_rates = [0.5, 1.0, 2.0, 4.0, 8.0]  # alpha = 2, exponential rise
    events = smooth_trace(n0=n0, epoch_rates=epoch_rates, rng=rng, beta=1.0)
    horizon = events[-1].time + 1.0

    harness = EstimationHarness()
    sim = Simulation(
        SimulationConfig(horizon=horizon),
        harness,
        events,
        initial_members=[InitialMember(ident=f"init-{i}") for i in range(n0)],
    )
    sim.run()

    envelope = goodjest_envelope(alpha=2.0, beta=1.0)
    rows = []
    for sample in harness.ratios:
        rows.append(
            [
                f"{sample.time:,.0f}",
                sample.true_rate,
                sample.estimate,
                sample.ratio,
                "yes" if envelope.contains(sample.estimate, sample.true_rate) else "NO",
            ]
        )
    print("Join rate doubling every epoch (alpha=2, beta=1):")
    print(
        format_table(
            ["t (s)", "true J", "estimate J̃", "ratio", "in Thm-2 envelope"], rows
        )
    )
    print(
        f"\nTheorem 2 envelope for alpha=2, beta=1: "
        f"[{envelope.lower_factor:.2e}, {envelope.upper_factor:.2e}] x true rate"
    )
    print(
        "The estimate tracks the doubling rate within a small constant "
        "factor -- far inside the worst-case envelope."
    )


if __name__ == "__main__":
    main()
