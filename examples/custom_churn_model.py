"""Bring your own churn: a diurnal network model and its (α, β).

Defines a custom network whose arrival rate swings day/night, measures
the effective ABC-model smoothness (α, β) of the generated trace, runs
Ergo on it, and compares the measured cost against the Theorem 1 bound
evaluated at the measured (α, β).

    python examples/custom_churn_model.py
"""

import numpy as np

import repro
from repro.analysis.bounds import ergo_spend_rate_bound
from repro.churn.epochs import find_epochs
from repro.churn.generators import diurnal_rate, modulated_join_stream
from repro.churn.sessions import LogNormalSessions
from repro.churn.smoothness import estimate_smoothness
from repro.churn.traces import InitialMember
from repro.sim.engine import Simulation, SimulationConfig


def main() -> None:
    rng = np.random.default_rng(13)
    horizon = 4_000.0
    n0 = 1_500
    sessions = LogNormalSessions(mu=7.5, sigma=1.0)  # mean ~3000 s
    base_rate = n0 / sessions.mean()
    rate_fn = diurnal_rate(base_rate, amplitude=0.6, period=2_000.0)

    events = list(
        modulated_join_stream(
            rate_fn,
            max_rate=base_rate * 1.6,
            session_dist=sessions,
            rng=rng,
            horizon=horizon,
        )
    )
    print(f"generated {len(events)} joins over {horizon:,.0f}s "
          f"(base rate {base_rate:.2f}/s, diurnal amplitude 0.6)")

    # Measure the effective ABC parameters of the join process.
    named = [
        repro.sim.events.GoodJoin(time=e.time, ident=f"j{i}", session=e.session)
        for i, e in enumerate(events)
    ]
    epochs = find_epochs(named, [f"init-{i}" for i in range(n0)])
    smoothness = estimate_smoothness(named, epochs)
    print(f"measured smoothness over {smoothness.epochs} epochs: "
          f"alpha={smoothness.alpha:.2f}, beta={smoothness.beta:.2f}")

    # Run Ergo against a flood on this custom churn.
    defense = repro.Ergo()
    adversary = repro.GreedyJoinAdversary(rate=10_000.0)
    initial = [InitialMember(ident=f"init-{i}") for i in range(n0)]
    sim = Simulation(
        SimulationConfig(horizon=horizon),
        defense,
        events,
        adversary=adversary,
        initial_members=initial,
    )
    result = sim.run()

    j_rate = result.counters["good_join_events"] / horizon
    bound = ergo_spend_rate_bound(
        result.adversary_spend_rate,
        j_rate,
        alpha=max(smoothness.alpha, 1.0),
        beta=max(smoothness.beta, 1.0),
    )
    print()
    print(f"good spend rate (A)     : {result.good_spend_rate:,.1f}/s")
    print(f"adversary rate (T)      : {result.adversary_spend_rate:,.1f}/s")
    print(f"Theorem 1 bound at (α,β): {bound:,.1f}/s  (measured A must be below)")
    print(f"max bad fraction        : {result.max_bad_fraction:.4f}")
    assert result.good_spend_rate < bound
    print("\nErgo's measured cost sits below the Theorem 1 envelope.")


if __name__ == "__main__":
    main()
