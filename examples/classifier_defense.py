"""ERGO-SF with a *real* graph classifier, not an assumed accuracy.

Synthesizes a social network (benign region + Sybil region bridged by
attack edges), runs the SybilFuse-style pipeline (local priors, weighted
trust propagation, thresholding), measures its confusion matrix, and
plugs it into Ergo -- then compares costs against vanilla Ergo under the
same flood.

    python examples/classifier_defense.py
"""

import numpy as np

import repro
from repro.classifier.social_graph import synthesize_social_graph
from repro.classifier.sybilfuse import GraphClassifier, run_sybilfuse
from repro.core.heuristics import ergo_sf


def run_defense(defense, seed=21, rate=20_000.0, horizon=1_000.0):
    rngs = repro.RngRegistry(seed=seed)
    network = repro.churn.NETWORKS["gnutella"]
    scenario = network.scenario(horizon=horizon, rng=rngs.stream("churn"), n0=2_000)
    sim = repro.Simulation(
        repro.SimulationConfig(horizon=horizon),
        defense,
        scenario.events,
        adversary=repro.GreedyJoinAdversary(rate=rate),
        rngs=rngs,
        initial_members=scenario.initial,
    )
    return sim.run()


def main() -> None:
    rng = np.random.default_rng(5)
    print("Synthesizing a social graph: 2,000 benign + 800 Sybil nodes,")
    print("bridged by 1,500 attack edges (a well-connected Sybil region)...")
    social = synthesize_social_graph(
        benign_size=2_000, sybil_size=800, attack_edges=1_500, rng=rng
    )
    scores = run_sybilfuse(social, rng, seed_count=25)
    print(f"  true positive rate (benign kept) : {scores.true_positive_rate:.3f}")
    print(f"  false positive rate (sybil kept) : {scores.false_positive_rate:.3f}")
    print(f"  balanced accuracy                : {scores.accuracy:.3f}")
    print()

    classifier = GraphClassifier(scores)
    plain = run_defense(repro.Ergo())
    gated = run_defense(ergo_sf(classifier=classifier, combined=False))

    print("Under a 20,000/s Sybil flood (Gnutella churn):")
    print(f"  ERGO          good spend rate : {plain.good_spend_rate:>10,.1f} /s")
    print(f"  ERGO-SF(graph) good spend rate: {gated.good_spend_rate:>10,.1f} /s")
    print(f"  cost reduction                : {plain.good_spend_rate / gated.good_spend_rate:,.1f}x")
    print(f"  DefID held for both           : "
          f"{plain.max_bad_fraction < 1/6 and gated.max_bad_fraction < 1/6}")
    print()
    print("The classifier multiplies Ergo's asymmetry: refused Sybils")
    print("still pay their entrance challenges, but never trigger purges.")


if __name__ == "__main__":
    main()
