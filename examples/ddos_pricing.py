"""Application-layer DDoS mitigation with Ergo-style pricing (§13.2).

A server with bounded capacity prices requests adaptively: each request
costs 1 + (requests in the last 1/R̃ seconds), with R̃ estimated from
served traffic.  A flooder pays quadratically per pricing window; the
legitimate client's cost grows only with the square root of the
attacker's budget -- Ergo's asymmetry, transplanted from joins to jobs.

    python examples/ddos_pricing.py
"""

from repro.analysis.plotting import format_table
from repro.applications.ddos import PricedJobQueue


def run_scenario(attack_budget_per_second: float, horizon: float = 300.0):
    queue = PricedJobQueue(capacity_per_second=50.0, initial_rate=2.0)
    now = 0.0
    good_costs = []
    while now < horizon:
        now += 0.5  # legitimate clients: 2 requests/second
        if attack_budget_per_second > 0 and abs(now % 1.0) < 1e-9:
            queue.submit_attack_burst(now, attack_budget_per_second)
        _served, cost = queue.submit_good(now)
        good_costs.append(cost)
    mean_cost = sum(good_costs) / len(good_costs)
    return queue.stats, mean_cost, horizon


def main() -> None:
    rows = []
    for budget in (0.0, 100.0, 1_600.0, 25_600.0):
        stats, mean_cost, horizon = run_scenario(budget)
        rows.append(
            [
                budget,
                stats.goodput(horizon),
                mean_cost,
                stats.attacker_cost / horizon if budget else 0.0,
                stats.served_bad,
            ]
        )
    print("Adaptive request pricing under application-layer floods")
    print(
        format_table(
            [
                "attack budget/s",
                "goodput (jobs/s)",
                "mean good cost",
                "attacker spend/s",
                "bad jobs served",
            ],
            rows,
        )
    )
    base = rows[1][2]
    top = rows[3][2]
    print(
        f"\nAttack budget grew 256x (100 -> 25,600/s); the legitimate "
        f"client's per-request cost grew only {top / base:.1f}x "
        f"(sqrt(256) = 16), and goodput degraded gracefully instead of "
        f"collapsing -- the attacker pays the quadratic window price."
    )


if __name__ == "__main__":
    main()
