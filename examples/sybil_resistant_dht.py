"""A Sybil-resistant DHT driven by Ergo's membership (future work, §13.2).

Runs Ergo under a flood, mirrors its membership into a Chord ring with
swarm-vouched routing, and measures lookup correctness -- showing how
DefID's set-level bound (Sybils < 1/6) lifts to application-level
guarantees.

    python examples/sybil_resistant_dht.py
"""

import numpy as np

import repro
from repro.applications.dht import SybilResistantDHT


def main() -> None:
    rngs = repro.RngRegistry(seed=9)
    network = repro.churn.NETWORKS["gnutella"]
    horizon = 500.0
    scenario = network.scenario(horizon=horizon, rng=rngs.stream("churn"), n0=1_500)
    defense = repro.Ergo()
    sim = repro.Simulation(
        repro.SimulationConfig(horizon=horizon),
        defense,
        scenario.events,
        adversary=repro.GreedyJoinAdversary(rate=5_000.0),
        rngs=rngs,
        initial_members=scenario.initial,
    )
    result = sim.run()
    good_ids = defense.population.good.good_ids()
    bad_count = defense.population.bad_count
    print("=== Ergo membership after a 5,000/s flood ===")
    print(f"good IDs: {len(good_ids)}, Sybil IDs: {bad_count} "
          f"(fraction {defense.bad_fraction():.3f} < 1/6)")

    dht = SybilResistantDHT(redundancy=3, swarm_size=15)
    dht.sync_membership(good_ids, [f"sybil{i}" for i in range(bad_count)])
    stats = dht.swarm_stats()
    print(f"\n=== Chord ring with swarm-vouched routing ===")
    print(f"swarms: {stats['swarms']} (size {dht.swarm_size}), "
          f"bad-majority swarms: {stats['bad_majority_fraction']:.4f}")

    rng = np.random.default_rng(1)
    stored = 300
    wrong = 0
    for k in range(stored):
        dht.put(f"key{k}", f"value{k}")
    for k in range(stored):
        if not dht.lookup(f"key{k}", rng).correct:
            wrong += 1
    print(f"\nlookups: {stored}, incorrect: {wrong} "
          f"({100 * (1 - wrong / stored):.2f}% correct)")
    print("\nBecause Ergo caps the Sybil fraction below 1/6 and hashing")
    print("spreads Sybils uniformly, a bad-majority swarm is exponentially")
    print("unlikely -- DefID becomes an application-level guarantee.")


if __name__ == "__main__":
    main()
