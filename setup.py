"""Legacy setup shim.

The offline environment ships a setuptools without editable-wheel
support, so ``pip install -e . --no-build-isolation --no-use-pep517``
needs this file.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
