PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke scenarios bench-quick bench-scale bench-membership perf-trend

test:
	$(PYTHON) -m pytest -x -q

# The CI smoke run: quick Figure 8 sweep through the parallel executor.
smoke:
	$(PYTHON) -m repro figure8 --quick --jobs 2

# Scenario-catalog smoke: every catalog scenario under every defense at
# small scale (deterministic metrics JSON lands in results/).
scenarios:
	$(PYTHON) -m repro scenarios run --all --quick --jobs 2

# Dump the perf trajectory snapshot (engine events/sec, fast-path vs
# heap-path A/B, sweep wall time).
bench-quick:
	$(PYTHON) benchmarks/bench_sweep.py --quick --jobs 2 --json BENCH_micro.json

# The flash-crowd scale benchmark: 10^5-ID regression tier plus the
# 10^6-ID arena tier (fails if any defense blows the wall-time budget
# or the fast path does not engage).
bench-scale:
	$(PYTHON) benchmarks/bench_scale.py --json BENCH_scale.json

# Membership-backend micro (dict vs arena join/remove/random_good);
# merges membership_* keys into BENCH_micro.json for the perf trend.
bench-membership:
	$(PYTHON) benchmarks/bench_membership.py --json BENCH_micro.json

# Compare freshly produced BENCH_*.json against the committed snapshots
# and flag >20% regressions (advisory; --strict to fail).
perf-trend:
	$(PYTHON) benchmarks/perf_trend.py
