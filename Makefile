PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test smoke scenarios chaos serve-smoke traces-smoke profile-smoke bench-quick bench-scale bench-membership bench-trace perf-trend

# Static invariant lint: determinism boundary, atomic writes, serve
# thread-safety, defense hook contracts, broad-except justification.
# `$(PYTHON) -m repro lint --list-rules` prints the rule catalog and
# `--explain RULE` the full rationale for any rule.  CI runs this as
# the fail-fast step before the test matrix; a tier-1 test asserts the
# same clean verdict, so `make test` catches violations too.
lint:
	$(PYTHON) -m repro lint src benchmarks scripts

test:
	$(PYTHON) -m pytest -x -q

# The CI smoke run: quick Figure 8 sweep through the parallel executor.
smoke:
	$(PYTHON) -m repro figure8 --quick --jobs 2

# Scenario-catalog smoke: every catalog scenario under every defense at
# small scale (deterministic metrics JSON lands in results/).
scenarios:
	$(PYTHON) -m repro scenarios run --all --quick --jobs 2

# Chaos smoke: the fault-tolerant sweep runtime under deterministic
# injected faults -- a worker crash (pool rebuild), an injected
# exception (retry), a hang that outlives the per-point timeout (pool
# teardown + retry) and a slowed point.  Must exit 0: every point
# recovers within its retry budget and no completed row is lost.
chaos:
	$(PYTHON) -m repro scenarios run flash-crowd --quick --jobs 4 \
		--max-retries 3 --point-timeout 30 \
		--fault-spec "crash@0;raise@2;hang@3:300;slow@4:0.2"

# Service smoke: boot `repro serve` on an ephemeral port, submit a
# catalog job with an injected worker crash (crash@0), poll it to
# `succeeded`, check /healthz + /metrics, then SIGTERM -- the service
# must drain and exit 0.
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

# Trace-subsystem smoke: registry listing, offline synthetic-generator
# fetch + streamed stats, packaged-fixture stats, and a streamed replay
# scenario across the defense suite.  No network, ever.
traces-smoke:
	$(PYTHON) -m repro traces list
	$(PYTHON) -m repro traces fetch synthetic-flap-ci --force
	$(PYTHON) -m repro traces stats synthetic-flap-ci
	$(PYTHON) -m repro traces stats tor-relay-flap
	$(PYTHON) -m repro scenarios run consensus-flap tor-relay-replay --quick --jobs 2

# Cost-attribution smoke: profile the acceptance point (flash-crowd
# under ERGO), prove byte-identical metrics with profiling off
# (--check), and write a schema-validated speedscope export.  Exits
# nonzero if any span table is empty, the export fails validation, or
# any metric diverges.
profile-smoke:
	$(PYTHON) -m repro profile flash-crowd --defense ergo --quick --check \
		--json results/profile_smoke.json \
		--speedscope results/profile_smoke.speedscope.json
	$(PYTHON) -m repro profile flash-crowd --defense sybilcontrol --quick --coarse

# Dump the perf trajectory snapshot (engine events/sec, fast-path vs
# heap-path A/B, sweep wall time).
bench-quick:
	$(PYTHON) benchmarks/bench_sweep.py --quick --jobs 2 --json BENCH_micro.json

# The flash-crowd scale benchmark: 10^5-ID regression tier plus the
# 10^6-ID arena tier (fails if any defense blows the wall-time budget
# or the fast path does not engage).
bench-scale:
	$(PYTHON) benchmarks/bench_scale.py --json BENCH_scale.json

# Membership-backend micro (dict vs arena join/remove/random_good);
# merges membership_* keys into BENCH_micro.json for the perf trend.
bench-membership:
	$(PYTHON) benchmarks/bench_membership.py --json BENCH_micro.json

# Streamed 10^6-event trace replay (synthetic consensus flap) through
# the scenario runner: wall/budget per defense, >=95% fast-path joins,
# bounded-memory check under tracemalloc.  Merges a ``runs_trace`` tier
# into BENCH_scale.json -- run after bench-scale, which rewrites it.
bench-trace:
	$(PYTHON) benchmarks/bench_trace_replay.py --json BENCH_scale.json

# Compare freshly produced BENCH_*.json against the committed snapshots
# and flag >20% regressions (advisory; --strict to fail).
perf-trend:
	$(PYTHON) benchmarks/perf_trend.py
