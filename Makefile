PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke bench-quick

test:
	$(PYTHON) -m pytest -x -q

# The CI smoke run: quick Figure 8 sweep through the parallel executor.
smoke:
	$(PYTHON) -m repro figure8 --quick --jobs 2

# Dump the perf trajectory snapshot (engine events/sec + sweep wall time).
bench-quick:
	$(PYTHON) benchmarks/bench_sweep.py --quick --jobs 2 --json BENCH_micro.json
