"""Micro-benchmarks for the hot substrate operations.

These are the operations that execute millions of times in the
Figure-8 sweep: membership mutation, window counting, aggregate Sybil
cohort arithmetic, event-queue throughput, entrance-cost quoting, and
(for completeness) an actual proof-of-work solve.
"""

import numpy as np

from repro.adversary.strategies import GreedyJoinAdversary
from repro.churn.traces import InitialMember
from repro.core.ergo import Ergo
from repro.core.population import AggregateBadPopulation
from repro.identity.membership import MembershipSet, SymmetricDifferenceTracker
from repro.rb.pow import PowChallenge, solve_pow, verify_pow
from repro.sim.blocks import ChurnBlock
from repro.sim.engine import EventQueue, Simulation, SimulationConfig
from repro.sim.events import Tick
from repro.sim.metrics import SlidingWindowCounter
from repro.sim.null_defense import NullDefense


def bench_membership_churn(benchmark):
    def run():
        membership = MembershipSet()
        membership.attach_tracker("t", SymmetricDifferenceTracker())
        for i in range(5_000):
            membership.add(f"id{i}", is_good=True, now=float(i))
        for i in range(0, 5_000, 2):
            membership.remove(f"id{i}")
        return membership.sym_diff("t")

    diff = benchmark(run)
    assert diff == 2_500


def bench_random_good_selection(benchmark):
    membership = MembershipSet()
    for i in range(10_000):
        membership.add(f"id{i}", is_good=True, now=0.0)
    rng = np.random.default_rng(0)

    def run():
        return [membership.random_good(rng) for _ in range(1_000)]

    picks = benchmark(run)
    assert len(picks) == 1_000


def bench_aggregate_bad_cohorts(benchmark):
    def run():
        bad = AggregateBadPopulation()
        bad.attach_tracker("t")
        for i in range(2_000):
            bad.join(100, now=float(i))
            bad.evict_oldest(60)
        return bad.total

    total = benchmark(run)
    assert total == 2_000 * 40


def bench_sliding_window(benchmark):
    def run():
        window = SlidingWindowCounter(width=5.0)
        count = 0
        for i in range(20_000):
            window.record(i * 0.1, count=3)
            count = window.count(i * 0.1)
        return count

    final = benchmark(run)
    assert final == 150  # 50 batches of 3 inside a 5s window


def bench_engine_event_loop(benchmark):
    """The full engine loop: block fast path, heap, adversary wake-ups.

    Uses a pass-through defense so the measured cost is the engine's own
    (the number here is the one ``benchmarks/bench_sweep.py`` converts
    to events/sec for the perf trajectory in ``BENCH_micro.json``).  The
    churn is a :class:`~repro.sim.blocks.ChurnBlock`, so joins ride the
    zero-heap fast path while session departures and ticks flow through
    the queue.
    """
    n_joins, horizon = 10_000, 2_500.0
    step = horizon / n_joins
    block = ChurnBlock(
        (np.arange(n_joins) + 1) * step,
        np.zeros(n_joins, dtype=np.uint8),
        sessions=np.full(n_joins, 50.0 * step),
    )

    def run():
        sim = Simulation(
            SimulationConfig(horizon=horizon, tick_interval=1.0, seed=1),
            NullDefense(),
            [block],
            adversary=GreedyJoinAdversary(rate=0.5),
        )
        return sim.run()

    result = benchmark(run)
    # Every join was applied straight from the block (zero heap) ...
    assert result.counters["churn_events_fast"] == n_joins
    # ... departures and ticks still flowed through the queue ...
    assert result.counters["queue_pops"] > horizon / 1.0
    # ... and the lazy tick kept the heap shallow (no pre-scheduled bulk).
    assert result.counters["queue_max_size"] < 100


def bench_engine_event_loop_heap_path(benchmark):
    """The same workload with the fast path disabled (the A/B baseline)."""
    n_joins, horizon = 10_000, 2_500.0
    step = horizon / n_joins
    block = ChurnBlock(
        (np.arange(n_joins) + 1) * step,
        np.zeros(n_joins, dtype=np.uint8),
        sessions=np.full(n_joins, 50.0 * step),
    )

    def run():
        sim = Simulation(
            SimulationConfig(
                horizon=horizon, tick_interval=1.0, seed=1,
                churn_fast_path=False,
            ),
            NullDefense(),
            [block],
            adversary=GreedyJoinAdversary(rate=0.5),
        )
        return sim.run()

    result = benchmark(run)
    assert result.counters["churn_events_fast"] == 0
    assert result.counters["queue_pops"] > n_joins + horizon / 1.0


def bench_event_queue(benchmark):
    def run():
        queue = EventQueue()
        for i in range(10_000):
            queue.push(Tick(time=float(10_000 - i)))
        drained = 0
        while queue:
            queue.pop()
            drained += 1
        return drained

    assert benchmark(run) == 10_000


def bench_entrance_quote_under_congestion(benchmark):
    defense = Ergo()
    sim = Simulation(
        SimulationConfig(horizon=1.0, tick_interval=0.0),
        defense,
        [],
        initial_members=[InitialMember(ident=f"i{k}") for k in range(1_000)],
    )
    sim.run()
    defense._window.record(1.0, 500)

    def run():
        return [defense.quote_entrance_cost() for _ in range(10_000)]

    quotes = benchmark(run)
    assert quotes[0] == 501.0


def bench_pow_solve_and_verify(benchmark):
    challenge = PowChallenge(seed=b"bench", solver="alice", bits=10)

    def run():
        solution = solve_pow(challenge)
        assert verify_pow(challenge, solution)
        return solution

    benchmark(run)


def bench_flood_batch_processing(benchmark):
    """One full purge cycle's worth of Sybil flood arithmetic."""
    defense = Ergo()
    sim = Simulation(
        SimulationConfig(horizon=1.0, tick_interval=0.0),
        defense,
        [],
        initial_members=[InitialMember(ident=f"i{k}") for k in range(5_000)],
    )
    sim.run()
    time_holder = [1.0]

    def run():
        time_holder[0] += 1.0
        sim.clock.advance_to(time_holder[0])
        return defense.process_bad_join_batch(budget=100_000.0)

    attempted, cost = benchmark(run)
    assert attempted > 0
    assert cost <= 100_000.0
