"""Figure 9 benchmarks: GoodJEst estimation cells.

Runs single (network, bad-fraction, T) cells of the estimation
experiment and the quick sweep, asserting the ratio stays within the
reproduction band.
"""

import pytest

from repro.experiments import figure9
from repro.experiments.config import Figure9Config

CELL_CONFIG = Figure9Config(
    networks=["gnutella"],
    bad_fractions=[1 / 24],
    attack_rates=[0.0],
    horizon=8_000.0,
    n0_scale=0.1,
)


@pytest.mark.parametrize("t_rate", [0.0, 10_000.0], ids=["T0", "T1e4"])
def bench_figure9_cell(benchmark, t_rate):
    def run():
        return figure9.run_cell("gnutella", 1 / 24, t_rate, CELL_CONFIG)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row.intervals >= 1
    assert 0.08 <= row.median_ratio <= 10.0


def bench_figure9_quick_sweep(benchmark):
    config = Figure9Config.quick()

    def run():
        return figure9.run(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.intervals >= 1 for r in rows)
    # The figure's qualitative claim: estimates within a factor of ~10
    # of the truth, across bad fractions and under attack.
    assert all(0.08 <= r.median_ratio <= 10.0 for r in rows)
