"""Theorem 3 benchmark: the join-and-drop adversary vs Ergo and CCom."""

from repro.experiments import lowerbound
from repro.experiments.config import LowerBoundConfig


def bench_lowerbound_sweep(benchmark):
    config = LowerBoundConfig.quick()

    def run():
        return lowerbound.run(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Nothing beats the Omega(sqrt(TJ)+J) bound...
    assert all(r.ratio >= config.omega_constant for r in rows)
    # ...and CCom's gap above it exceeds Ergo's at the top T.
    t_top = max(r.t_rate for r in rows)
    gaps = {r.defense: r.ratio for r in rows if r.t_rate == t_top}
    assert gaps["CCOM"] > gaps["ERGO"]
