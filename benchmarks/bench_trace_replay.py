"""Tor-scale trace replay benchmark: 10^6 flap events, bounded memory.

The ``repro.traces`` subsystem exists so that multi-month relay
consensus flap traces (Winter et al. scale) can drive the simulation
without ever materializing per-event objects.  This benchmark proves
the property end-to-end through the *scenario* machinery -- the same
``run_spec_point`` path ``python -m repro scenarios run`` uses:

1. the ``synthetic-flap-xl`` registry entry (~10^6 events, 5000
   relays, heavy-tailed uptimes, diurnal flap rate) is generated into
   the trace cache if absent (deterministic, offline);
2. a ``TraceReplay`` scenario streams it -- gzip CSV -> streaming
   reader -> ``ChurnBlock`` batches -> the engine's zero-heap fast
   path -- against each benchmarked defense;
3. every run must keep >= 95% of good joins on the fast path and stay
   inside its wall budget;
4. one extra run executes under :mod:`tracemalloc` and must keep peak
   Python allocations under ``MEM_BUDGET_MB`` -- the eager path's
   per-event objects alone would be several times that, so the bound
   fails loudly if anyone reintroduces materialization.

Results merge into ``BENCH_scale.json`` under ``runs_trace`` (plus a
``trace_replay`` meta block carrying the span-attribution buckets of
one profiled ERGO replay; see :mod:`repro.profiling`), which
``perf_trend.py`` tracks against the committed snapshot::

    PYTHONPATH=src python benchmarks/bench_trace_replay.py --json BENCH_scale.json
"""

from __future__ import annotations

import json
import sys
import time
import tracemalloc
from typing import List

from repro.profiling import ProfilePolicy, span_shares
from repro.resilience import atomic_write_text
from repro.scenarios.run import ScenarioPointSpec, run_spec_point
from repro.scenarios.spec import AttackSchedule, ScenarioSpec, SessionSpec, TraceReplay
from repro.traces.source import fetch_trace, get_trace_source

#: The registry entry this benchmark replays.
TRACE_NAME = "synthetic-flap-xl"

#: Minimum events the generated trace must deliver (the "Tor-scale" bar).
MIN_TRACE_EVENTS = 1_000_000

#: Wall budget per defense run (generous for CI; single-digit tens of
#: seconds on a developer box, dominated by the two streaming CSV
#: passes -- workload summary + engine).
BUDGET_S = 180.0

#: Peak tracemalloc budget for the memory-instrumented run.  A fully
#: materialized 10^6-event trace costs >300 MB in event objects alone;
#: the streaming path peaks at single-digit MB (membership state for
#: the standing relays + one block in flight), so this bound fails
#: loudly on any reintroduced materialization while leaving >10x
#: headroom for allocator noise.
MEM_BUDGET_MB = 64.0

#: Minimum fraction of good joins on the zero-heap fast path.
MIN_FAST_FRACTION = 0.95

#: Report-name -> scenario-suite defense name.
DEFENSES = {"null": "Null", "sybilcontrol": "SybilControl", "ergo": "ERGO"}


def replay_spec(duration: float) -> ScenarioSpec:
    """The benchmark scenario: a pure streamed replay, no adversary."""
    return ScenarioSpec(
        name="bench-trace-replay",
        description="10^6-event synthetic consensus flap, streamed",
        phases=(TraceReplay(path=TRACE_NAME, duration=duration),),
        n0=2000,
        sessions=SessionSpec(kind="exponential", mean=3_000.0),
        attack=AttackSchedule(profile="off"),
    )


def run_defense(name: str, duration: float) -> dict:
    spec = replay_spec(duration)
    point = ScenarioPointSpec(
        scenario=spec.name, defense=DEFENSES[name], seed=7, t_rate=0.0
    )
    start = time.perf_counter()
    row = run_spec_point(spec, point)
    wall_s = time.perf_counter() - start
    trace_events = row["good_joins"] + row["good_departures"]
    events = row["churn_events_fast"] + row["churn_events_heap"]
    return {
        "defense": name,
        "wall_s": round(wall_s, 3),
        "within_budget": wall_s <= BUDGET_S,
        "events": events,
        "events_per_sec": round(events / wall_s) if wall_s else None,
        "trace_events": trace_events,
        "good_joins": row["good_joins"],
        "fast_fraction": round(row["fast_join_fraction"], 4),
        "peak_join_rate": row["peak_join_rate"],
        "final_size": row["final_size"],
        "queue_max_size": row["queue_max_size"],
    }


def measure_span_shares(duration: float) -> dict:
    """Span-attribution buckets for one profiled ERGO replay.

    One extra run with the profiler on (never the timed run: its wall
    must not carry instrumentation).  Tells the trend where replay
    time goes -- heap ops vs defense pricing vs dispatch -- at trace
    scale, next to the flash-crowd tier's equivalents.
    """
    spec = replay_spec(duration)
    point = ScenarioPointSpec(
        scenario=spec.name, defense="ERGO", seed=7, t_rate=0.0
    )
    row = run_spec_point(spec, point, profile=ProfilePolicy())
    return span_shares(row["profile"])


def measure_peak_memory(duration: float) -> float:
    """Peak tracemalloc MB for one streamed Null-defense replay."""
    spec = replay_spec(duration)
    point = ScenarioPointSpec(
        scenario=spec.name, defense="Null", seed=7, t_rate=0.0
    )
    tracemalloc.start()
    try:
        run_spec_point(spec, point)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024.0 * 1024.0)


def main(argv: List[str] = None) -> dict:
    args = list(argv if argv is not None else sys.argv[1:])
    source = get_trace_source(TRACE_NAME)
    cached = source.cached_path().exists()
    gen_start = time.perf_counter()
    fetch_trace(TRACE_NAME)
    generate_s = time.perf_counter() - gen_start
    duration = source.synthetic.duration

    ok = True
    rows = []
    for name in DEFENSES:
        row = run_defense(name, duration)
        rows.append(row)
        if not row["within_budget"]:
            ok = False
            print(
                f"!! trace/{name}: {row['wall_s']}s exceeds the "
                f"{BUDGET_S}s budget",
                file=sys.stderr,
            )
        if row["fast_fraction"] < MIN_FAST_FRACTION:
            ok = False
            print(
                f"!! trace/{name}: fast path carried only "
                f"{row['fast_fraction']:.1%} of joins",
                file=sys.stderr,
            )
        if row["trace_events"] < MIN_TRACE_EVENTS:
            ok = False
            print(
                f"!! trace/{name}: only {row['trace_events']} trace events "
                f"replayed (< {MIN_TRACE_EVENTS})",
                file=sys.stderr,
            )
    peak_mb = measure_peak_memory(duration)
    if peak_mb > MEM_BUDGET_MB:
        ok = False
        print(
            f"!! trace replay peaked at {peak_mb:.1f} MB of Python "
            f"allocations (> {MEM_BUDGET_MB} MB): the streaming path is "
            "materializing",
            file=sys.stderr,
        )

    meta = {
        "trace": TRACE_NAME,
        "trace_cached": cached,
        "generate_s": round(generate_s, 3),
        "budget_s": BUDGET_S,
        "mem_budget_mb": MEM_BUDGET_MB,
        "peak_tracemalloc_mb": round(peak_mb, 1),
        "ok": ok,
    }
    meta.update(measure_span_shares(duration))

    # Merge into the scale snapshot rather than clobbering it: the
    # trace tier is one more set of regression-tracked rows alongside
    # ``runs`` and ``runs_xl``.
    report = {}
    json_path = None
    for i, arg in enumerate(args):
        if arg == "--json" and i + 1 < len(args):
            json_path = args[i + 1]
        elif arg.startswith("--json="):
            json_path = arg.split("=", 1)[1]
    if json_path:
        try:
            with open(json_path) as handle:
                report = json.load(handle)
        except (OSError, json.JSONDecodeError):
            report = {}
    report["runs_trace"] = rows
    report["trace_replay"] = meta
    text = json.dumps(
        {"runs_trace": rows, "trace_replay": meta}, indent=2, sort_keys=True
    )
    print(text)
    if json_path:
        atomic_write_text(
            json_path, json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
    if not ok:
        sys.exit(1)
    return report


if __name__ == "__main__":
    main()
