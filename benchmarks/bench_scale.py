"""Large-population scale benchmark: flash crowds at 10^5 and 10^6 IDs.

The related-systems literature (SybilControl, Tor Sybil
characterization) evaluates at populations of 10^5+ IDs -- a regime the
per-event churn path could not reach in reasonable wall time -- and the
paper's guarantees are asymptotic, only separating Ergo from the
baselines at large n.  This benchmark drives Poisson flash crowds of
good IDs (block-mode churn, exponential sessions) against three
defenses:

* ``null``         -- engine floor: scheduling + membership only;
* ``sybilcontrol`` -- recurring-cost baseline (periodic test cycles);
* ``ergo``         -- the paper's defense: window pricing, GoodJEst,
  purges.

Two tiers run:

* the standard tier (``N_JOINS`` = 10^5 over ``BURST_S`` s) -- the
  regression-tracked rows (``runs``) that ``perf_trend.py`` compares
  against the committed snapshot;
* the XL tier (``XL_JOINS`` = 10^6) -- the arena-backed membership
  milestone: a million-ID crowd must finish in single-digit seconds
  per defense (``runs_xl``), within ``XL_BUDGET_S`` as a hard cap.

Each run must process at least 95% of the trace's joins through the
engine's zero-heap fast path (``churn_events_fast``), which is what
makes the scale reachable.  Standard-tier wall times are the best of
``REPEATS`` back-to-back runs (the simulations are deterministic, so
repetition only filters scheduler/turbo noise out of the regression
signal); the XL tier runs ``XL_REPEATS`` times to keep CI wall time
bounded, so treat its trend rows as noisier.  Each standard-tier row
also reports its repeat spread (``wall_min_s`` / ``wall_median_s`` /
``wall_max_s``) and -- from one extra span-attributed run -- where the
time went (``span_heap_pct`` / ``span_defense_pct`` /
``span_dispatch_pct``; see :mod:`repro.profiling`).

Run (writes ``BENCH_scale.json`` when ``--json`` is given)::

    PYTHONPATH=src python benchmarks/bench_scale.py --json BENCH_scale.json

``--skip-xl`` drops the 10^6 tier (for very constrained CI boxes);
``make bench-scale`` runs both tiers.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Dict, List

from repro.baselines.sybilcontrol import SybilControl
from repro.churn.generators import poisson_join_blocks
from repro.profiling import ProfilePolicy, span_shares
from repro.resilience import atomic_write_text
from repro.churn.sessions import ExponentialSessions
from repro.core.ergo import Ergo
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.null_defense import NullDefense
from repro.sim.rng import RngRegistry

#: Standard tier: N_JOINS good IDs over BURST_S seconds, sessions long
#: enough that the crowd is still around when the burst ends.
N_JOINS = 100_000
BURST_S = 200.0
MEAN_SESSION_S = 600.0
HORIZON_S = 1_000.0

#: XL tier: a million-ID crowd.  Sessions are long relative to the
#: burst so the standing population actually reaches ~10^6.
XL_JOINS = 1_000_000
XL_BURST_S = 200.0
XL_MEAN_SESSION_S = 3_000.0
XL_HORIZON_S = 400.0

#: Wall-time budgets per defense run (documented in EXPERIMENTS.md).
#: Generous enough for CI machines; the XL target is single-digit
#: seconds on a developer box.
BUDGET_S = 60.0
XL_BUDGET_S = 120.0

#: Repetitions per defense; the best wall time is reported.  The XL
#: tier repeats less: 3x three 10^6-ID runs would dominate CI wall
#: time, and its budget is sized for the noise.
REPEATS = 3
XL_REPEATS = 1

#: Minimum fraction of joins that must ride the zero-heap fast path.
MIN_FAST_FRACTION = 0.95

DEFENSES: Dict[str, Callable] = {
    "null": NullDefense,
    "sybilcontrol": SybilControl,
    "ergo": Ergo,
}


def flash_crowd_blocks(
    seed: int = 7,
    n_joins: int = N_JOINS,
    burst_s: float = BURST_S,
    mean_session_s: float = MEAN_SESSION_S,
):
    """The block-mode churn source for one run (fresh RNG each call)."""
    rngs = RngRegistry(seed=seed)
    return poisson_join_blocks(
        rate=n_joins / burst_s,
        session_dist=ExponentialSessions(mean_session_s),
        rng=rngs.stream("scale.flash"),
        horizon=burst_s,
    )


def run_defense(
    name: str,
    n_joins: int = N_JOINS,
    burst_s: float = BURST_S,
    mean_session_s: float = MEAN_SESSION_S,
    horizon_s: float = HORIZON_S,
    budget_s: float = BUDGET_S,
    repeats: int = REPEATS,
    profile: bool = False,
) -> dict:
    """Best-of-``repeats`` flash-crowd runs; returns the report row.

    ``profile=True`` adds one extra run with span attribution on and
    folds its top-3 bucket shares (:func:`span_shares`) into the row;
    the profiled run's wall never competes for ``wall_s``.
    """
    walls: List[float] = []
    result = None
    for _ in range(max(repeats, 1)):
        defense = DEFENSES[name]()
        sim = Simulation(
            SimulationConfig(horizon=horizon_s, tick_interval=1.0, seed=7),
            defense,
            flash_crowd_blocks(
                n_joins=n_joins, burst_s=burst_s, mean_session_s=mean_session_s
            ),
        )
        start = time.perf_counter()
        result = sim.run()
        walls.append(time.perf_counter() - start)
    walls.sort()
    best_wall = walls[0]
    counters = result.counters
    joins = counters.get("good_join_events", 0)
    events = counters["queue_pops"] + counters["churn_events_fast"]
    fast_fraction = counters["good_joins_fast"] / max(joins, 1)
    row = {
        "defense": name,
        "wall_s": round(best_wall, 3),
        # The per-run spread of the same deterministic workload is pure
        # machine noise -- reported so a wall_s trend blip can be read
        # against the variance it rode in on.
        "wall_min_s": round(walls[0], 3),
        "wall_median_s": round(walls[len(walls) // 2], 3),
        "wall_max_s": round(walls[-1], 3),
        "within_budget": best_wall <= budget_s,
        "events": events,
        "events_per_sec": round(events / best_wall) if best_wall else None,
        "good_joins": joins,
        "final_size": result.final_system_size,
        "good_spend_rate": round(result.good_spend_rate, 3),
        "churn_events_fast": counters["churn_events_fast"],
        "churn_events_heap": counters["churn_events_heap"],
        "fast_fraction": round(fast_fraction, 4),
        "queue_max_size": counters["queue_max_size"],
    }
    if profile:
        defense = DEFENSES[name]()
        sim = Simulation(
            SimulationConfig(
                horizon=horizon_s, tick_interval=1.0, seed=7,
                profile=ProfilePolicy(),
            ),
            defense,
            flash_crowd_blocks(
                n_joins=n_joins, burst_s=burst_s, mean_session_s=mean_session_s
            ),
        )
        sim.run()
        row.update(span_shares(sim.profiler.report().as_dict()))
    return row


def main(argv: List[str] = None) -> dict:
    args = list(argv if argv is not None else sys.argv[1:])
    skip_xl = "--skip-xl" in args
    report = {
        "n_joins": N_JOINS,
        "burst_s": BURST_S,
        "mean_session_s": MEAN_SESSION_S,
        "horizon_s": HORIZON_S,
        "budget_s": BUDGET_S,
        "repeats": REPEATS,
        "xl_joins": XL_JOINS,
        "xl_budget_s": XL_BUDGET_S,
        "xl_repeats": XL_REPEATS,
        "runs": [],
        "runs_xl": [],
    }
    ok = True
    for name in DEFENSES:
        row = run_defense(name, profile=True)
        report["runs"].append(row)
        if not row["within_budget"]:
            ok = False
            print(f"!! {name}: {row['wall_s']}s exceeds the {BUDGET_S}s budget",
                  file=sys.stderr)
        if row["fast_fraction"] < MIN_FAST_FRACTION:
            ok = False
            print(f"!! {name}: fast path carried only "
                  f"{row['fast_fraction']:.1%} of joins", file=sys.stderr)
    if not skip_xl:
        for name in DEFENSES:
            row = run_defense(
                name,
                n_joins=XL_JOINS,
                burst_s=XL_BURST_S,
                mean_session_s=XL_MEAN_SESSION_S,
                horizon_s=XL_HORIZON_S,
                budget_s=XL_BUDGET_S,
                repeats=XL_REPEATS,
            )
            report["runs_xl"].append(row)
            if not row["within_budget"]:
                ok = False
                print(f"!! xl/{name}: {row['wall_s']}s exceeds the "
                      f"{XL_BUDGET_S}s budget", file=sys.stderr)
            if row["fast_fraction"] < MIN_FAST_FRACTION:
                ok = False
                print(f"!! xl/{name}: fast path carried only "
                      f"{row['fast_fraction']:.1%} of joins", file=sys.stderr)
    report["ok"] = ok
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    for i, arg in enumerate(args):
        if arg == "--json" and i + 1 < len(args):
            atomic_write_text(args[i + 1], text + "\n")
        elif arg.startswith("--json="):
            atomic_write_text(arg.split("=", 1)[1], text + "\n")
    if not ok:
        sys.exit(1)
    return report


if __name__ == "__main__":
    main()
