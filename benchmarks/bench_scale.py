"""Large-population scale benchmark: a 10^5-good-ID flash crowd.

The related-systems literature (SybilControl, Tor Sybil
characterization) evaluates at populations of 10^5+ IDs -- a regime the
per-event churn path could not reach in reasonable wall time.  This
benchmark drives a flash crowd of ``N_JOINS`` good IDs arriving in a
``BURST_S``-second burst (Poisson, block-mode churn) with exponential
sessions, against three defenses:

* ``null``         -- engine floor: scheduling + membership only;
* ``sybilcontrol`` -- recurring-cost baseline (periodic test cycles);
* ``ergo``         -- the paper's defense: window pricing, GoodJEst,
  purges, all at 10^5 scale.

Each run must finish within ``BUDGET_S`` seconds of wall time and must
process at least 95% of the trace's joins through the engine's
zero-heap fast path (``churn_events_fast``), which is what makes the
scale reachable.

Run (writes ``BENCH_scale.json`` when ``--json`` is given)::

    PYTHONPATH=src python benchmarks/bench_scale.py --json BENCH_scale.json

or simply ``make bench-scale``.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Dict, List

from repro.baselines.sybilcontrol import SybilControl
from repro.churn.generators import poisson_join_blocks
from repro.churn.sessions import ExponentialSessions
from repro.core.ergo import Ergo
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.null_defense import NullDefense
from repro.sim.rng import RngRegistry

#: Flash-crowd shape: N_JOINS good IDs over BURST_S seconds, sessions
#: long enough that the crowd is still around when the burst ends.
N_JOINS = 100_000
BURST_S = 200.0
MEAN_SESSION_S = 600.0
HORIZON_S = 1_000.0

#: Wall-time budget per defense run ("finishing in seconds", documented
#: in EXPERIMENTS.md).  Generous enough for CI machines.
BUDGET_S = 60.0

#: Minimum fraction of joins that must ride the zero-heap fast path.
MIN_FAST_FRACTION = 0.95

DEFENSES: Dict[str, Callable] = {
    "null": NullDefense,
    "sybilcontrol": SybilControl,
    "ergo": Ergo,
}


def flash_crowd_blocks(seed: int = 7):
    """The block-mode churn source for one run (fresh RNG each call)."""
    rngs = RngRegistry(seed=seed)
    return poisson_join_blocks(
        rate=N_JOINS / BURST_S,
        session_dist=ExponentialSessions(MEAN_SESSION_S),
        rng=rngs.stream("scale.flash"),
        horizon=BURST_S,
    )


def run_defense(name: str) -> dict:
    """One flash-crowd run; returns the per-defense report row."""
    defense = DEFENSES[name]()
    sim = Simulation(
        SimulationConfig(horizon=HORIZON_S, tick_interval=1.0, seed=7),
        defense,
        flash_crowd_blocks(),
    )
    start = time.perf_counter()
    result = sim.run()
    wall_s = time.perf_counter() - start
    counters = result.counters
    joins = counters.get("good_join_events", 0)
    events = counters["queue_pops"] + counters["churn_events_fast"]
    fast_fraction = counters["churn_events_fast"] / max(joins, 1)
    return {
        "defense": name,
        "wall_s": round(wall_s, 3),
        "within_budget": wall_s <= BUDGET_S,
        "events": events,
        "events_per_sec": round(events / wall_s) if wall_s else None,
        "good_joins": joins,
        "final_size": result.final_system_size,
        "good_spend_rate": round(result.good_spend_rate, 3),
        "churn_events_fast": counters["churn_events_fast"],
        "churn_events_heap": counters["churn_events_heap"],
        "fast_fraction": round(fast_fraction, 4),
        "queue_max_size": counters["queue_max_size"],
    }


def main(argv: List[str] = None) -> dict:
    args = list(argv if argv is not None else sys.argv[1:])
    report = {
        "n_joins": N_JOINS,
        "burst_s": BURST_S,
        "mean_session_s": MEAN_SESSION_S,
        "horizon_s": HORIZON_S,
        "budget_s": BUDGET_S,
        "runs": [],
    }
    ok = True
    for name in DEFENSES:
        row = run_defense(name)
        report["runs"].append(row)
        if not row["within_budget"]:
            ok = False
            print(f"!! {name}: {row['wall_s']}s exceeds the {BUDGET_S}s budget",
                  file=sys.stderr)
        if row["fast_fraction"] < MIN_FAST_FRACTION:
            ok = False
            print(f"!! {name}: fast path carried only "
                  f"{row['fast_fraction']:.1%} of joins", file=sys.stderr)
    report["ok"] = ok
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    for i, arg in enumerate(args):
        if arg == "--json" and i + 1 < len(args):
            with open(args[i + 1], "w") as handle:
                handle.write(text + "\n")
        elif arg.startswith("--json="):
            with open(arg.split("=", 1)[1], "w") as handle:
                handle.write(text + "\n")
    if not ok:
        sys.exit(1)
    return report


if __name__ == "__main__":
    main()
