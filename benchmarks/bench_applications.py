"""Benchmarks for the future-work applications (DHT, DDoS pricing)."""

import numpy as np

from repro.applications.ddos import PricedJobQueue
from repro.applications.dht import SybilResistantDHT


def bench_dht_build_and_lookup(benchmark):
    def run():
        dht = SybilResistantDHT(redundancy=3, swarm_size=15)
        dht.sync_membership(
            [f"g{i}" for i in range(1_000)], [f"b{i}" for i in range(150)]
        )
        rng = np.random.default_rng(0)
        correct = 0
        for k in range(100):
            dht.put(f"key{k}", f"value{k}")
        for k in range(100):
            if dht.lookup(f"key{k}", rng).correct:
                correct += 1
        return correct

    correct = benchmark.pedantic(run, rounds=1, iterations=1)
    assert correct >= 98


def bench_dht_routing_only(benchmark):
    dht = SybilResistantDHT()
    dht.sync_membership([f"g{i}" for i in range(2_000)], [])

    def run():
        total_hops = 0
        for k in range(200):
            path = dht.ring.route("g0", f"key{k}")
            total_hops += len(path)
        return total_hops / 200

    mean_hops = benchmark(run)
    assert mean_hops <= 16  # O(log n) routing


def bench_ddos_flood_pricing(benchmark):
    def run():
        queue = PricedJobQueue(capacity_per_second=100.0, initial_rate=2.0)
        now = 0.0
        for _ in range(500):
            now += 1.0
            queue.submit_attack_burst(now, budget=10_000.0)
            queue.submit_good(now)
        return queue.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # sqrt asymmetry: the attacker pays ~sqrt(budget) times the good
    # client's per-window price (~70x at a 10k/s budget here).
    assert stats.attacker_cost > 50 * stats.good_cost
