"""Sweep executor benchmark: serial vs parallel wall time + engine throughput.

Two measurements:

1. **Engine event throughput** -- a fixed synthetic workload (joins with
   sessions, one recurring tick, a budget-limited greedy adversary)
   against :class:`repro.sim.null_defense.NullDefense`, so the number is
   dominated by the engine loop itself rather than defense bookkeeping.
2. **Sweep wall time** -- the quick Figure 8 sweep run serially
   (``jobs=1``) and through the :mod:`repro.experiments.parallel`
   process pool, with a row-for-row equality check between the two.

Run (writes ``BENCH_micro.json`` when ``--json`` is given)::

    PYTHONPATH=src python benchmarks/bench_sweep.py --quick --jobs 4 --json BENCH_micro.json

or simply ``make bench-quick``.  The JSON is a flat dict so future PRs
can diff perf trajectories across commits.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import List

from repro.adversary.strategies import GreedyJoinAdversary
from repro.experiments import figure8
from repro.experiments.config import Figure8Config
from repro.experiments.parallel import parse_jobs
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.events import GoodJoin
from repro.sim.null_defense import NullDefense


def churn_events(n_joins: int, horizon: float) -> List[GoodJoin]:
    """A deterministic join trace with sessions ~50 inter-arrival times."""
    step = horizon / n_joins
    session = 50.0 * step
    return [
        GoodJoin(time=(i + 1) * step, ident=f"g{i}", session=session)
        for i in range(n_joins)
    ]


def engine_throughput(n_joins: int = 20_000, horizon: float = 5_000.0,
                      repeats: int = 3) -> dict:
    """Best-of-N events/sec for the engine-loop workload."""
    best_eps = 0.0
    events = 0
    for _ in range(repeats):
        sim = Simulation(
            SimulationConfig(horizon=horizon, tick_interval=1.0, seed=1),
            NullDefense(),
            churn_events(n_joins, horizon),
            adversary=GreedyJoinAdversary(rate=0.5),
        )
        start = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - start
        events = result.counters["queue_pops"]
        best_eps = max(best_eps, events / elapsed)
    return {
        "engine_events": events,
        "engine_events_per_sec": round(best_eps),
        "engine_queue_max_size": result.counters["queue_max_size"],
    }


def sweep_times(config: Figure8Config, jobs: int) -> dict:
    """Serial vs parallel wall time for the same sweep, plus row equality."""
    start = time.perf_counter()
    serial_rows = figure8.run(config, jobs=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel_rows = figure8.run(config, jobs=jobs)
    parallel_s = time.perf_counter() - start

    return {
        "sweep_points": len(serial_rows),
        "sweep_serial_s": round(serial_s, 3),
        "sweep_parallel_s": round(parallel_s, 3),
        "sweep_jobs": jobs,
        "sweep_speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "sweep_rows_identical": parallel_rows == serial_rows,
    }


def main(argv: List[str] = None) -> dict:
    args = list(argv if argv is not None else sys.argv[1:])
    jobs = parse_jobs(args)
    config = Figure8Config.quick()
    if "--quick" not in args:
        # The non-quick sweep reproduces the full figure; keep the
        # benchmark bounded but meaningfully larger than the smoke run.
        config = Figure8Config(
            networks=["gnutella"], t_exponents=[0, 4, 8, 12, 16, 20],
            horizon=2_000.0, n0_scale=0.5,
        )
    report = {"cpu_count": os.cpu_count()}
    report.update(engine_throughput())
    report.update(sweep_times(config, jobs))
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    for i, arg in enumerate(args):
        if arg == "--json" and i + 1 < len(args):
            with open(args[i + 1], "w") as handle:
                handle.write(text + "\n")
        elif arg.startswith("--json="):
            with open(arg.split("=", 1)[1], "w") as handle:
                handle.write(text + "\n")
    return report


if __name__ == "__main__":
    main()
