"""Sweep executor benchmark: serial vs parallel wall time + engine throughput.

Three measurements:

1. **Engine event throughput** -- a fixed synthetic workload (joins with
   sessions, one recurring tick, a budget-limited greedy adversary)
   against :class:`repro.sim.null_defense.NullDefense`, so the number is
   dominated by the engine loop itself rather than defense bookkeeping.
   The workload is fed as a :class:`~repro.sim.blocks.ChurnBlock` and
   measured twice: through the zero-heap fast path
   (``engine_events_per_sec``) and with the fast path disabled so every
   row goes through the heap as an ``Event``
   (``engine_events_per_sec_heap``).  Events/sec counts *logical* events
   processed: ``queue_pops + churn_events_fast``.

2. **Fast-path equivalence** -- the quick Figure 8 sweep run serially
   with the fast path on and off; rows must match on every simulated
   quantity (``sweep_fastpath_rows_identical``).  Scheduling diagnostics
   (``queue_*``, ``churn_events_*``) are excluded from the comparison --
   they describe *how* events were processed, which is exactly what
   differs between the paths.

3. **Sweep wall time** -- the same sweep serially (``jobs=1``) and
   through the :mod:`repro.experiments.parallel` process pool, with a
   full row-for-row equality check (counters included: both runs take
   the same path).  When the requested ``--jobs`` exceeds the machine's
   cores the comparison is marked ``"skipped (insufficient cores)"``
   instead of recording a meaningless slowdown.

4. **Checkpoint journaling overhead** -- the same serial sweep re-run
   with a checkpoint journal enabled.  Reports the journaling wall
   share (``sweep_checkpoint_overhead_pct``; the perf trend flags it
   above 5%) and verifies the checkpointed rows are identical to the
   plain run's (``sweep_checkpoint_rows_identical``).

5. **Snapshot emission overhead** -- the engine-loop workload from (1)
   run with live telemetry on (``SnapshotPolicy(sim_interval=1.0)``,
   one snapshot per simulated second) vs off, best-of-N A/B.
   ``snapshot_overhead_pct`` is the extra wall share; the perf trend
   budgets it under 3%, and the final metrics must be identical
   (``snapshot_metrics_identical``) -- the hook's determinism
   contract.

6. **Profiler A/B** -- the same engine-loop workload with span
   attribution (:mod:`repro.profiling`) off vs on, interleaved
   best-of-N.  ``profiler_metrics_identical`` is the guard (profiling
   must never perturb the simulation); ``profiler_on_overhead_pct`` is
   informational -- the *enabled* profiler pays two clock reads per
   wrapped call by design and carries no budget.  The budgeted number
   is the *disabled* profiler's cost, which the perf trend derives
   from ``engine_events_per_sec`` against the committed snapshot
   (an in-binary off-vs-off A/B would measure only scheduler noise).

Run (writes ``BENCH_micro.json`` when ``--json`` is given)::

    PYTHONPATH=src python benchmarks/bench_sweep.py --quick --jobs 4 --json BENCH_micro.json

or simply ``make bench-quick``.  The JSON is a flat dict so future PRs
can diff perf trajectories across commits.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from typing import List

import numpy as np

from repro.adversary.strategies import GreedyJoinAdversary
from repro.experiments import figure8
from repro.profiling import ProfilePolicy
from repro.experiments.config import Figure8Config
from repro.experiments.parallel import parse_jobs
from repro.resilience import atomic_write_text
from repro.sim import engine
from repro.sim.blocks import ChurnBlock
from repro.sim.engine import PATH_COUNTERS, Simulation, SimulationConfig
from repro.sim.metrics import SnapshotPolicy
from repro.sim.null_defense import NullDefense


def churn_block(n_joins: int, horizon: float) -> ChurnBlock:
    """A deterministic join trace with sessions ~50 inter-arrival times."""
    step = horizon / n_joins
    times = (np.arange(n_joins) + 1) * step
    kinds = np.zeros(n_joins, dtype=np.uint8)
    sessions = np.full(n_joins, 50.0 * step)
    return ChurnBlock(times, kinds, sessions=sessions)


def engine_throughput(n_joins: int = 20_000, horizon: float = 5_000.0,
                      repeats: int = 5) -> dict:
    """Best-of-N events/sec for the engine-loop workload, both paths."""
    block = churn_block(n_joins, horizon)
    report = {}
    for label, fast in (("engine_events_per_sec", True),
                        ("engine_events_per_sec_heap", False)):
        best_eps = 0.0
        events = 0
        for _ in range(repeats):
            sim = Simulation(
                SimulationConfig(
                    horizon=horizon, tick_interval=1.0, seed=1,
                    churn_fast_path=fast,
                ),
                NullDefense(),
                [block],
                adversary=GreedyJoinAdversary(rate=0.5),
            )
            start = time.perf_counter()
            result = sim.run()
            elapsed = time.perf_counter() - start
            events = (
                result.counters["queue_pops"]
                + result.counters["churn_events_fast"]
            )
            best_eps = max(best_eps, events / elapsed)
        report[label] = round(best_eps)
        if fast:
            report["engine_events"] = events
            report["engine_queue_max_size"] = result.counters["queue_max_size"]
            report["engine_churn_fast"] = result.counters["churn_events_fast"]
            assert result.counters["churn_events_fast"] == n_joins, (
                "fast path did not engage for the block workload"
            )
        else:
            assert result.counters["churn_events_fast"] == 0, (
                "fast path ran with churn_fast_path=False"
            )
    report["engine_fastpath_speedup"] = round(
        report["engine_events_per_sec"] / report["engine_events_per_sec_heap"], 2
    )
    return report


def strip_path_counters(rows):
    """Rows reduced to simulated quantities only (for path A/B checks)."""
    stripped = []
    for row in rows:
        counters = {
            k: v for k, v in row.counters.items() if k not in PATH_COUNTERS
        }
        stripped.append(
            (
                row.network,
                row.defense,
                row.t_rate,
                row.good_spend_rate,
                row.adversary_spend_rate,
                row.max_bad_fraction,
                row.final_size,
                counters,
            )
        )
    return stripped


def fastpath_equivalence(config: Figure8Config):
    """Quick sweep with the fast path on vs off: rows must match.

    Returns the report fields plus the timed fast-path serial run, which
    :func:`sweep_times` reuses as its serial baseline (so each bench
    invocation pays two serial sweeps, not three).
    """
    start = time.perf_counter()
    rows_fast = figure8.run(config, jobs=1)
    serial_s = time.perf_counter() - start
    prev = engine.FAST_PATH_DEFAULT
    engine.FAST_PATH_DEFAULT = False
    try:
        rows_heap = figure8.run(config, jobs=1)
    finally:
        engine.FAST_PATH_DEFAULT = prev
    report = {
        "sweep_fastpath_rows_identical": (
            strip_path_counters(rows_fast) == strip_path_counters(rows_heap)
        ),
    }
    return report, rows_fast, serial_s


def sweep_times(config: Figure8Config, jobs: int,
                serial_rows, serial_s: float) -> dict:
    """Serial vs parallel wall time for the same sweep, plus row equality.

    The comparison is only meaningful when the machine can actually run
    ``jobs`` workers; on fewer cores the parallel run just adds IPC and
    scheduling overhead, so it is skipped and marked as such.
    """
    cpu_count = os.cpu_count() or 1
    serial_s = round(serial_s, 3)
    if jobs > cpu_count:
        return {
            "sweep_points": len(serial_rows),
            "sweep_serial_s": serial_s,
            "sweep_parallel_s": None,
            "sweep_jobs": jobs,
            "sweep_speedup": None,
            "sweep_comparison": "skipped (insufficient cores)",
            "sweep_rows_identical": None,
        }

    start = time.perf_counter()
    parallel_rows = figure8.run(config, jobs=jobs)
    parallel_s = time.perf_counter() - start

    return {
        "sweep_points": len(serial_rows),
        "sweep_serial_s": serial_s,
        "sweep_parallel_s": round(parallel_s, 3),
        "sweep_jobs": jobs,
        "sweep_speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "sweep_comparison": "ok",
        "sweep_rows_identical": parallel_rows == serial_rows,
    }


def checkpoint_overhead(config: Figure8Config, serial_rows) -> dict:
    """The serial sweep with checkpoint journaling on: cost + fidelity.

    ``sweep_checkpoint_overhead_pct`` is the journaling share of the
    checkpointed run's wall time (time spent atomically rewriting the
    journal); the committed perf guard expects it under 5%.
    """
    from repro.experiments.runtime import ExecutionPolicy

    with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as tmp:
        policy = ExecutionPolicy(
            checkpoint=os.path.join(tmp, "bench_sweep.ckpt")
        )
        start = time.perf_counter()
        rpt = figure8.run_report(config, jobs=1, policy=policy)
        wall = time.perf_counter() - start
    flush_s = rpt.checkpoint_flush_s
    return {
        "sweep_checkpoint_s": round(wall, 3),
        "sweep_checkpoint_flush_s": round(flush_s, 4),
        "sweep_checkpoint_overhead_pct": (
            round(100.0 * flush_s / wall, 2) if wall else 0.0
        ),
        "sweep_checkpoint_rows_identical": rpt.rows == serial_rows,
    }


def snapshot_overhead(n_joins: int = 100_000, horizon: float = 200.0,
                      repeats: int = 5) -> dict:
    """Engine wall cost of live telemetry at a 1 sim-second cadence.

    A dense workload (~500 joins per simulated second, comparable to a
    full-scale scenario burst) keeps the engine loop busy between
    snapshots, so the percentage reflects the hook's marginal cost at
    a realistic event rate rather than loop-startup noise.

    Like ``sweep_checkpoint_overhead_pct``, the budgeted number is an
    *internal ratio* rather than a wall-clock A/B: per-emission cost is
    timed directly (best-of-N blocks of direct ``_emit_snapshot``
    calls, each block short enough to dodge scheduler spikes) and
    scaled by the emission count over the snapshotted run's wall.  On
    a noisy shared box an off-vs-on A/B of ~1% true overhead swings by
    +-5% between whole trials; the internal ratio does not.  The
    un-timed remainder of the hook is two float compares per loop
    iteration, which is below measurement noise by construction.  The
    off-run still executes -- it anchors ``snapshot_metrics_identical``
    (the hook's determinism contract) and ``snapshot_off_s``.
    """

    def run(policy):
        snaps = []
        sim = Simulation(
            SimulationConfig(
                horizon=horizon, tick_interval=1.0, seed=1,
                snapshots=policy,
            ),
            NullDefense(),
            [churn_block(n_joins, horizon)],
            adversary=GreedyJoinAdversary(rate=0.5),
            on_snapshot=snaps.append if policy is not None else None,
        )
        start = time.perf_counter()
        result = sim.run()
        return time.perf_counter() - start, result, len(snaps), sim

    policy = SnapshotPolicy(sim_interval=1.0)
    best_off = best_on = float("inf")
    n_snaps = 0
    for _ in range(repeats):
        wall_off, result_off, _, _ = run(None)
        wall_on, result_on, n_snaps, sim_on = run(policy)
        best_off = min(best_off, wall_off)
        best_on = min(best_on, wall_on)
    # Per-emission cost, timed in short blocks against the finished
    # simulation's real state (emission only reads state, so post-run
    # calls exercise the same code path the loop does).
    sim_on.on_snapshot = lambda snap: None
    block_n = 100
    per_emit = float("inf")
    for _ in range(10):
        start = time.perf_counter()
        for _ in range(block_n):
            sim_on._emit_snapshot(horizon, 0, 0, 0)
        per_emit = min(per_emit, (time.perf_counter() - start) / block_n)
    identical = (
        result_off.good_spend == result_on.good_spend
        and result_off.adversary_spend == result_on.adversary_spend
        and result_off.max_bad_fraction == result_on.max_bad_fraction
        and result_off.final_system_size == result_on.final_system_size
        and result_off.counters == result_on.counters
    )
    return {
        "snapshot_off_s": round(best_off, 4),
        "snapshot_on_s": round(best_on, 4),
        "snapshot_count": n_snaps,
        "snapshot_emit_us": round(per_emit * 1e6, 2),
        "snapshot_overhead_pct": round(
            100.0 * (n_snaps * per_emit) / best_on, 2
        ),
        "snapshot_metrics_identical": identical,
    }


def profiler_overhead(n_joins: int = 20_000, horizon: float = 5_000.0,
                      repeats: int = 5) -> dict:
    """Span attribution off vs on for the engine-loop workload.

    The off and on runs are interleaved within each repeat so both
    sample the same scheduler weather; the reported overhead is an
    informational best-of-N wall delta (the enabled profiler is *meant*
    to cost something -- attribution is what it buys).  The hard
    guarantee checked here is ``profiler_metrics_identical``: the
    profiled run's simulated outcome matches the plain run exactly.
    """
    block = churn_block(n_joins, horizon)

    def run(policy):
        sim = Simulation(
            SimulationConfig(
                horizon=horizon, tick_interval=1.0, seed=1, profile=policy,
            ),
            NullDefense(),
            [block],
            adversary=GreedyJoinAdversary(rate=0.5),
        )
        start = time.perf_counter()
        result = sim.run()
        return time.perf_counter() - start, result, sim

    best_off = best_on = float("inf")
    spans = 0
    for _ in range(repeats):
        wall_off, result_off, _ = run(None)
        wall_on, result_on, sim_on = run(ProfilePolicy())
        best_off = min(best_off, wall_off)
        best_on = min(best_on, wall_on)
        spans = len(sim_on.profiler.report().rows)
    identical = (
        result_off.good_spend == result_on.good_spend
        and result_off.adversary_spend == result_on.adversary_spend
        and result_off.max_bad_fraction == result_on.max_bad_fraction
        and result_off.final_system_size == result_on.final_system_size
        and result_off.counters == result_on.counters
    )
    return {
        "profiler_off_s": round(best_off, 4),
        "profiler_on_s": round(best_on, 4),
        "profiler_spans": spans,
        "profiler_on_overhead_pct": round(
            100.0 * (best_on - best_off) / best_off, 2
        ) if best_off else None,
        "profiler_metrics_identical": identical,
    }


def main(argv: List[str] = None) -> dict:
    args = list(argv if argv is not None else sys.argv[1:])
    jobs = parse_jobs(args)
    config = Figure8Config.quick()
    if "--quick" not in args:
        # The non-quick sweep reproduces the full figure; keep the
        # benchmark bounded but meaningfully larger than the smoke run.
        config = Figure8Config(
            networks=["gnutella"], t_exponents=[0, 4, 8, 12, 16, 20],
            horizon=2_000.0, n0_scale=0.5,
        )
    report = {"cpu_count": os.cpu_count()}
    report.update(engine_throughput())
    equivalence, serial_rows, serial_s = fastpath_equivalence(config)
    report.update(equivalence)
    report.update(sweep_times(config, jobs, serial_rows, serial_s))
    report.update(checkpoint_overhead(config, serial_rows))
    report.update(snapshot_overhead())
    report.update(profiler_overhead())
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    for i, arg in enumerate(args):
        if arg == "--json" and i + 1 < len(args):
            atomic_write_text(args[i + 1], text + "\n")
        elif arg.startswith("--json="):
            atomic_write_text(arg.split("=", 1)[1], text + "\n")
    return report


if __name__ == "__main__":
    main()
