"""Ablation benchmarks: Ergo's constants vs their neighbours."""

from repro.experiments.ablations import AblationConfig, run_ablations


def bench_ablation_sweep(benchmark):
    config = AblationConfig.quick()

    def run():
        return run_ablations(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    defaults = [
        r for r in rows if r.knob == "purge_fraction" and abs(r.value - 1 / 11) < 1e-9
    ]
    assert defaults and defaults[0].defid_ok
    # A purge fraction of 1/4 lets the bad fraction climb well above the
    # default's ceiling -- the ablation shows why 1/11-ish is needed.
    loose = [r for r in rows if r.knob == "purge_fraction" and r.value > 0.2]
    assert loose and loose[0].max_bad_fraction > defaults[0].max_bad_fraction
