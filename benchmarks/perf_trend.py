"""CI perf trend report: fresh benchmark snapshots vs the committed ones.

``make bench-quick`` / ``make bench-scale`` overwrite ``BENCH_micro.json``
and ``BENCH_scale.json`` in place, so the baseline is read from git
(``git show HEAD:<file>``) rather than the working tree.  Throughput
metrics (events/sec, speedups) regress when they *drop* by more than the
threshold; wall-time metrics regress when they *grow* by more than the
threshold.  Sub-threshold drift is reported but not flagged.  A few
metrics carry *absolute* budgets instead (``MICRO_LIMITS``, e.g.
checkpoint journaling overhead < 5% of the sweep wall) and are flagged
whenever the fresh value exceeds the budget, baseline or not.

The report is a markdown table printed to stdout and, when running under
GitHub Actions (``GITHUB_STEP_SUMMARY`` set), appended to the workflow
summary so regressions are visible in review without digging through
artifacts.  The exit code is 0 unless ``--strict`` is given (perf on
shared CI runners is noisy; the trend is advisory by default).

Usage::

    python benchmarks/perf_trend.py [--threshold 0.2] [--strict]
        [--micro BENCH_micro.json] [--scale BENCH_scale.json]
        [--baseline-ref HEAD]
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: metric name -> (json key, higher_is_better) for the micro snapshot.
MICRO_METRICS = {
    "engine events/sec (fast path)": ("engine_events_per_sec", True),
    "engine events/sec (heap path)": ("engine_events_per_sec_heap", True),
    "fast-path speedup": ("engine_fastpath_speedup", True),
    "quick sweep wall (s)": ("sweep_serial_s", False),
    # membership floor (bench_membership.py merges these keys in)
    "membership arena join (ns)": ("membership_arena_join_ns", False),
    "membership arena batch join (ns)": ("membership_arena_join_batch_ns", False),
    "membership arena remove (ns)": ("membership_arena_remove_ns", False),
    "membership arena random_good (ns)": ("membership_arena_random_good_ns", False),
    "membership dict-vs-arena batch speedup": (
        "membership_arena_batch_speedup",
        True,
    ),
    "checkpointed quick sweep wall (s)": ("sweep_checkpoint_s", False),
}

#: metric name -> (json key, absolute ceiling) for the micro snapshot.
#: Unlike the relative trend these need no committed baseline: the
#: fresh value alone is compared to a fixed budget (the checkpoint
#: journaling guard from the fault-tolerant runtime work).
MICRO_LIMITS = {
    "checkpoint journaling overhead (% of sweep wall)": (
        "sweep_checkpoint_overhead_pct",
        5.0,
    ),
    "snapshot emission overhead (% of engine wall)": (
        "snapshot_overhead_pct",
        3.0,
    ),
}

#: Budget for the *disabled* profiler's engine cost: how much fresh
#: fast-path throughput may fall short of the committed snapshot's.
#: The profiler's contract is that run() with ``profile=None`` binds
#: the same callables it always did, so any sustained drop here is
#: instrumentation leaking into the hot loop (or a real engine
#: regression -- either way, look).  Derived from
#: ``engine_events_per_sec``, not measured in-binary: an off-vs-off
#: A/B inside one process is pure scheduler noise.
PROFILER_OFF_BUDGET_PCT = 3.0

#: per-defense metrics from the scale snapshot's ``runs`` rows (the
#: ``runs_xl`` tier reports under a ``scale-xl/`` prefix and the
#: streamed 10^6-event trace-replay tier under ``trace-replay/``).
SCALE_METRICS = {
    "events/sec": ("events_per_sec", True),
    "wall (s)": ("wall_s", False),
    # Span attribution shares (bench_scale's profiled extra run):
    # growth means that bucket is eating a larger slice of the wall.
    "heap span share (%)": ("span_heap_pct", False),
    "defense span share (%)": ("span_defense_pct", False),
    "dispatch span share (%)": ("span_dispatch_pct", False),
}

#: scale-snapshot tiers: (rows key, report prefix).
SCALE_TIERS = (
    ("runs", "scale"),
    ("runs_xl", "scale-xl"),
    ("runs_trace", "trace-replay"),
)


REPO_ROOT = Path(__file__).resolve().parent.parent


def load_baseline(path: str, ref: str) -> Optional[dict]:
    """The committed snapshot at ``ref``, or ``None`` when unavailable.

    The baseline is looked up at the *same repo-relative path* as the
    fresh file (git paths are always repo-rooted); a fresh file outside
    the repository has no committed counterpart and compares to nothing
    rather than to a same-named file somewhere else.
    """
    try:
        rel = Path(path).resolve().relative_to(REPO_ROOT)
    except ValueError:
        return None
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{rel.as_posix()}"],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
        ).stdout
        return json.loads(blob)
    except (subprocess.CalledProcessError, OSError, json.JSONDecodeError):
        return None


def load_fresh(path: str) -> Optional[dict]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def compare_metric(
    label: str,
    baseline: Optional[float],
    fresh: Optional[float],
    higher_is_better: bool,
    threshold: float,
) -> Optional[dict]:
    """One comparison row; ``None`` when either side is missing/zero."""
    if not isinstance(baseline, (int, float)) or not isinstance(fresh, (int, float)):
        return None
    if baseline == 0:
        return None
    change = (fresh - baseline) / abs(baseline)
    worse = -change if higher_is_better else change
    return {
        "metric": label,
        "baseline": baseline,
        "fresh": fresh,
        "change": change,
        "regressed": worse > threshold,
    }


def collect_rows(
    micro_fresh: Optional[dict],
    micro_base: Optional[dict],
    scale_fresh: Optional[dict],
    scale_base: Optional[dict],
    threshold: float,
) -> List[dict]:
    rows: List[dict] = []
    if micro_fresh and micro_base:
        for label, (key, higher) in MICRO_METRICS.items():
            row = compare_metric(
                f"micro: {label}",
                micro_base.get(key),
                micro_fresh.get(key),
                higher,
                threshold,
            )
            if row:
                rows.append(row)
    if micro_fresh:
        # Absolute budgets: compared against the fixed limit (shown in
        # the "committed" column), not a committed snapshot, so they
        # guard even a first run with no baseline.
        for label, (key, limit) in MICRO_LIMITS.items():
            fresh = micro_fresh.get(key)
            if not isinstance(fresh, (int, float)):
                continue
            rows.append(
                {
                    "metric": f"micro: {label}",
                    "baseline": limit,
                    "fresh": fresh,
                    "change": (fresh - limit) / limit,
                    "regressed": fresh > limit,
                }
            )
    if micro_fresh and micro_base:
        base_eps = micro_base.get("engine_events_per_sec")
        fresh_eps = micro_fresh.get("engine_events_per_sec")
        if (isinstance(base_eps, (int, float))
                and isinstance(fresh_eps, (int, float)) and base_eps > 0):
            overhead_pct = max(0.0, 100.0 * (base_eps - fresh_eps) / base_eps)
            rows.append(
                {
                    "metric": ("micro: profiler-disabled engine overhead "
                               "(% vs committed events/sec)"),
                    "baseline": PROFILER_OFF_BUDGET_PCT,
                    "fresh": round(overhead_pct, 2),
                    "change": (
                        (overhead_pct - PROFILER_OFF_BUDGET_PCT)
                        / PROFILER_OFF_BUDGET_PCT
                    ),
                    "regressed": overhead_pct > PROFILER_OFF_BUDGET_PCT,
                }
            )
    if scale_fresh and scale_base:
        for tier, prefix in SCALE_TIERS:
            base_runs = {
                r.get("defense"): r for r in scale_base.get(tier, [])
            }
            for run in scale_fresh.get(tier, []):
                base = base_runs.get(run.get("defense"))
                if not base:
                    continue
                for label, (key, higher) in SCALE_METRICS.items():
                    row = compare_metric(
                        f"{prefix}/{run['defense']}: {label}",
                        base.get(key),
                        run.get(key),
                        higher,
                        threshold,
                    )
                    if row:
                        rows.append(row)
    return rows


def render_markdown(rows: List[dict], threshold: float, notes: List[str]) -> str:
    lines = ["## Perf trend vs committed snapshots", ""]
    for note in notes:
        lines.append(f"> {note}")
    if notes:
        lines.append("")
    if not rows:
        lines.append("_No comparable metrics found._")
        return "\n".join(lines)
    regressions = [r for r in rows if r["regressed"]]
    if regressions:
        lines.append(
            f"**:warning: {len(regressions)} metric(s) regressed more than "
            f"{threshold:.0%}.**"
        )
    else:
        lines.append(f"No regressions beyond {threshold:.0%}.")
    lines += [
        "",
        "| metric | committed | fresh | change | |",
        "|---|---:|---:|---:|---|",
    ]
    for row in rows:
        flag = ":warning: regression" if row["regressed"] else ""
        lines.append(
            f"| {row['metric']} | {row['baseline']:g} | {row['fresh']:g} "
            f"| {row['change']:+.1%} | {flag} |"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])

    def opt(flag: str, default: str) -> str:
        for i, arg in enumerate(args):
            if arg == flag and i + 1 < len(args):
                return args[i + 1]
            if arg.startswith(flag + "="):
                return arg.split("=", 1)[1]
        return default

    threshold = float(opt("--threshold", "0.2"))
    micro_path = opt("--micro", "BENCH_micro.json")
    scale_path = opt("--scale", "BENCH_scale.json")
    ref = opt("--baseline-ref", "HEAD")
    strict = "--strict" in args

    micro_fresh = load_fresh(micro_path)
    scale_fresh = load_fresh(scale_path)
    micro_base = load_baseline(micro_path, ref)
    scale_base = load_baseline(scale_path, ref)

    notes = []
    for label, fresh, base in (
        ("micro", micro_fresh, micro_base),
        ("scale", scale_fresh, scale_base),
    ):
        if fresh is None:
            notes.append(f"{label}: fresh snapshot missing -- run the benchmark first")
        elif base is None:
            notes.append(f"{label}: no committed baseline at {ref} -- skipped")

    rows = collect_rows(micro_fresh, micro_base, scale_fresh, scale_base, threshold)
    text = render_markdown(rows, threshold, notes)
    print(text)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        # GITHUB_STEP_SUMMARY is an append-only contract shared with
        # every other CI step; replacing the file would drop their
        # sections, and a torn tail only costs one advisory report.
        with open(summary_path, "a") as handle:  # lint: allow[atomic-write] -- shared append-only CI summary file
            handle.write(text + "\n")

    if strict and any(row["regressed"] for row in rows):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
