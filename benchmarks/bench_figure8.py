"""Figure 8 benchmarks: A-vs-T sweep points for all five algorithms.

Each benchmark runs one scaled-down sweep point (the same code path as
``python -m repro.experiments.figure8``); the final benchmark runs the
whole quick sweep and sanity-checks the reproduced curve shapes.
"""

import pytest

from repro.baselines.ccom import CCom
from repro.baselines.remp import Remp
from repro.baselines.sybilcontrol import SybilControl
from repro.churn.datasets import NETWORKS
from repro.core.ergo import Ergo
from repro.core.heuristics import ergo_sf
from repro.experiments import figure8
from repro.experiments.config import Figure8Config
from repro.experiments.runner import run_point

HORIZON = 400.0
N0 = 1_000
T_ATTACK = float(2**14)

POINT_FACTORIES = {
    "ergo": Ergo,
    "ccom": CCom,
    "sybilcontrol": SybilControl,
    "remp": lambda: Remp(t_max=1.0e7),
    "ergo_sf": lambda: ergo_sf(0.98, combined=False),
}


@pytest.mark.parametrize("name", sorted(POINT_FACTORIES))
def bench_figure8_point(benchmark, name):
    factory = POINT_FACTORIES[name]
    network = NETWORKS["gnutella"]

    def run():
        return run_point(
            factory, network, T_ATTACK, horizon=HORIZON, seed=3, n0=N0
        )

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row.good_spend_rate > 0


def bench_figure8_quick_sweep(benchmark):
    config = Figure8Config.quick()

    def run():
        return figure8.run(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by = {(r.defense, r.t_rate): r for r in rows}
    t_top = max(r.t_rate for r in rows)
    # Reproduction shape checks (see DESIGN.md experiment index).
    assert by[("ERGO", t_top)].good_spend_rate < by[("CCOM", t_top)].good_spend_rate
    assert by[("ERGO-SF", t_top)].good_spend_rate < by[("ERGO", t_top)].good_spend_rate
    remp_rates = [r.good_spend_rate for r in rows if r.defense == "REMP"]
    assert max(remp_rates) / min(remp_rates) < 1.2
