"""Figure 10 benchmarks: the heuristic variants under one attack size."""

import pytest

from repro.churn.datasets import NETWORKS
from repro.core.ergo import Ergo
from repro.core.heuristics import ergo_ch1, ergo_ch2, ergo_sf
from repro.experiments import figure10
from repro.experiments.config import Figure10Config
from repro.experiments.runner import run_point

HORIZON = 400.0
N0 = 1_000
T_ATTACK = float(2**14)

VARIANTS = {
    "ergo": Ergo,
    "ergo_ch1": ergo_ch1,
    "ergo_ch2": ergo_ch2,
    "ergo_sf92": lambda: ergo_sf(0.92),
    "ergo_sf98": lambda: ergo_sf(0.98),
}


@pytest.mark.parametrize("name", sorted(VARIANTS))
def bench_figure10_point(benchmark, name):
    factory = VARIANTS[name]
    network = NETWORKS["gnutella"]

    def run():
        return run_point(
            factory, network, T_ATTACK, horizon=HORIZON, seed=3, n0=N0
        )

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row.maintains_defid


def bench_figure10_quick_sweep(benchmark):
    config = Figure10Config.quick()

    def run():
        return figure10.run(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t_top = max(r.t_rate for r in rows)
    by = {(r.defense, r.t_rate): r.good_spend_rate for r in rows}
    # The classifier variants dominate at the largest attack.
    assert by[("ERGO-SF(98)", t_top)] < by[("ERGO", t_top)]
    assert by[("ERGO-SF(92)", t_top)] < by[("ERGO", t_top)]
