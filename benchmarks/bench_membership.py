"""Membership-backend microbenchmark: dict vs arena, per-op and batch.

The membership layer is the floor under the engine's block fast path
(every good join/departure lands here), so its per-op cost caps
simulation throughput.  This micro measures, for both storage backends
(:class:`~repro.identity.membership.DictMembershipSet` and
:class:`~repro.identity.membership.ArenaMembershipSet`):

* ``join``        -- per-row ``add`` (the heap path's cost);
* ``join_batch``  -- ``add_batch`` in engine-realistic runs
  (``BATCH`` rows, the block fast path's cost);
* ``remove``      -- ``remove_batch`` over the same runs, against a
  standing population (swap-removal + free-list recycling);
* ``random_good`` -- uniform victim selection (the ABC model's rule).

Results merge into ``BENCH_micro.json`` (run ``make bench-quick``
first; this target updates the membership keys in place) so
``benchmarks/perf_trend.py`` flags regressions in the new floor.

Usage::

    PYTHONPATH=src python benchmarks/bench_membership.py \
        [--n 200000] [--json BENCH_micro.json]

or simply ``make bench-membership``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from repro.identity.membership import ArenaMembershipSet, DictMembershipSet
from repro.resilience import atomic_write_text

BACKENDS = {"dict": DictMembershipSet, "arena": ArenaMembershipSet}

#: engine-realistic run length (session departures cut block runs to
#: roughly this size once a crowd's departures start interleaving)
BATCH = 8

#: best-of repetitions (the box's scheduler noise dominates one-shot
#: numbers; the workloads themselves are deterministic)
REPEATS = 3


def _time_ns_per_op(fn: Callable[[], int]) -> float:
    """Best-of-``REPEATS`` wall time of ``fn`` per operation, in ns."""
    best = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - start
        per_op = elapsed * 1e9 / max(ops, 1)
        if best is None or per_op < best:
            best = per_op
    return round(best, 1)


def bench_backend(backend: str, n: int) -> Dict[str, float]:
    cls = BACKENDS[backend]
    names = [f"g#{i}" for i in range(n)]
    times = [float(i) * 1e-3 for i in range(n)]

    def join() -> int:
        m = cls()
        add = m.add
        for ident, t in zip(names, times):
            add(ident, True, t)
        return n

    def join_batch() -> int:
        m = cls()
        add_batch = m.add_batch
        for start in range(0, n, BATCH):
            add_batch(
                names[start : start + BATCH],
                True,
                times[start : start + BATCH],
            )
        return n

    def remove() -> int:
        m = cls()
        m.add_batch(names, True, times)
        remove_batch = m.remove_batch
        for start in range(0, n, BATCH):
            remove_batch(names[start : start + BATCH])
        return n

    def random_good() -> int:
        m = cls()
        m.add_batch(names, True, times)
        rng = np.random.default_rng(0)
        draw = m.random_good
        draws = min(n, 100_000)
        for _ in range(draws):
            draw(rng)
        return draws

    return {
        f"membership_{backend}_join_ns": _time_ns_per_op(join),
        f"membership_{backend}_join_batch_ns": _time_ns_per_op(join_batch),
        f"membership_{backend}_remove_ns": _time_ns_per_op(remove),
        f"membership_{backend}_random_good_ns": _time_ns_per_op(random_good),
    }


def main(argv: List[str] = None) -> dict:
    args = list(argv if argv is not None else sys.argv[1:])

    def opt(flag: str, default: str) -> str:
        for i, arg in enumerate(args):
            if arg == flag and i + 1 < len(args):
                return args[i + 1]
            if arg.startswith(flag + "="):
                return arg.split("=", 1)[1]
        return default

    n = int(opt("--n", "200000"))
    json_path = opt("--json", "BENCH_micro.json")

    metrics: Dict[str, float] = {"membership_bench_n": n}
    for backend in BACKENDS:
        metrics.update(bench_backend(backend, n))
    batch = metrics["membership_arena_join_batch_ns"]
    if batch:
        metrics["membership_arena_batch_speedup"] = round(
            metrics["membership_dict_join_ns"] / batch, 2
        )

    # Merge into the existing micro snapshot rather than replacing it:
    # bench-quick owns the engine/sweep keys, this target the
    # membership_* keys.
    snapshot = {}
    if os.path.exists(json_path):
        try:
            with open(json_path) as handle:
                snapshot = json.load(handle)
        except (OSError, json.JSONDecodeError):
            snapshot = {}
    snapshot.update(metrics)
    text = json.dumps(snapshot, indent=2, sort_keys=True)
    atomic_write_text(json_path, text + "\n")
    print(json.dumps(metrics, indent=2, sort_keys=True))
    return metrics


if __name__ == "__main__":
    main()
