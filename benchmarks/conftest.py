"""Benchmark fixtures.

Every benchmark uses the *quick* experiment configurations: the same
code paths as the paper-scale sweeps, scaled down so the benchmark
suite finishes in minutes.  Regenerating the full figures is done via
``python -m repro.experiments.figureN`` (see DESIGN.md / EXPERIMENTS.md).
"""

import pytest


@pytest.fixture(autouse=True)
def _benchmark_min_rounds(request):
    """Sweep-level benchmarks are slow; one round is informative."""
    return None
