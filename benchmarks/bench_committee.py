"""Committee benchmarks: decentralized Ergo and the SMR layer."""

from repro.committee.smr import Behaviour, Replica, ReplicatedLog
from repro.experiments import committee_exp
from repro.experiments.config import CommitteeConfig


def bench_committee_invariants(benchmark):
    config = CommitteeConfig.quick()

    def run():
        return committee_exp.run(config)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.all_good_majority
    assert report.max_bad_fraction < 1 / 6


def bench_smr_throughput(benchmark):
    replicas = [Replica(ident=f"g{i}") for i in range(25)]
    replicas += [
        Replica(ident=f"b{i}", behaviour=Behaviour.FLIP) for i in range(8)
    ]

    def run():
        log = ReplicatedLog(list(replicas))
        for replica in log.replicas:
            replica.log.clear()
        for i in range(500):
            log.propose(f"op{i}")
        return log

    log = benchmark(run)
    assert log.good_logs_agree()
