#!/usr/bin/env python
"""``make serve-smoke`` -- end-to-end drill of ``python -m repro serve``.

Boots the service on an ephemeral port with a throwaway data dir,
then walks the whole lifecycle the ISSUE acceptance demands:

1. ``GET /healthz`` answers ``ok``;
2. ``POST /jobs`` submits a small catalog job with an injected
   ``crash@0`` fault (the first point's first attempt hard-kills its
   worker process -- the supervisor must absorb the
   ``BrokenProcessPool``, rebuild, and retry);
3. ``GET /jobs/<id>/live`` is attached mid-job and must stream at
   least one ``event: snapshot`` SSE frame (gap-free seqs, terminal
   frame matching the persisted row) before the ``event: done``;
4. the job is polled to ``succeeded`` and its rows are served back;
5. ``GET /metrics`` exposes the Prometheus counters;
6. SIGTERM drains the service, which must exit 0 within the drain
   timeout.

Stdlib only; exits non-zero (with the service log) on any violation.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

POLL_TIMEOUT_S = 180.0
DRAIN_TIMEOUT_S = 20.0

JOB = {
    "scenarios": ["flash-crowd"],
    "defenses": ["Null", "ERGO"],
    "n0_scale": 0.05,
    "jobs": 2,               # crash faults need worker *processes*
    "max_retries": 2,
    "fault_spec": "crash@0",  # first point's first attempt dies hard
    "snapshot_interval": 1.0,  # live telemetry for the /live drill
}


def fail(message: str, output: str = "") -> None:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    if output:
        print("---- service output ----", file=sys.stderr)
        print(output, file=sys.stderr)
    sys.exit(1)


def request(method: str, url: str, payload=None, timeout: float = 15.0):
    body = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


def read_live(url: str, job_id: str, frames: list) -> None:
    """Collect SSE frames from /jobs/<id>/live until the done event."""
    try:
        resp = urllib.request.urlopen(
            f"{url}/jobs/{job_id}/live", timeout=POLL_TIMEOUT_S
        )
        buf = b""
        while True:
            chunk = resp.read(1)
            if not chunk:
                return
            buf += chunk
            if buf.endswith(b"\n\n"):
                frames.append(buf.decode("utf-8"))
                if buf.startswith(b"event: done"):
                    return
                buf = b""
    except Exception as exc:  # lint: allow[broad-except] -- reader errors surface through the frames assertion
        frames.append(f"READER-ERROR: {exc}")


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve",
         "--port", "0", "--data-dir", data_dir,
         "--max-workers", "1", "--drain-timeout", str(DRAIN_TIMEOUT_S)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    lines: list = []
    banner = threading.Event()
    base = [""]

    def pump() -> None:
        for line in proc.stdout:  # type: ignore[union-attr]
            lines.append(line)
            match = re.search(r"listening on (http://[\w.:]+)", line)
            if match:
                base[0] = match.group(1)
                banner.set()

    reader = threading.Thread(target=pump, daemon=True)
    reader.start()

    try:
        if not banner.wait(timeout=60.0):
            fail("service never printed its listen banner", "".join(lines))
        url = base[0]

        status, body = request("GET", f"{url}/healthz")
        if status != 200 or json.loads(body)["status"] != "ok":
            fail(f"healthz: {status} {body}", "".join(lines))

        status, body = request("POST", f"{url}/jobs", JOB)
        if status != 201:
            fail(f"submit: {status} {body}", "".join(lines))
        job_id = json.loads(body)["id"]
        print(f"serve-smoke: submitted job {job_id} (crash@0 injected)")

        frames: list = []
        live_reader = threading.Thread(
            target=read_live, args=(url, job_id, frames), daemon=True
        )
        live_reader.start()

        deadline = time.time() + POLL_TIMEOUT_S
        record = {}
        while time.time() < deadline:
            status, body = request("GET", f"{url}/jobs/{job_id}")
            record = json.loads(body)
            if status == 200 and record["state"] in ("succeeded", "failed"):
                break
            time.sleep(0.5)
        if record.get("state") != "succeeded":
            fail(f"job did not succeed: {record}", "".join(lines))
        summary = record["summary"]
        if summary["pool_rebuilds"] + summary["retries"] < 1:
            fail(f"injected crash left no recovery trace: {summary}",
                 "".join(lines))
        print(f"serve-smoke: job succeeded "
              f"(retries={summary['retries']}, "
              f"pool_rebuilds={summary['pool_rebuilds']})")

        status, body = request("GET", f"{url}/jobs/{job_id}/rows")
        rows = json.loads(body)
        if status != 200 or rows["count"] != len(JOB["defenses"]):
            fail(f"rows: {status} {body}", "".join(lines))

        live_reader.join(timeout=30.0)
        errors = [f for f in frames if f.startswith("READER-ERROR")]
        if errors:
            fail(f"live reader: {errors[0]}", "".join(lines))
        snaps = [f for f in frames if "event: snapshot" in f]
        dones = [f for f in frames if f.startswith("event: done")]
        if not snaps:
            fail(f"/live streamed no snapshot frames ({len(frames)} frames)",
                 "".join(lines))
        if not dones:
            fail("/live never sent the terminal done frame", "".join(lines))
        seqs = [int(f.split("id: ")[1].split("\n")[0]) for f in snaps]
        if seqs != list(range(seqs[0], seqs[0] + len(seqs))):
            fail(f"/live seqs are not gap-free monotone: {seqs}",
                 "".join(lines))
        last = [
            json.loads(f.split("data: ")[1].strip())
            for f in snaps
            if json.loads(f.split("data: ")[1].strip()).get("last")
        ]
        row_by_idx = {r["index"]: r["row"] for r in rows["rows"]}
        for snap in last:
            row = row_by_idx[snap["point"]]
            if abs(snap["good_spend"] - row["good_spend"]) > 1e-9:
                fail(f"terminal snapshot disagrees with row: {snap}",
                     "".join(lines))
        print(f"serve-smoke: /live streamed {len(snaps)} snapshot(s), "
              f"{len(last)} terminal, all matching persisted rows")

        status, body = request("GET", f"{url}/metrics")
        if status != 200 or "repro_serve_jobs" not in body:
            fail(f"metrics: {status} {body[:200]}", "".join(lines))

        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=DRAIN_TIMEOUT_S + 30.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("service did not exit after SIGTERM + drain timeout",
                 "".join(lines))
        if code != 0:
            fail(f"service exited {code} after SIGTERM", "".join(lines))
        print("serve-smoke: SIGTERM drained cleanly (exit 0)")
        print("serve-smoke: PASS")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)


if __name__ == "__main__":
    main()
