#!/usr/bin/env python
"""``make serve-smoke`` -- end-to-end drill of ``python -m repro serve``.

Boots the service on an ephemeral port with a throwaway data dir,
then walks the whole lifecycle the ISSUE acceptance demands:

1. ``GET /healthz`` answers ``ok``;
2. ``POST /jobs`` submits a small catalog job with an injected
   ``crash@0`` fault (the first point's first attempt hard-kills its
   worker process -- the supervisor must absorb the
   ``BrokenProcessPool``, rebuild, and retry);
3. the job is polled to ``succeeded`` and its rows are served back;
4. ``GET /metrics`` exposes the Prometheus counters;
5. SIGTERM drains the service, which must exit 0 within the drain
   timeout.

Stdlib only; exits non-zero (with the service log) on any violation.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

POLL_TIMEOUT_S = 180.0
DRAIN_TIMEOUT_S = 20.0

JOB = {
    "scenarios": ["flash-crowd"],
    "defenses": ["Null", "ERGO"],
    "n0_scale": 0.05,
    "jobs": 2,               # crash faults need worker *processes*
    "max_retries": 2,
    "fault_spec": "crash@0",  # first point's first attempt dies hard
}


def fail(message: str, output: str = "") -> None:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    if output:
        print("---- service output ----", file=sys.stderr)
        print(output, file=sys.stderr)
    sys.exit(1)


def request(method: str, url: str, payload=None, timeout: float = 15.0):
    body = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve",
         "--port", "0", "--data-dir", data_dir,
         "--max-workers", "1", "--drain-timeout", str(DRAIN_TIMEOUT_S)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    lines: list = []
    banner = threading.Event()
    base = [""]

    def pump() -> None:
        for line in proc.stdout:  # type: ignore[union-attr]
            lines.append(line)
            match = re.search(r"listening on (http://[\w.:]+)", line)
            if match:
                base[0] = match.group(1)
                banner.set()

    reader = threading.Thread(target=pump, daemon=True)
    reader.start()

    try:
        if not banner.wait(timeout=60.0):
            fail("service never printed its listen banner", "".join(lines))
        url = base[0]

        status, body = request("GET", f"{url}/healthz")
        if status != 200 or json.loads(body)["status"] != "ok":
            fail(f"healthz: {status} {body}", "".join(lines))

        status, body = request("POST", f"{url}/jobs", JOB)
        if status != 201:
            fail(f"submit: {status} {body}", "".join(lines))
        job_id = json.loads(body)["id"]
        print(f"serve-smoke: submitted job {job_id} (crash@0 injected)")

        deadline = time.time() + POLL_TIMEOUT_S
        record = {}
        while time.time() < deadline:
            status, body = request("GET", f"{url}/jobs/{job_id}")
            record = json.loads(body)
            if status == 200 and record["state"] in ("succeeded", "failed"):
                break
            time.sleep(0.5)
        if record.get("state") != "succeeded":
            fail(f"job did not succeed: {record}", "".join(lines))
        summary = record["summary"]
        if summary["pool_rebuilds"] + summary["retries"] < 1:
            fail(f"injected crash left no recovery trace: {summary}",
                 "".join(lines))
        print(f"serve-smoke: job succeeded "
              f"(retries={summary['retries']}, "
              f"pool_rebuilds={summary['pool_rebuilds']})")

        status, body = request("GET", f"{url}/jobs/{job_id}/rows")
        rows = json.loads(body)
        if status != 200 or rows["count"] != len(JOB["defenses"]):
            fail(f"rows: {status} {body}", "".join(lines))

        status, body = request("GET", f"{url}/metrics")
        if status != 200 or "repro_serve_jobs" not in body:
            fail(f"metrics: {status} {body[:200]}", "".join(lines))

        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=DRAIN_TIMEOUT_S + 30.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("service did not exit after SIGTERM + drain timeout",
                 "".join(lines))
        if code != 0:
            fail(f"service exited {code} after SIGTERM", "".join(lines))
        print("serve-smoke: SIGTERM drained cleanly (exit 0)")
        print("serve-smoke: PASS")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)


if __name__ == "__main__":
    main()
