"""The rule registry: id/name -> rule instance.

Rule modules self-register at import time via the :func:`register`
decorator; :mod:`repro.devtools.__init__` imports them all, so
``all_rules()`` is complete as soon as the package is imported and
presents in rule-id order (``--list-rules``, report grouping).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.devtools.walker import Rule

_RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index a rule by id and name."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} needs both an id and a name")
    for key in (rule.id, rule.name):
        existing = _RULES.get(key)
        if existing is not None and type(existing) is not cls:
            raise ValueError(
                f"rule key {key!r} already registered by "
                f"{type(existing).__name__}"
            )
        _RULES[key] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, once, ordered by rule id."""
    seen = []
    for rule in _RULES.values():
        if rule not in seen:
            seen.append(rule)
    return sorted(seen, key=lambda rule: rule.id)


def get_rule(key: str) -> Optional[Rule]:
    """Look a rule up by id (``R001``) or name (``determinism``)."""
    return _RULES.get(key)
