"""The shared AST-walker framework under every lint rule.

One parse per file, shared by all rules: a :class:`FileContext` holds
the source, the AST, a parent map (for "what function encloses this
call?" questions), an import/alias map (so ``from time import
perf_counter as pc`` and ``import numpy as np`` both resolve to their
canonical dotted names), and the file's inline suppressions.

Suppressions are source comments of the form::

    something()  # lint: allow[R001] -- why this line is exempt
    except Exception:  # lint: allow[broad-except] -- worker must survive

A suppression names one or more rules (by id or by name, comma
separated) and silences only violations *on its own line*.  A
suppression that silences nothing is itself reported
(``W001[unused-suppression]``), so stale exemptions cannot linger
after the offending code is gone.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.devtools.config import DEFAULT_CONFIG, LintConfig

#: Matches the suppression comment syntax (one or more rule ids or
#: names in brackets, an optional ``-- reason`` tail); see the module
#: docstring for examples.
ALLOW_RE = re.compile(r"#\s*lint:\s*allow\[([^\]]+)\]\s*(?:--\s*(.*))?")

#: Synthetic rule id/name for unused suppressions and parse failures.
UNUSED_ID, UNUSED_NAME = "W001", "unused-suppression"
PARSE_ID, PARSE_NAME = "E999", "parse-error"


@dataclass(frozen=True)
class Violation:
    """One diagnostic: ``path:line:col: R001[determinism] message``."""

    rule: str
    name: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule}[{self.name}] {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One ``# lint: allow[...]`` comment, with use tracking."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    used: Set[str] = field(default_factory=set)

    def allows(self, violation: Violation) -> bool:
        return violation.rule in self.rules or violation.name in self.rules


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """Line number -> suppression for every allow *comment* in ``source``.

    Tokenize-based, so ``allow[...]`` examples inside docstrings and
    string literals (this repo documents the syntax in a few places)
    are not mistaken for live suppressions.
    """
    out: Dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out  # unparseable source is reported as E999 elsewhere
    for lineno, text in comments:
        match = ALLOW_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            token.strip() for token in match.group(1).split(",") if token.strip()
        )
        if rules:
            out[lineno] = Suppression(
                line=lineno, rules=rules, reason=(match.group(2) or "").strip()
            )
    return out


class ImportMap:
    """Local name -> canonical dotted module path, from import statements.

    ``import numpy as np`` binds ``np -> numpy``; ``from time import
    perf_counter as pc`` binds ``pc -> time.perf_counter``; relative
    imports keep their tail (``from .store import JobStore`` binds
    ``JobStore -> store.JobStore``) -- good enough for the rules here,
    which only match absolute stdlib/numpy names.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._names[local] = target
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    target = f"{module}.{alias.name}" if module else alias.name
                    self._names[local] = target

    def resolve(self, name: str) -> Optional[str]:
        return self._names.get(name)

    def qualified(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or None.

        Returns ``None`` when the chain is not rooted in an imported
        name (locals, ``self.<x>``, computed receivers), which the
        rules treat as "not statically resolvable, do not flag".
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.resolve(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


class FileContext:
    """Everything a rule needs about one parsed file."""

    def __init__(self, path: Union[str, Path], source: str) -> None:
        self.path = str(path)
        self.source = source
        self.tree: ast.Module = ast.parse(source, filename=self.path)
        self.imports = ImportMap(self.tree)
        self.suppressions = parse_suppressions(source)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    @classmethod
    def from_path(cls, path: Union[str, Path]) -> "FileContext":
        text = Path(path).read_text(encoding="utf-8", errors="replace")
        return cls(path, text)

    # -- tree navigation ----------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
        """The innermost function containing ``node`` (None: module level)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """Innermost function, else the module -- the temp+rename scope."""
        return self.enclosing_function(node) or self.tree

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    # -- convenience ---------------------------------------------------
    def violation(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=rule.id,
            name=rule.name,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class: one contract, one module, one ``check`` generator."""

    #: Stable short id (``R001``) -- what diagnostics and CI grep for.
    id: str = ""
    #: Human name (``determinism``) -- accepted in ``allow[...]`` too.
    name: str = ""
    #: One-line summary for ``--list-rules``.
    summary: str = ""
    #: Multi-paragraph rationale for ``--explain``.
    explain: str = ""

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        raise NotImplementedError


def terminal_name(node: ast.AST) -> Optional[str]:
    """The final identifier of a Name/Attribute chain (``self._lock``
    -> ``_lock``), or None for computed expressions."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


# ----------------------------------------------------------------------
# the per-file driver
# ----------------------------------------------------------------------
def lint_file(
    path: Union[str, Path],
    *,
    config: LintConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[Rule]] = None,
    source: Optional[str] = None,
) -> List[Violation]:
    """Run every rule over one file; returns surviving violations.

    Inline suppressions are applied here (one shared mechanism instead
    of five per-rule ones), and suppressions that matched nothing are
    converted into :data:`UNUSED_ID` violations.
    """
    from repro.devtools.registry import all_rules  # late: avoid cycle

    if rules is None:
        rules = all_rules()
    path_str = str(path)
    if config.excluded(path_str):
        return []
    try:
        if source is None:
            ctx = FileContext.from_path(path)
        else:
            ctx = FileContext(path, source)
    except SyntaxError as exc:
        return [
            Violation(
                rule=PARSE_ID,
                name=PARSE_NAME,
                path=path_str,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]

    raw: List[Violation] = []
    for rule in rules:
        raw.extend(rule.check(ctx, config))

    kept: List[Violation] = []
    for violation in raw:
        suppression = ctx.suppressions.get(violation.line)
        if suppression is not None and suppression.allows(violation):
            suppression.used.add(violation.rule)
            continue
        kept.append(violation)

    for lineno in sorted(ctx.suppressions):
        suppression = ctx.suppressions[lineno]
        if not suppression.used:
            kept.append(
                Violation(
                    rule=UNUSED_ID,
                    name=UNUSED_NAME,
                    path=path_str,
                    line=lineno,
                    col=1,
                    message=(
                        f"suppression allow[{', '.join(suppression.rules)}] "
                        f"matched no violation; remove it (stale exemptions "
                        f"hide future regressions)"
                    ),
                )
            )
    kept.sort(key=lambda v: (v.line, v.col, v.rule))
    return kept


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates = sorted(
                p for p in entry.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            candidates = [entry]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
    return out


def lint_paths(
    paths: Iterable[Union[str, Path]],
    *,
    config: LintConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Violation], int]:
    """Lint every .py file under ``paths``; (violations, files seen)."""
    files = iter_python_files(paths)
    violations: List[Violation] = []
    for file in files:
        violations.extend(lint_file(file, config=config, rules=rules))
    return violations, len(files)
