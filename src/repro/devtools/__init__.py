"""Static analysis for the repo's reproducibility contracts.

Every result this repository produces rests on invariants that runtime
tests can only catch *after* a violation lands: seeding must be the
sole entropy source inside the deterministic core (or byte-identical
metrics across ``{dict,arena} x {fast,heap} x jobs x crash-resume``
stop being byte-identical), result and checkpoint files must be
written atomically (or a kill mid-write leaves a torn ``BENCH_*.json``
behind), and the serve layer's sqlite connections must stay behind the
per-thread accessor (or a connection quietly hops threads under load).

``repro lint`` enforces those contracts statically, at review time:

* a shared AST-walker framework (:mod:`repro.devtools.walker`) with
  per-file parsing, import/alias resolution, ``# lint: allow[rule]``
  inline suppressions and unused-suppression detection;
* a rule registry (:mod:`repro.devtools.registry`) with one module per
  rule: R001 determinism, R002 atomic writes, R003 serve thread
  safety, R004 defense hook contracts, R005 broad excepts;
* the determinism-boundary map (:mod:`repro.devtools.config`): which
  packages form the deterministic core and which layers are
  legitimately wall-clock;
* text/JSON reporters and the ``python -m repro lint`` CLI.

The repo's own tree lints clean (asserted by a tier-1 test), so any
future nondeterministic call or torn write fails the suite with a
``file:line`` diagnostic naming the violated rule.
"""

from repro.devtools.config import DEFAULT_CONFIG, LintConfig
from repro.devtools.registry import all_rules, get_rule
from repro.devtools.walker import FileContext, Rule, Violation, lint_file, lint_paths

# Importing the rule modules registers them; keep this list in sync
# with the registry (each module self-registers on import).
from repro.devtools import (  # noqa: F401  (imported for registration)
    rules_atomic,
    rules_determinism,
    rules_except,
    rules_hooks,
    rules_serve,
)

__all__ = [
    "DEFAULT_CONFIG",
    "LintConfig",
    "FileContext",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
]
