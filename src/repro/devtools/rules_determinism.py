"""R001 ``determinism`` -- seeded RNG streams are the *only* entropy.

The paper's bankrupting guarantees are reproduced by A/B matrices that
assert byte-identical metrics across membership backends, engine
paths, worker counts, and crash-resume.  Those assertions are only
meaningful if the deterministic core draws every random number from a
seeded :class:`numpy.random.Generator` (the ``repro.sim.rng`` named
streams) and never reads a wall clock into a result.  One
``time.time()`` in the engine and every "byte-identical" test in the
suite is comparing noise.

Inside the core (see :class:`repro.devtools.config.LintConfig`) this
rule flags:

* the stdlib ``random`` module (imports and calls) -- process-global,
  implicitly seeded state;
* ``os.urandom`` / ``os.getrandom``, ``secrets``, ``uuid.uuid1`` /
  ``uuid.uuid4`` -- OS entropy;
* unseeded numpy constructors (``default_rng()`` / ``RandomState()``
  / ``SeedSequence()`` with no arguments) and *any* draw through the
  module-level ``numpy.random.*`` global (``np.random.normal``,
  ``np.random.seed``, ...);
* wall-clock reads: ``time.time`` / ``perf_counter`` / ``monotonic``
  and friends, ``datetime.now`` / ``utcnow`` / ``today``.  References
  count, not just calls -- aliasing ``clock = time.monotonic`` is the
  same leak one line later.  (``time.sleep`` is not flagged: it wastes
  time but reads nothing into the simulation.)

Wall-clock-legitimate layers (``serve/``, the sweep runtime,
``resilience.py``, benchmarks, scripts) are exempt via the explicit
allowlist manifest in the config; surviving single-line exceptions in
the core (the engine's snapshot ``wall_time_s`` telemetry) carry
``# lint: allow[R001]`` with a reason.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.config import LintConfig
from repro.devtools.registry import register
from repro.devtools.walker import FileContext, Rule, Violation

#: Wall-clock reads (module.attr).  Referencing one of these names in
#: the core is a violation even without a call.
CLOCK_REFS = frozenset(
    f"time.{attr}"
    for attr in (
        "time", "time_ns",
        "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns",
        "process_time", "process_time_ns",
        "thread_time", "thread_time_ns",
        "clock_gettime", "clock_gettime_ns",
        "localtime", "gmtime", "ctime", "asctime",
    )
) | frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: OS / stdlib entropy sources (references flagged, like the clocks).
ENTROPY_REFS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Modules that are banned wholesale in the core.
BANNED_MODULES = ("random", "secrets")

#: numpy.random names that are seeding machinery, not draws.  The
#: constructors still demand an explicit seed argument (checked at the
#: call site); everything else under numpy.random is the process-global
#: generator and is always a violation.
NP_SEEDING = frozenset(
    {
        "default_rng", "RandomState", "SeedSequence", "Generator",
        "BitGenerator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
    }
)
NP_CONSTRUCTORS = frozenset({"default_rng", "RandomState", "SeedSequence"})


def _banned_module(qualified: str) -> Optional[str]:
    for module in BANNED_MODULES:
        if qualified == module or qualified.startswith(module + "."):
            return module
    return None


@register
class DeterminismRule(Rule):
    id = "R001"
    name = "determinism"
    summary = (
        "deterministic core must not touch wall clocks, the random "
        "module, OS entropy, or unseeded/global numpy RNG"
    )
    explain = __doc__ or ""

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        if not config.in_core(ctx.path):
            return
        reported = set()  # (line, col) -- one diagnostic per site

        def emit(node: ast.AST, message: str) -> Optional[Violation]:
            key = (getattr(node, "lineno", 1), getattr(node, "col_offset", 0))
            if key in reported:
                return None
            reported.add(key)
            return ctx.violation(self, node, message)

        for node in ast.walk(ctx.tree):
            # banned module imports
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module = _banned_module(alias.name)
                    if module is not None:
                        v = emit(
                            node,
                            f"import of {module!r} in the deterministic "
                            f"core; draw from a seeded numpy Generator "
                            f"(repro.sim.rng) instead",
                        )
                        if v:
                            yield v
            elif isinstance(node, ast.ImportFrom):
                module = _banned_module(node.module or "")
                if module is not None:
                    v = emit(
                        node,
                        f"import from {module!r} in the deterministic "
                        f"core; draw from a seeded numpy Generator "
                        f"(repro.sim.rng) instead",
                    )
                    if v:
                        yield v

            # unseeded numpy constructors + module-global draws
            elif isinstance(node, ast.Call):
                qualified = ctx.imports.qualified(node.func)
                if qualified and qualified.startswith("numpy.random."):
                    tail = qualified.rsplit(".", 1)[1]
                    if tail in NP_CONSTRUCTORS:
                        unseeded = not node.args or (
                            isinstance(node.args[0], ast.Constant)
                            and node.args[0].value is None
                        )
                        if unseeded and not node.keywords:
                            v = emit(
                                node,
                                f"{qualified}() without a seed pulls OS "
                                f"entropy; pass an explicit seed or "
                                f"SeedSequence",
                            )
                            if v:
                                yield v
                    elif tail not in NP_SEEDING:
                        v = emit(
                            node,
                            f"{qualified}() draws from numpy's process-"
                            f"global generator; use a seeded Generator "
                            f"stream instead",
                        )
                        if v:
                            yield v

            # wall-clock / entropy references (calls included: the
            # Call's func is itself a Name/Attribute load)
            elif isinstance(node, (ast.Attribute, ast.Name)) and isinstance(
                getattr(node, "ctx", None), ast.Load
            ):
                qualified = ctx.imports.qualified(node)
                if qualified is None:
                    continue
                if qualified in CLOCK_REFS:
                    v = emit(
                        node,
                        f"wall-clock read {qualified} in the deterministic "
                        f"core; simulation time is the engine clock, and "
                        f"wall-clock telemetry belongs in the allowlisted "
                        f"layers (serve/, runtime, benchmarks)",
                    )
                    if v:
                        yield v
                elif qualified in ENTROPY_REFS or _banned_module(qualified):
                    v = emit(
                        node,
                        f"entropy source {qualified} in the deterministic "
                        f"core; seeding must be the sole entropy source",
                    )
                    if v:
                        yield v
