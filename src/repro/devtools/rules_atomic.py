"""R002 ``atomic-write`` -- no torn result, checkpoint, or BENCH files.

The crash-recovery story (checkpoint journals, ``--resume``, the serve
layer's kill -9 drill) only works because a reader never observes a
half-written file: every durable artifact is written to a
same-directory temp file and ``os.replace``d over the target.  A plain
``open(path, "w")`` breaks that contract -- a SIGKILL between the
``write`` and the close leaves a torn ``BENCH_*.json`` or results file
that the next consumer (perf_trend, ``--resume``, a dashboard) parses
as garbage or, worse, as truncated-but-valid data.

This rule flags every ``open()`` (including ``io.open`` / ``gzip.open``)
whose mode creates or truncates (``w``, ``a``, ``x``) unless the
enclosing function also calls ``os.replace`` -- the temp+rename idiom,
which is exactly how :func:`repro.resilience.atomic_write_text` and
the trace cache are built.  The fix is almost always one line::

    from repro.resilience import atomic_write_text
    atomic_write_text(path, text)

Reads are never flagged, and a non-constant mode argument is skipped
(not statically decidable).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.config import LintConfig
from repro.devtools.registry import register
from repro.devtools.walker import FileContext, Rule, Violation

#: Callables treated as file-opening (resolved via the import map for
#: the dotted forms; bare ``open`` is the builtin unless shadowed).
OPEN_CALLS = frozenset({"io.open", "gzip.open", "bz2.open", "lzma.open"})

#: Mode characters that create/truncate and therefore can tear.
WRITE_CHARS = frozenset("wax")


def _open_mode(node: ast.Call) -> Optional[str]:
    """The constant mode string of an open-like call, or None."""
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"  # open() defaults to read
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode: not statically decidable


def _is_open_call(ctx: FileContext, node: ast.Call) -> bool:
    if isinstance(node.func, ast.Name):
        # the builtin, unless an import rebinds the name to something else
        resolved = ctx.imports.resolve(node.func.id)
        if node.func.id == "open":
            return resolved is None or resolved in OPEN_CALLS
        return resolved in OPEN_CALLS
    qualified = ctx.imports.qualified(node.func)
    return qualified in OPEN_CALLS


def _scope_has_replace(ctx: FileContext, scope: ast.AST) -> bool:
    """True when the scope also calls ``os.replace`` (temp+rename)."""
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            qualified = ctx.imports.qualified(node.func)
            if qualified in ("os.replace", "os.rename"):
                return True
    return False


@register
class AtomicWriteRule(Rule):
    id = "R002"
    name = "atomic-write"
    summary = (
        "files must be written via resilience.atomic_write_text or the "
        "temp+rename idiom, never a bare open(.., 'w')"
    )
    explain = __doc__ or ""

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _is_open_call(ctx, node)):
                continue
            mode = _open_mode(node)
            if mode is None or not (set(mode) & WRITE_CHARS):
                continue
            scope = ctx.enclosing_scope(node)
            if _scope_has_replace(ctx, scope):
                continue  # temp+rename: the write is already atomic
            yield ctx.violation(
                self,
                node,
                f"open(..., {mode!r}) writes in place; a crash mid-write "
                f"leaves a torn file.  Use repro.resilience."
                f"atomic_write_text (or temp file + os.replace in this "
                f"function)",
            )
