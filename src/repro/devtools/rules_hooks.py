"""R004 ``hook-contracts`` -- batch/per-event defense hook pairing.

The engine's zero-heap fast path applies whole runs of churn rows via
the batch hooks (``process_good_join_batch``,
``process_good_departure_batch``, ``process_bad_departure_batch``)
and falls back to the per-event hooks at run boundaries, heap
interleavings, and on the heap path.  The A/B equivalence tests assert
the two paths produce byte-identical metrics -- which silently stops
being tested the moment a Defense subclass overrides a batch hook
without also defining the per-event counterpart it is supposed to be
exactly equivalent to (it would inherit some ancestor's per-event
semantics while batching its own).

The rule enforces, for every class whose bases look like a Defense:

* a batch-hook override requires the per-event counterpart to be
  defined *in the same class*;
* batch hooks and ``on_snapshot`` bodies must not introduce RNG draws
  -- no use of an ``*rng*``-named object, no ``random``/
  ``numpy.random`` calls.  Snapshot emission and batch application
  must consume zero randomness, or the fast path and the heap path
  drift apart (the engine's snapshot hook is documented to read
  counters only), and per-event vs batch runs stop drawing the same
  stream.  Passing an ``rng`` *through* to a per-event helper is
  still a use and is still flagged: the per-event counterpart is
  where the draw belongs.

The rule also covers the cost-attribution profiler
(``config.profiling_packages``): *every* function there -- wrappers,
accounting primitives, report builders -- executes interleaved with
the engine loop under ``--profile``, so any RNG draw would make a
profiled run diverge from an unprofiled one and break the profiler's
byte-identical-metrics contract.  The same zero-RNG check applies to
every function body in those files, not just the named hook methods.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.config import LintConfig
from repro.devtools.registry import register
from repro.devtools.walker import FileContext, Rule, Violation, terminal_name

#: batch hook -> required per-event counterpart
HOOK_PAIRS = {
    "process_good_join_batch": "process_good_join",
    "process_good_departure_batch": "process_good_departure",
    "process_bad_departure_batch": "process_bad_departure",
}

#: Methods whose bodies must be RNG-free.
RNG_FREE_METHODS = frozenset(HOOK_PAIRS) | {"on_snapshot"}

#: Known defense base-class names (beyond the ``*Defense`` suffix
#: heuristic) so ``class Fast(Ergo)`` is covered too.
DEFENSE_BASES = frozenset(
    {"Defense", "Ergo", "CCom", "Remp", "SybilControl", "NullDefense"}
)


def _is_defense_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = terminal_name(base)
        if name is None:
            continue
        if name in DEFENSE_BASES or name.endswith("Defense"):
            return True
    return False


def _method_names(node: ast.ClassDef) -> set:
    return {
        item.name
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _rng_uses(
    ctx: FileContext, method: ast.FunctionDef
) -> Iterator[ast.AST]:
    """AST nodes inside ``method`` that read or draw randomness."""
    for node in ast.walk(method):
        if isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
            getattr(node, "ctx", None), ast.Load
        ):
            name = terminal_name(node)
            if name is not None and "rng" in name.lower():
                yield node
        elif isinstance(node, ast.Call):
            qualified = ctx.imports.qualified(node.func)
            if qualified and (
                qualified.startswith("random.")
                or qualified.startswith("numpy.random.")
            ):
                yield node


@register
class HookContractRule(Rule):
    id = "R004"
    name = "hook-contracts"
    summary = (
        "a Defense overriding a batch hook must define its per-event "
        "counterpart; batch hooks, on_snapshot, and all profiler span "
        "bodies draw no RNG"
    )
    explain = __doc__ or ""

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        if not config.in_core(ctx.path):
            return
        if config.in_profiling(ctx.path):
            yield from self._check_profiling(ctx)
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef) and _is_defense_class(node)):
                continue
            defined = _method_names(node)
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                counterpart = HOOK_PAIRS.get(item.name)
                if counterpart is not None and counterpart not in defined:
                    yield ctx.violation(
                        self,
                        item,
                        f"{node.name}.{item.name} overrides a batch hook "
                        f"without defining {counterpart}; the fast path "
                        f"batches what the per-event hook does one row at "
                        f"a time, and inheriting the per-event half breaks "
                        f"that equivalence contract",
                    )
                if item.name in RNG_FREE_METHODS:
                    seen = set()
                    for use in _rng_uses(ctx, item):
                        key = (use.lineno, use.col_offset)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield ctx.violation(
                            self,
                            use,
                            f"RNG use inside {node.name}.{item.name}: batch "
                            f"hooks and on_snapshot must consume zero "
                            f"randomness, or fast-path and heap-path runs "
                            f"draw different streams",
                        )

    def _check_profiling(self, ctx: FileContext) -> Iterator[Violation]:
        """Profiler files: no function body may touch randomness."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            seen = set()
            for use in _rng_uses(ctx, node):
                key = (use.lineno, use.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield ctx.violation(
                    self,
                    use,
                    f"RNG use inside profiler function {node.name}: span "
                    f"bodies run interleaved with the engine loop, so any "
                    f"draw here makes profiled runs diverge from "
                    f"unprofiled ones",
                )
