"""R003 ``serve-thread-safety`` -- sqlite + lock discipline in serve/.

The service runs many HTTP handler threads against one sqlite file.
That is safe under exactly one discipline, the one ``serve/store.py``
establishes: every thread gets its *own* connection from a
``threading.local()`` accessor, and no connection ever crosses a
thread boundary.  The rule enforces the pattern statically inside the
serve packages:

* ``sqlite3.connect`` may only be called inside an accessor -- a
  function that also stores the connection into a ``threading.local``
  slot (an assignment through an attribute named ``*local*``, e.g.
  ``self._local.conn = conn``).  Anywhere else, a fresh connection is
  one ``submit()`` away from being shared across threads.

* a connection must not *escape*: returning ``self._conn()`` from
  another method, or assigning it (or ``sqlite3.connect(...)``) to a
  plain instance attribute, publishes a per-thread object to every
  thread that can see the instance.

* a held lock must not wrap blocking calls.  The supervisor's lock
  guards counters and set membership -- microseconds.  A
  ``time.sleep``, a thread/process/pool ``.join()``, or a socket/HTTP
  operation inside ``with <lock>:`` turns every HTTP handler and
  worker into a convoy.  (``Condition.wait`` releases the lock and is
  not flagged; ``str.join`` is out of scope via receiver-name
  heuristics -- see ``LintConfig.joinable_markers``.)
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.config import LintConfig
from repro.devtools.registry import register
from repro.devtools.walker import FileContext, Rule, Violation, terminal_name

#: Callables that block for wall-clock time (resolved dotted names).
BLOCKING_QUALIFIED = frozenset(
    {
        "time.sleep",
        "urllib.request.urlopen",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

#: Method names that block when called on sockets/HTTP objects.
BLOCKING_METHODS = frozenset(
    {"sleep", "urlopen", "accept", "recv", "recv_into", "sendall",
     "makefile", "getresponse", "read_until_close"}
)


def _assigns_thread_local(scope: ast.AST) -> bool:
    """Does this scope store anything into a ``*local*`` attribute?"""
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Attribute
                ):
                    if "local" in target.value.attr:
                        return True
    return False


def _receiver_name(node: ast.expr) -> Optional[str]:
    """Terminal name of a call's receiver (``self._pool.join`` -> ``_pool``)."""
    if isinstance(node, ast.Attribute):
        return terminal_name(node.value)
    return None


def _is_lockish(node: ast.expr, config: LintConfig) -> bool:
    name = terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return any(marker in lowered for marker in config.lock_name_markers)


def _connectionish_call(ctx: FileContext, node: ast.expr) -> Optional[str]:
    """Describe ``node`` if it yields a sqlite connection, else None."""
    if not isinstance(node, ast.Call):
        return None
    qualified = ctx.imports.qualified(node.func)
    if qualified == "sqlite3.connect":
        return "sqlite3.connect(...)"
    tail = terminal_name(node.func)
    if tail is not None and tail.startswith("_conn"):
        return f"{tail}()"
    return None


@register
class ServeThreadSafetyRule(Rule):
    id = "R003"
    name = "serve-thread-safety"
    summary = (
        "serve/: sqlite connections stay behind the thread-local "
        "accessor; locks must not be held across blocking calls"
    )
    explain = __doc__ or ""

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        if not config.in_serve(ctx.path):
            return

        for node in ast.walk(ctx.tree):
            # sqlite3.connect outside a thread-local accessor
            if isinstance(node, ast.Call):
                qualified = ctx.imports.qualified(node.func)
                if qualified == "sqlite3.connect":
                    scope = ctx.enclosing_scope(node)
                    if not _assigns_thread_local(scope):
                        yield ctx.violation(
                            self,
                            node,
                            "sqlite3.connect() outside the thread-local "
                            "accessor pattern; sqlite connections must be "
                            "created per-thread and cached on a "
                            "threading.local slot (see serve/store.py "
                            "JobStore._conn)",
                        )

            # connection escaping via return
            elif isinstance(node, ast.Return) and node.value is not None:
                described = _connectionish_call(ctx, node.value)
                if described and not _assigns_thread_local(
                    ctx.enclosing_scope(node)
                ):
                    yield ctx.violation(
                        self,
                        node,
                        f"returning {described} hands a per-thread sqlite "
                        f"connection to an arbitrary caller; only the "
                        f"thread-local accessor may return it",
                    )

            # connection escaping via instance attribute
            elif isinstance(node, ast.Assign):
                described = _connectionish_call(ctx, node.value)
                if described:
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and not (
                                isinstance(target.value, ast.Attribute)
                                and "local" in target.value.attr
                            )
                        ):
                            yield ctx.violation(
                                self,
                                node,
                                f"storing {described} on an instance "
                                f"attribute shares one sqlite connection "
                                f"across threads; cache it on a "
                                f"threading.local slot instead",
                            )
                            break

            # blocking calls under a held lock
            elif isinstance(node, ast.With):
                locked = [
                    item
                    for item in node.items
                    if _is_lockish(item.context_expr, config)
                ]
                if not locked:
                    continue
                lock_name = terminal_name(locked[0].context_expr)
                for inner in ast.walk(node):
                    if inner is node or not isinstance(inner, ast.Call):
                        continue
                    qualified = ctx.imports.qualified(inner.func)
                    method = (
                        inner.func.attr
                        if isinstance(inner.func, ast.Attribute)
                        else None
                    )
                    blocked = None
                    if qualified in BLOCKING_QUALIFIED:
                        blocked = qualified
                    elif method == "join":
                        receiver = _receiver_name(inner.func) or ""
                        if any(
                            marker in receiver.lower()
                            for marker in config.joinable_markers
                        ):
                            blocked = f"{receiver}.join()"
                    elif method in BLOCKING_METHODS:
                        blocked = f".{method}()"
                    if blocked is not None:
                        yield ctx.violation(
                            self,
                            inner,
                            f"{blocked} while holding {lock_name!r}: a "
                            f"blocking call under a held lock convoys "
                            f"every HTTP handler and worker thread; move "
                            f"the blocking work outside the critical "
                            f"section",
                        )
