"""Lint output: human text and machine JSON.

The text form is one grep-able diagnostic per line
(``path:line:col: R001[determinism] message``) plus a summary; the
JSON form is what CI uploads as an artifact and what dashboards
consume (stable keys, violations sorted by path/line/col).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from repro.devtools.registry import all_rules
from repro.devtools.walker import Violation


def sort_violations(violations: Sequence[Violation]) -> List[Violation]:
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))


def render_text(violations: Sequence[Violation], files: int) -> str:
    """The default report: diagnostics, per-rule tallies, a verdict."""
    ordered = sort_violations(violations)
    lines = [violation.render() for violation in ordered]
    if ordered:
        tally = Counter(f"{v.rule}[{v.name}]" for v in ordered)
        lines.append("")
        for key in sorted(tally):
            lines.append(f"  {tally[key]:4d}  {key}")
        lines.append(
            f"{len(ordered)} violation(s) in {files} file(s) -- "
            f"`repro lint --explain RULE` describes any rule"
        )
    else:
        lines.append(f"clean: {files} file(s), 0 violations")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files: int) -> str:
    """The ``--json`` body (also the CI artifact)."""
    ordered = sort_violations(violations)
    doc: Dict[str, object] = {
        "clean": not ordered,
        "files": files,
        "violations": [violation.as_dict() for violation in ordered],
        "counts": dict(
            sorted(Counter(violation.rule for violation in ordered).items())
        ),
        "rules": [
            {"id": rule.id, "name": rule.name, "summary": rule.summary}
            for rule in all_rules()
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """``--list-rules``: id, name, one-line summary per registered rule."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"      {rule.summary}")
    lines.append(
        "\nSuppress a single line with `# lint: allow[ID-or-name] -- why`;"
        "\nunused suppressions are themselves flagged (W001)."
    )
    return "\n".join(lines)
