"""``python -m repro lint`` -- the static-invariant checker.

Usage::

    python -m repro lint [--json] [paths...]     # lint (default: src/ benchmarks/ scripts/)
    python -m repro lint --list-rules            # rule catalog, one line each
    python -m repro lint --explain R002          # full rationale for one rule
    python -m repro lint --explain atomic-write  # names work too

Exit status: 0 clean, 1 violations found, 2 usage error.  The repo's
own tree must lint clean -- a tier-1 test asserts it -- so CI runs
this as an early fail-fast step and uploads the ``--json`` report as
an artifact.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

from repro.devtools.registry import all_rules, get_rule
from repro.devtools.reporters import render_json, render_rule_list, render_text
from repro.devtools.walker import lint_paths

#: What a bare ``repro lint`` checks, relative to the working
#: directory (missing entries are skipped, so the command also works
#: from an installed tree where only ``src`` exists).
DEFAULT_PATHS = ("src", "benchmarks", "scripts")


def main(argv: Optional[List[str]] = None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    if "-h" in args or "--help" in args:
        print(__doc__)
        return 0

    if "--list-rules" in args:
        print(render_rule_list())
        return 0

    if "--explain" in args:
        index = args.index("--explain")
        if index + 1 >= len(args):
            print("--explain needs a rule id or name (try --list-rules)",
                  file=sys.stderr)
            return 2
        rule = get_rule(args[index + 1])
        if rule is None:
            known = ", ".join(r.id for r in all_rules())
            print(f"unknown rule {args[index + 1]!r}; known: {known}",
                  file=sys.stderr)
            return 2
        print(f"{rule.id} [{rule.name}] -- {rule.summary}\n")
        print((rule.explain or "").strip())
        return 0

    as_json = "--json" in args
    paths = [arg for arg in args if not arg.startswith("-")]
    unknown = [
        arg for arg in args
        if arg.startswith("-") and arg not in ("--json",)
    ]
    if unknown:
        print(f"unknown option(s): {', '.join(unknown)}", file=sys.stderr)
        print(__doc__, file=sys.stderr)
        return 2

    if not paths:
        paths = [p for p in DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            print("nothing to lint: no paths given and none of "
                  f"{'/'.join(DEFAULT_PATHS)} exist here", file=sys.stderr)
            return 2
    else:
        missing = [p for p in paths if not Path(p).exists()]
        if missing:
            print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
            return 2

    violations, files = lint_paths(paths)
    print(render_json(violations, files) if as_json
          else render_text(violations, files))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
