"""The determinism-boundary map and other lint configuration.

The linter's rules are scoped by *where* a file lives, because the
repo's contracts are layered:

* the **deterministic core** -- the simulation engine, the scenario
  compiler, trace ingestion, the adversary, resource burning, and all
  defense code -- may draw randomness only through explicitly seeded
  :class:`numpy.random.Generator` streams and must never read a wall
  clock.  Same seed, same bytes: that is what makes the
  ``{dict,arena} x {fast,heap} x jobs x crash-resume`` A/B matrices
  meaningful.

* the **wall-clock-legitimate layers** -- the serve vertical, the
  fault-tolerant sweep runtime, the resilience/backoff primitives,
  benchmarks and operational scripts -- measure real elapsed time by
  design (heartbeats, retry backoff, wall-second budgets).  They are
  exempted from the determinism rule here, explicitly, so the
  exemption is reviewable instead of implied.

Paths are matched as posix fragments: a fragment ending in ``/``
matches any file under that package, a ``.py`` fragment matches that
file exactly.  Matching is rooted (``repro/sim/`` does not match
``notrepro/sim/``) but prefix-independent, so the map works from a
checkout (``src/repro/sim/...``) and an installed tree alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Tuple, Union


def path_matches(path: Union[str, Path], fragment: str) -> bool:
    """True when ``fragment`` names ``path`` or one of its parents."""
    posix = "/" + Path(path).as_posix().lstrip("/")
    fragment = "/" + fragment.lstrip("/")
    if fragment.endswith("/"):
        return fragment in posix
    return posix.endswith(fragment)


def path_in(path: Union[str, Path], fragments: Tuple[str, ...]) -> bool:
    return any(path_matches(path, fragment) for fragment in fragments)


@dataclass(frozen=True)
class LintConfig:
    """Scope configuration shared by every rule."""

    #: The deterministic core: seeded-RNG-only, no wall clocks (R001),
    #: and where defense hook contracts are enforced (R004).
    deterministic_core: Tuple[str, ...] = (
        "repro/sim/",
        "repro/scenarios/",
        "repro/traces/",
        "repro/adversary/",
        "repro/rb/",
        "repro/core/",
        "repro/baselines/",
        "repro/churn/",
        "repro/identity/",
        "repro/classifier/",
        "repro/committee/",
        "repro/applications/",
        "repro/analysis/",
        # The profiler is *in* the determinism boundary on purpose: it
        # runs inside the engine loop, so R001 polices its clock reads
        # (the two justified perf_counter references carry allow[R001])
        # and R004's profiling extension keeps its span bodies RNG-free.
        "repro/profiling/",
    )

    #: Wall-clock-legitimate layers: R001 does not apply even where
    #: these overlap the core list.  Each entry is a deliberate,
    #: reviewable exemption -- see the module docstring.
    wall_clock_allowlist: Tuple[str, ...] = (
        "repro/serve/",          # heartbeats, SSE pings, Retry-After
        "repro/experiments/",    # runtime timeouts, backoff, flush accounting
        "repro/resilience.py",   # the backoff/atomic-write primitives
        "repro/faults.py",       # injected hangs/slowdowns sleep on purpose
        "repro/devtools/",       # the linter itself is not simulated
        "benchmarks/",           # wall-clock measurement is the product
        "scripts/",              # operational smoke drivers
        "examples/",             # pedagogical, not part of the matrix
    )

    #: Where sqlite thread-discipline and lock-blocking checks (R003)
    #: apply: the multi-threaded service vertical.
    serve_packages: Tuple[str, ...] = ("repro/serve/",)

    #: The cost-attribution profiler (R004's profiling extension):
    #: every function here runs interleaved with the engine loop, so
    #: *none* of them may draw RNG -- not just the named hook methods.
    profiling_packages: Tuple[str, ...] = ("repro/profiling/",)

    #: Terminal identifier substrings that mark a ``with`` context
    #: expression as a mutex for R003's held-lock check.
    lock_name_markers: Tuple[str, ...] = ("lock",)

    #: Receiver-name substrings for which a ``.join()`` call counts as
    #: thread/process blocking (``str.join`` stays out of scope).
    joinable_markers: Tuple[str, ...] = ("thread", "proc", "worker", "pool")

    #: Files excluded from linting entirely (never any today; the knob
    #: exists so a vendored file can be carved out without code edits).
    exclude: Tuple[str, ...] = field(default=())

    def in_core(self, path: Union[str, Path]) -> bool:
        return path_in(path, self.deterministic_core) and not path_in(
            path, self.wall_clock_allowlist
        )

    def in_serve(self, path: Union[str, Path]) -> bool:
        return path_in(path, self.serve_packages)

    def in_profiling(self, path: Union[str, Path]) -> bool:
        return path_in(path, self.profiling_packages)

    def excluded(self, path: Union[str, Path]) -> bool:
        return path_in(path, self.exclude)


DEFAULT_CONFIG = LintConfig()
