"""R005 ``broad-except`` -- no silent swallow-everything handlers.

A ``except Exception:`` (or worse, a bare ``except:`` /
``except BaseException:``) is two very different things depending on
where it sits.  In a supervisor worker loop or an HTTP dispatcher it
is load-bearing: the thread must survive anything a job throws at it,
and the failure is recorded on the job.  Anywhere else it swallows
typos, ``KeyboardInterrupt``-adjacent state corruption, and genuine
bugs -- the sweep that "succeeded" because the exception that should
have failed it was eaten.

The rule flags every broad handler.  Legitimate ones stay broad and
say why, in-line, where the next reader will see it::

    except Exception as exc:  # lint: allow[broad-except] -- jobs fail, workers don't

Everything else should name the exceptions it actually expects
(``except (OSError, json.JSONDecodeError):``).  ``raise`` -ing the
exception again does not exempt a handler: re-raise filters belong in
``should_retry`` predicates, not broad catches.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.config import LintConfig
from repro.devtools.registry import register
from repro.devtools.walker import FileContext, Rule, Violation

BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_name(node: Optional[ast.expr]) -> Optional[str]:
    """The broad class this except clause catches, or None."""
    if node is None:
        return "(bare except)"
    if isinstance(node, ast.Name) and node.id in BROAD_NAMES:
        return node.id
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            found = _broad_name(element)
            if found is not None:
                return found
    return None


@register
class BroadExceptRule(Rule):
    id = "R005"
    name = "broad-except"
    summary = (
        "except Exception / bare except needs narrowing or an inline "
        "justification"
    )
    explain = __doc__ or ""

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_name(node.type)
            if broad is None:
                continue
            yield ctx.violation(
                self,
                node,
                f"broad handler catches {broad}; narrow it to the "
                f"exceptions actually expected, or keep it broad with "
                f"`# lint: allow[broad-except] -- <why>` if this handler "
                f"is a supervisor boundary that must survive anything",
            )
