"""Cost accounting shared by all defenses.

A single :class:`CostAccountant` is the only place costs are recorded,
so party-level totals (the paper's ``A`` and ``T``) and per-ID totals
can never disagree.  Defenses charge through it; experiments read the
party-level :class:`~repro.sim.metrics.SpendMeter` objects.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.metrics import MetricSet


class CostAccountant:
    """Charges resource-burning costs to good IDs or to the adversary.

    Good-ID charges are attributed both to the party meter (for spend
    rates) and to the individual ID (so tests can verify, e.g., that a
    good ID pays O(1) to join absent an attack -- Section 1.1).  The
    adversary is a single colluding entity (Section 2), so its charges
    are tracked only at the party level.
    """

    def __init__(self, metrics: MetricSet) -> None:
        self._metrics = metrics
        self._per_id: Dict[str, float] = {}

    def charge_good(self, ident: str, amount: float, category: str) -> None:
        if amount < 0:
            raise ValueError(f"negative charge: {amount}")
        self._metrics.good.charge(amount, category)
        self._per_id[ident] = self._per_id.get(ident, 0.0) + amount

    def charge_good_batch(self, idents, amounts, category: str) -> None:
        """Charge a run of *fresh* good IDs their per-row amounts.

        Float-exact equivalent of per-row :meth:`charge_good` calls
        (party-meter accumulation happens in sequence order); the per-ID
        ledger is bulk-updated, which is only correct because joining
        IDs are always brand new (unique names, Section 2.1.1) and so
        cannot have a prior balance.
        """
        self._metrics.good.charge_seq(amounts, category)
        self._per_id.update(zip(idents, amounts))

    def charge_good_bulk(self, count: int, amount_each: float, category: str) -> None:
        """Charge ``count`` good IDs ``amount_each`` (party meter only).

        Used for purge sweeps, where charging 10^4 IDs individually at
        10^3 purges/second would dominate the simulation.  Per-ID spend
        queries therefore reflect entrance/init costs only; purge costs
        are uniform (1 per purge per present ID) and can be reconstructed
        from the defense's purge counter when needed.
        """
        if count < 0 or amount_each < 0:
            raise ValueError(f"negative bulk charge: {count} x {amount_each}")
        self._metrics.good.charge(count * amount_each, category)

    def charge_adversary(self, amount: float, category: str) -> None:
        if amount < 0:
            raise ValueError(f"negative charge: {amount}")
        self._metrics.adversary.charge(amount, category)

    def spend_of(self, ident: str) -> float:
        """Total RB cost paid by a specific good ID so far."""
        return self._per_id.get(ident, 0.0)

    @property
    def good_total(self) -> float:
        return self._metrics.good.total

    @property
    def adversary_total(self) -> float:
        return self._metrics.adversary.total
