"""k-hard resource-burning challenges (accounting model).

The analysis and the experiments only need the *cost semantics* of
resource burning: a k-hard challenge costs ``k`` to solve and a 1-hard
challenge takes one round.  :class:`ChallengeAuthority` issues challenges
with those semantics and verifies solutions.  Solutions carry the
identity of the solver and the challenge id so replays and transfers are
rejected ("solutions cannot be stolen or pre-computed").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.sim.clock import ROUND_SECONDS


@dataclass(frozen=True)
class Challenge:
    """A k-hard challenge issued to a specific ID at a specific time."""

    challenge_id: int
    solver: str
    hardness: int
    issued_at: float

    @property
    def solve_time(self) -> float:
        """Seconds needed to solve: hardness rounds (Section 2)."""
        return self.hardness * ROUND_SECONDS


@dataclass(frozen=True)
class Solution:
    """A claimed solution to a challenge."""

    challenge_id: int
    solver: str
    solved_at: float


class ChallengeAuthority:
    """Issues challenges and verifies solutions.

    The authority remembers outstanding challenges so that:

    * a solution to an unknown or already-redeemed challenge is rejected
      (no pre-computation, no replay);
    * a solution from a different ID than the challenge was issued to is
      rejected (no stealing);
    * a solution arriving before the hardness-implied solve time is
      rejected (no free work).
    """

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._outstanding: dict[int, Challenge] = {}

    def issue(self, solver: str, hardness: int, now: float) -> Challenge:
        if hardness < 1:
            raise ValueError(f"hardness must be >= 1, got {hardness}")
        challenge = Challenge(
            challenge_id=next(self._ids),
            solver=solver,
            hardness=int(hardness),
            issued_at=float(now),
        )
        self._outstanding[challenge.challenge_id] = challenge
        return challenge

    def solve(self, challenge: Challenge) -> Solution:
        """Produce the (simulated) solution for a challenge.

        The solution timestamp is the issue time plus the solve time; the
        caller is responsible for charging the solver ``hardness`` units.
        """
        return Solution(
            challenge_id=challenge.challenge_id,
            solver=challenge.solver,
            solved_at=challenge.issued_at + challenge.solve_time,
        )

    def verify(self, solution: Solution, deadline: Optional[float] = None) -> bool:
        """Check a solution and, if valid, redeem (consume) the challenge."""
        challenge = self._outstanding.get(solution.challenge_id)
        if challenge is None:
            return False
        if challenge.solver != solution.solver:
            return False
        if solution.solved_at < challenge.issued_at + challenge.solve_time:
            return False
        if deadline is not None and solution.solved_at > deadline:
            return False
        del self._outstanding[solution.challenge_id]
        return True

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)
