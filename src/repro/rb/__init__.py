"""Resource-burning (RB) substrate.

"IDs can construct resource-burning challenges of varying hardness,
whose solutions cannot be stolen or pre-computed ... a k-hard RB
challenge imposes a resource cost of k on the challenge solver."
(Section 2.)

Two interchangeable realizations are provided:

* :mod:`repro.rb.challenges` -- the *accounting* model used by the
  simulations: solving a k-hard challenge costs exactly ``k`` units, as
  in the paper's experiments ("we assume a cost of k for solving a k-hard
  RB challenge", Section 10.1).
* :mod:`repro.rb.pow` -- a real hashcash-style proof-of-work scheme, so
  the challenge/solve/verify path is executable end to end (used by unit
  tests and the quickstart example, not by the large sweeps).

:mod:`repro.rb.ledger` provides the cost accountant that defenses use to
charge good IDs and the adversary.
"""

from repro.rb.challenges import Challenge, ChallengeAuthority, Solution
from repro.rb.ledger import CostAccountant
from repro.rb.pow import PowChallenge, PowSolution, hardness_to_bits, solve_pow, verify_pow

__all__ = [
    "Challenge",
    "ChallengeAuthority",
    "CostAccountant",
    "PowChallenge",
    "PowSolution",
    "Solution",
    "hardness_to_bits",
    "solve_pow",
    "verify_pow",
]
