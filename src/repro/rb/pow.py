"""Hashcash-style proof-of-work: a concrete RB challenge scheme.

The simulations use the accounting model in
:mod:`repro.rb.challenges`; this module demonstrates that a k-hard
challenge is realizable with a standard scheme: find a nonce such that
``SHA-256(seed || solver || nonce)`` has at least ``bits`` leading zero
bits.  Expected work doubles per bit, so hardness maps to
``bits = BASE_BITS + ceil(log2(k))`` -- solving a k-hard challenge costs
(in expectation) k times the work of a 1-hard one.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

#: Leading zero bits for a 1-hard challenge.  Kept small so unit tests
#: solve challenges in microseconds; a deployment would raise this.
BASE_BITS = 8


def hardness_to_bits(hardness: int, base_bits: int = BASE_BITS) -> int:
    """Difficulty bits for a k-hard challenge (expected work ∝ 2^bits)."""
    if hardness < 1:
        raise ValueError(f"hardness must be >= 1, got {hardness}")
    return base_bits + math.ceil(math.log2(hardness)) if hardness > 1 else base_bits


@dataclass(frozen=True)
class PowChallenge:
    """A proof-of-work puzzle bound to a solver identity."""

    seed: bytes
    solver: str
    bits: int


@dataclass(frozen=True)
class PowSolution:
    """A nonce claimed to solve a :class:`PowChallenge`."""

    nonce: int


def _digest(challenge: PowChallenge, nonce: int) -> bytes:
    payload = challenge.seed + challenge.solver.encode("utf-8") + nonce.to_bytes(8, "big")
    return hashlib.sha256(payload).digest()


def _leading_zero_bits(digest: bytes) -> int:
    count = 0
    for byte in digest:
        if byte == 0:
            count += 8
            continue
        count += 8 - byte.bit_length()
        break
    return count


def solve_pow(challenge: PowChallenge, max_iterations: int = 10_000_000) -> PowSolution:
    """Brute-force a nonce for ``challenge``.

    Raises:
        RuntimeError: if no solution is found within ``max_iterations``
            (indicates the difficulty is set far too high for a test).
    """
    for nonce in range(max_iterations):
        if _leading_zero_bits(_digest(challenge, nonce)) >= challenge.bits:
            return PowSolution(nonce=nonce)
    raise RuntimeError(
        f"no PoW solution within {max_iterations} iterations at {challenge.bits} bits"
    )


def verify_pow(challenge: PowChallenge, solution: PowSolution) -> bool:
    """Constant-cost verification of a claimed solution."""
    return _leading_zero_bits(_digest(challenge, solution.nonce)) >= challenge.bits
