"""Alternative resource-burning schemes (Section 6).

"Our results are agnostic to the type of challenges employed" (Section
2): Ergo needs only that a k-hard challenge verifiably consumes k units
of *some* network resource.  This module models the families the paper
surveys, each exposing the same small interface -- the cost in the
burned resource, the wall-clock time to solve, and a verification --
so any of them can stand behind :class:`~repro.rb.challenges.ChallengeAuthority`.

* :class:`ComputationScheme` -- CPU cycles (proof-of-work [9, 17]); the
  concrete hash realization lives in :mod:`repro.rb.pow`.
* :class:`ProofOfSpaceTime` -- storage capacity held over time [68]:
  a k-hard challenge pins ``k / duration`` units of storage for
  ``duration`` seconds.
* :class:`CaptchaScheme` -- human effort [71]: each unit is one solved
  CAPTCHA; solve times are stochastic (log-normal, as human response
  times are), so hardness-k challenges take variable wall-clock time.
* :class:`RadioResourceScheme` -- listening capacity in multi-channel
  wireless networks [75, 76]: a k-hard challenge requires tuning to k
  channels during the round; an adversary with ``radios`` receivers can
  burn at most ``radios * channels`` units per round, giving the
  κ-fraction bound a physical origin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BurnReceipt:
    """Proof that a solver burned ``cost`` units of ``resource``."""

    resource: str
    solver: str
    cost: float
    elapsed: float


class ComputationScheme:
    """CPU-cycle burning: cost k, time k/speed."""

    resource = "computation"

    def __init__(self, speed: float = 1.0) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive: {speed}")
        self.speed = float(speed)

    def burn(self, solver: str, hardness: int, rng: np.random.Generator) -> BurnReceipt:
        if hardness < 1:
            raise ValueError(f"hardness must be >= 1: {hardness}")
        return BurnReceipt(
            resource=self.resource,
            solver=solver,
            cost=float(hardness),
            elapsed=hardness / self.speed,
        )


class ProofOfSpaceTime:
    """Storage held over time: cost = storage × duration [68]."""

    resource = "space-time"

    def __init__(self, round_duration: float = 1.0) -> None:
        if round_duration <= 0:
            raise ValueError(f"round duration must be positive: {round_duration}")
        self.round_duration = float(round_duration)

    def storage_required(self, hardness: int) -> float:
        """Storage units pinned for one round to burn ``hardness``."""
        if hardness < 1:
            raise ValueError(f"hardness must be >= 1: {hardness}")
        return hardness / self.round_duration

    def burn(self, solver: str, hardness: int, rng: np.random.Generator) -> BurnReceipt:
        storage = self.storage_required(hardness)
        return BurnReceipt(
            resource=self.resource,
            solver=solver,
            cost=storage * self.round_duration,
            elapsed=self.round_duration,
        )


class CaptchaScheme:
    """Human effort: k CAPTCHAs with log-normal per-puzzle solve times."""

    resource = "human-effort"

    def __init__(self, median_solve_time: float = 10.0, sigma: float = 0.5) -> None:
        if median_solve_time <= 0 or sigma <= 0:
            raise ValueError("median time and sigma must be positive")
        self.mu = math.log(median_solve_time)
        self.sigma = float(sigma)

    def burn(self, solver: str, hardness: int, rng: np.random.Generator) -> BurnReceipt:
        if hardness < 1:
            raise ValueError(f"hardness must be >= 1: {hardness}")
        elapsed = float(np.sum(rng.lognormal(self.mu, self.sigma, size=hardness)))
        return BurnReceipt(
            resource=self.resource,
            solver=solver,
            cost=float(hardness),
            elapsed=elapsed,
        )


class RadioResourceScheme:
    """Listening capacity: tune to k of ``channels`` channels per round."""

    resource = "radio-listening"

    def __init__(self, channels: int, round_duration: float = 1.0) -> None:
        if channels < 1:
            raise ValueError(f"need at least one channel: {channels}")
        if round_duration <= 0:
            raise ValueError(f"round duration must be positive: {round_duration}")
        self.channels = int(channels)
        self.round_duration = float(round_duration)

    def burn(self, solver: str, hardness: int, rng: np.random.Generator) -> BurnReceipt:
        if hardness < 1:
            raise ValueError(f"hardness must be >= 1: {hardness}")
        if hardness > self.channels:
            raise ValueError(
                f"cannot burn {hardness} listening units with "
                f"{self.channels} channels in one round"
            )
        return BurnReceipt(
            resource=self.resource,
            solver=solver,
            cost=float(hardness),
            elapsed=self.round_duration,
        )

    def adversary_capacity_per_round(self, radios: int) -> int:
        """Max units an adversary with ``radios`` receivers can burn.

        This is the physical origin of the κ-fraction assumption in
        radio-resource-testing deployments: κ = radios / (radios +
        honest receivers).
        """
        if radios < 0:
            raise ValueError(f"negative radios: {radios}")
        return radios * self.channels
