"""The adversary's resource budget.

The adversary's spend rate ``T`` (Section 3) accrues continuously; a
strategy spends accrued budget on entrance challenges, purge responses,
or recurring maintenance (for the SybilControl/REMP baselines).
"""

from __future__ import annotations


class ResourceBudget:
    """Continuously accruing budget with an optional initial endowment."""

    def __init__(self, rate: float, initial: float = 0.0) -> None:
        if rate < 0:
            raise ValueError(f"negative budget rate: {rate}")
        self.rate = float(rate)
        self._available = float(initial)
        self._accrued_until = 0.0
        self._spent = 0.0

    def accrue(self, now: float) -> None:
        """Credit the budget for time elapsed since the last accrual."""
        if now < self._accrued_until:
            raise ValueError(
                f"accrual time moved backwards: {now} < {self._accrued_until}"
            )
        self._available += self.rate * (now - self._accrued_until)
        self._accrued_until = now

    @property
    def available(self) -> float:
        return self._available

    @property
    def spent(self) -> float:
        return self._spent

    def can_afford(self, amount: float) -> bool:
        return self._available >= amount

    def spend(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"negative spend: {amount}")
        if amount > self._available + 1e-9:
            raise ValueError(
                f"overspend: {amount} > available {self._available}"
            )
        self._available -= amount
        self._spent += amount

    def reserve(self, amount: float) -> float:
        """Withdraw up to ``amount`` (pair with :meth:`refund`).

        Strategies reserve before handing a budget to
        ``process_bad_join_batch`` so that concurrent spending (e.g.
        paying to survive a purge triggered mid-batch) cannot overdraw.
        Returns the amount actually withdrawn.
        """
        if amount < 0:
            raise ValueError(f"negative reservation: {amount}")
        taken = min(amount, self._available)
        self._available -= taken
        self._spent += taken
        return taken

    def reserve_all(self) -> float:
        """Withdraw the full available balance (pair with :meth:`refund`)."""
        return self.reserve(self._available)

    def refund(self, amount: float) -> None:
        """Return the unspent part of a reservation."""
        if amount < 0:
            raise ValueError(f"negative refund: {amount}")
        self._available += amount
        self._spent -= amount
