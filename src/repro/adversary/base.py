"""The adversary interface and the no-op adversary."""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import Defense
    from repro.sim.engine import Simulation


class Adversary(abc.ABC):
    """Base class for Sybil attack strategies.

    The engine calls :meth:`act` whenever simulation time advances (at
    events and at periodic ticks), giving the strategy a chance to
    inject Sybil IDs.  Defenses call :meth:`respond_to_purge` and
    :meth:`fund_maintenance` when their mechanisms demand payment from
    standing bad IDs.

    **The ``next_wake`` contract.**  After each :meth:`act` call the
    engine asks :meth:`next_wake` for the earliest simulation time at
    which another ``act`` call *could matter*; until the clock reaches
    that time, ``act`` is not invoked (events are still dispatched --
    only the adversary call is skipped).  The returned time need not
    coincide with an event: the engine re-activates the strategy at the
    first event whose time is >= the wake time, plus once at the horizon
    *if the wake time is at or before the horizon* (a strategy sleeping
    past the horizon is not called again at all).
    Implementations must be *conservative*: it is always sound to return
    ``now`` (wake at every event, the default) and unsound to sleep past
    a moment where ``act`` would have had an effect.  Strategies whose
    only time-dependent input is their accrued budget can safely sleep
    until the budget covers :data:`MIN_ENTRANCE_COST`.  Methods invoked
    synchronously by the defense (``respond_to_purge``,
    ``fund_maintenance``) are *not* gated by the wake time and must not
    rely on a fresh ``act`` having run first.
    """

    name = "adversary"

    #: Every implemented defense quotes an entrance cost of at least 1
    #: (the paper's 1-hard RB challenge floor).  ``next_wake``
    #: implementations may rely on this when computing the earliest time
    #: a join could possibly be affordable.
    MIN_ENTRANCE_COST = 1.0

    def __init__(self) -> None:
        self.sim: "Simulation" = None
        self.defense: "Defense" = None
        self._rng = None

    def bind(self, sim: "Simulation", defense: "Defense") -> None:
        self.sim = sim
        self.defense = defense
        self._rng = sim.rngs.stream(f"adversary.{self.name}")
        defense.register_adversary(self)

    @abc.abstractmethod
    def act(self, now: float) -> None:
        """Opportunity to attack at time ``now`` (called very often)."""

    def next_wake(self, now: float) -> float:
        """Earliest time another :meth:`act` call could matter.

        The default (``now``) preserves the historical behavior of
        acting at every event; see the class docstring for the contract.
        """
        return now

    def respond_to_purge(self, bad_count: int, max_keep: int, now: float) -> int:
        """How many bad IDs the adversary pays 1 each to keep at a purge.

        The default matches the paper's experimental assumption: the
        adversary spends only on joins, so it keeps none.
        """
        return 0

    def fund_maintenance(self, bad_count: int, cost_per_id: float, now: float) -> int:
        """How many standing bad IDs get their recurring fees paid.

        Used by SybilControl (periodic neighbor tests) and REMP
        (recurring challenges).  Unfunded IDs are evicted.  The default
        funds none.
        """
        return 0


class PassiveAdversary(Adversary):
    """An adversary that never attacks (the T = 0 baseline)."""

    name = "passive"

    def act(self, now: float) -> None:
        return None

    def next_wake(self, now: float) -> float:
        """``act`` is a no-op, so it never needs to run again."""
        return float("inf")
