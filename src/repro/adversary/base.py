"""The adversary interface and the no-op adversary."""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import Defense
    from repro.sim.engine import Simulation


class Adversary(abc.ABC):
    """Base class for Sybil attack strategies.

    The engine calls :meth:`act` whenever simulation time advances (at
    every event and at periodic ticks), giving the strategy a chance to
    inject Sybil IDs.  Defenses call :meth:`respond_to_purge` and
    :meth:`fund_maintenance` when their mechanisms demand payment from
    standing bad IDs.
    """

    name = "adversary"

    def __init__(self) -> None:
        self.sim: "Simulation" = None
        self.defense: "Defense" = None
        self._rng = None

    def bind(self, sim: "Simulation", defense: "Defense") -> None:
        self.sim = sim
        self.defense = defense
        self._rng = sim.rngs.stream(f"adversary.{self.name}")
        defense.register_adversary(self)

    @abc.abstractmethod
    def act(self, now: float) -> None:
        """Opportunity to attack at time ``now`` (called very often)."""

    def respond_to_purge(self, bad_count: int, max_keep: int, now: float) -> int:
        """How many bad IDs the adversary pays 1 each to keep at a purge.

        The default matches the paper's experimental assumption: the
        adversary spends only on joins, so it keeps none.
        """
        return 0

    def fund_maintenance(self, bad_count: int, cost_per_id: float, now: float) -> int:
        """How many standing bad IDs get their recurring fees paid.

        Used by SybilControl (periodic neighbor tests) and REMP
        (recurring challenges).  Unfunded IDs are evicted.  The default
        funds none.
        """
        return 0


class PassiveAdversary(Adversary):
    """An adversary that never attacks (the T = 0 baseline)."""

    name = "passive"

    def act(self, now: float) -> None:
        return None
