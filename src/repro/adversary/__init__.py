"""Sybil adversaries.

A single adversary controls all bad IDs (perfect collusion, Section 2).
It is resource-bounded two ways:

* a *spend rate* ``T``: the budget it can burn per second on entrance
  challenges (:class:`repro.adversary.budget.ResourceBudget`); and
* the κ-fraction bound: in a round where all IDs solve challenges (a
  purge), it can solve at most a κ-fraction of them.

Strategies decide how to deploy that budget; the Figure-8/10 experiments
use :class:`~repro.adversary.strategies.GreedyJoinAdversary`, matching
the paper's setup where "the adversary only solves RB challenges to add
IDs to the system" (Section 10.1).
"""

from repro.adversary.base import Adversary, PassiveAdversary
from repro.adversary.budget import ResourceBudget
from repro.adversary.schedule import (
    AttackWindow,
    ScheduledAdversary,
    periodic_windows,
)
from repro.adversary.strategies import (
    BurstyJoinAdversary,
    GreedyJoinAdversary,
    LowerBoundAdversary,
    MaintenanceAdversary,
    PersistentFractionAdversary,
    PurgeSurvivorAdversary,
)

__all__ = [
    "Adversary",
    "AttackWindow",
    "BurstyJoinAdversary",
    "GreedyJoinAdversary",
    "LowerBoundAdversary",
    "MaintenanceAdversary",
    "PassiveAdversary",
    "PersistentFractionAdversary",
    "PurgeSurvivorAdversary",
    "ResourceBudget",
    "ScheduledAdversary",
    "periodic_windows",
]
