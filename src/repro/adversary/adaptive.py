"""Adaptive attack strategies beyond the paper's experiments.

The paper's adversary model is adaptive (Section 2: "makes these timing
choices adaptively over time"), but its experiments only exercise the
greedy flooder.  These strategies probe Ergo harder:

* :class:`PurgeChaser` -- floods immediately after each purge, when the
  entrance window has just been cleared and the iteration counter is at
  zero, then goes quiet.  This is the cheapest possible timing for
  joins and the fastest route to the next purge.
* :class:`EstimateInflater` -- alternates flooding (to drag GoodJEst's
  intervals short and its estimate high, shrinking the window 1/J̃) with
  exploitation bursts while the window is small.
* :class:`SlowDrip` -- joins just below the purge-trigger pace, trying
  to accumulate standing Sybils between purges without ever causing one.

Tests verify the 3κ bound survives all of them (Lemma 9 holds for *any*
adversary within the model, so a violation would be an implementation
bug).  Experiments can compare their cost-effectiveness against the
greedy flooder: a well-implemented Ergo makes none of them
asymptotically better.
"""

from __future__ import annotations

from repro.adversary.base import Adversary
from repro.adversary.budget import ResourceBudget


class PurgeChaser(Adversary):
    """Times its floods to land right after purges.

    The defense's purge count is observable (purges are global events),
    so the chaser floods only when a new purge has happened since its
    last burst -- joining into an empty window and a fresh iteration.
    """

    name = "purge-chaser"

    def __init__(self, rate: float) -> None:
        super().__init__()
        self.budget = ResourceBudget(rate)
        self._last_seen_purges = -1

    def act(self, now: float) -> None:
        self.budget.accrue(now)
        purge_count = getattr(self.defense, "purge_count", None)
        if purge_count is None:
            return
        if purge_count == self._last_seen_purges:
            return
        self._last_seen_purges = purge_count
        while True:
            reserve = self.budget.reserve_all()
            attempted, cost = self.defense.process_bad_join_batch(reserve)
            self.budget.refund(reserve - cost)
            if attempted == 0:
                return
            # Flooding may itself trigger a purge; keep chasing it.
            self._last_seen_purges = getattr(self.defense, "purge_count", 0)


class EstimateInflater(Adversary):
    """Alternates inflation floods and exploitation bursts.

    Phase A (inflate): spend hard to force membership churn, ending
    GoodJEst intervals quickly; short intervals produce large estimates
    J̃ = |S|/(t'−t), which shrink the entrance window to 1/J̃.
    Phase B (exploit): with a tiny window, joins rarely see each other,
    so each Sybil costs ~1.

    GoodJEst's defense against this is structural: inflating requires
    real symmetric-difference churn, which purges mostly cancel (evicted
    post-snapshot Sybils drop back out of the difference), so the paid
    inflation mostly evaporates.
    """

    name = "estimate-inflater"

    def __init__(self, rate: float, phase_length: float = 30.0) -> None:
        super().__init__()
        if phase_length <= 0:
            raise ValueError(f"phase length must be positive: {phase_length}")
        self.budget = ResourceBudget(rate)
        self.phase_length = float(phase_length)

    def _in_inflation_phase(self, now: float) -> bool:
        return int(now / self.phase_length) % 2 == 0

    def act(self, now: float) -> None:
        self.budget.accrue(now)
        if self._in_inflation_phase(now):
            spendable = self.budget.available * 0.8
        else:
            spendable = self.budget.available
        reserve = self.budget.reserve(spendable)
        attempted, cost = self.defense.process_bad_join_batch(reserve)
        self.budget.refund(reserve - cost)


class SlowDrip(Adversary):
    """Joins just slowly enough to (try to) avoid triggering purges.

    Watches the defense's events-until-purge headroom and keeps its
    standing below a safety margin of it.  Against Ergo this caps the
    adversary at < |S|/11 standing Sybils per iteration -- but good
    churn still advances the iteration, so purges happen anyway and the
    drip never accumulates; the bound holds with room to spare.
    """

    name = "slow-drip"

    def __init__(self, rate: float, safety_margin: float = 0.5) -> None:
        super().__init__()
        if not 0 < safety_margin <= 1:
            raise ValueError(f"safety margin must be in (0,1]: {safety_margin}")
        self.budget = ResourceBudget(rate)
        self.safety_margin = float(safety_margin)

    def act(self, now: float) -> None:
        self.budget.accrue(now)
        headroom_fn = getattr(self.defense, "_events_until_purge", None)
        if headroom_fn is None:
            return
        headroom = int(headroom_fn() * self.safety_margin)
        if headroom <= 1:
            return
        # Spend at most what `headroom` joins could cost at the current
        # quote (an overestimate caps the batch naturally).
        quote = self.defense.quote_entrance_cost()
        spendable = min(self.budget.available, headroom * quote)
        reserve = self.budget.reserve(spendable)
        attempted, cost = self.defense.process_bad_join_batch(reserve)
        self.budget.refund(reserve - cost)
