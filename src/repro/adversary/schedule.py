"""Time-windowed attack schedules.

Real Sybil campaigns are not always-on: the Tor relay studies catalog
coordinated mass joins, synchronized exoduses and relay *flapping*
(repeated join/withdraw cycles).  :class:`ScheduledAdversary` turns any
existing strategy into a scheduled one: the inner adversary only acts
inside its :class:`AttackWindow` s, and (optionally) withdraws its whole
standing Sybil population the moment a window closes -- the flapping
profile.  Withdrawals go through the defense's aggregated
:meth:`~repro.core.protocol.Defense.process_bad_departure_batch` hook,
so a 10^4-ID exodus is one call, not 10^4 heap events.

The budget keeps accruing while the schedule is off (the attacker saves
between bursts), which is the conservative modeling choice: the defense
faces the *same* total spend, concentrated into the on-windows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Sequence, Tuple

from repro.adversary.base import Adversary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import Defense
    from repro.sim.engine import Simulation

_INF = float("inf")


class AttackWindow(Tuple[float, float]):
    """A half-open ``[start, end)`` interval during which the attack is on."""

    __slots__ = ()

    def __new__(cls, start: float, end: float) -> "AttackWindow":
        if not end > start:
            raise ValueError(f"attack window must have end > start: [{start}, {end})")
        return super().__new__(cls, (float(start), float(end)))

    @property
    def start(self) -> float:
        return self[0]

    @property
    def end(self) -> float:
        return self[1]

    def __getnewargs__(self) -> Tuple[float, float]:
        # tuple's default hands __new__ one tuple argument; ours takes
        # (start, end), so unpickling needs the explicit pair.
        return (self[0], self[1])


def periodic_windows(
    on: float, off: float, start: float, end: float
) -> List[AttackWindow]:
    """A flapping grid: ``on`` seconds attacking, ``off`` seconds dark.

    Windows are laid out from ``start`` and clipped at ``end``; the
    final window may be shorter than ``on``.
    """
    if on <= 0 or off < 0:
        raise ValueError(f"need on > 0 and off >= 0: on={on}, off={off}")
    if end <= start:
        raise ValueError(f"need end > start: start={start}, end={end}")
    if off == 0:
        # Degenerate flapping (no dark time) collapses to one window.
        return [AttackWindow(start, end)]
    windows: List[AttackWindow] = []
    t = float(start)
    while t < end:
        windows.append(AttackWindow(t, min(t + on, end)))
        t += on + off
    return windows


def validate_windows(windows: Iterable[Sequence[float]]) -> List[AttackWindow]:
    """Normalize to sorted, non-overlapping :class:`AttackWindow` s."""
    normalized = sorted(AttackWindow(w[0], w[1]) for w in windows)
    for prev, cur in zip(normalized, normalized[1:]):
        if cur.start < prev.end:
            raise ValueError(
                f"attack windows overlap: [{prev.start}, {prev.end}) and "
                f"[{cur.start}, {cur.end})"
            )
    return normalized


class ScheduledAdversary(Adversary):
    """Gate any adversary behind an on/off window schedule.

    ``withdraw_on_close=True`` gives the flapping profile: when a window
    closes, the *entire* standing Sybil population is withdrawn in one
    :meth:`~repro.core.protocol.Defense.process_bad_departure_batch`
    call at the first activation at/after the boundary (the engine only
    runs adversary code when simulation time advances, so the exodus
    lands on the first event past the close -- deterministic for a given
    trace).

    ``next_wake`` honors the engine contract conservatively: while a
    window is open it never sleeps past the inner strategy's own wake or
    the window's close; while dark it sleeps to the next window's start
    (there is provably nothing to do in between -- purge/maintenance
    callbacks are defense-invoked and not gated by wake-ups).
    """

    def __init__(
        self,
        inner: Adversary,
        windows: Iterable[Sequence[float]],
        withdraw_on_close: bool = False,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.windows = validate_windows(windows)
        if not self.windows:
            raise ValueError("a scheduled adversary needs at least one window")
        self.withdraw_on_close = bool(withdraw_on_close)
        self.name = f"scheduled-{inner.name}"
        #: index of the first window not yet closed out
        self._wi = 0

    def bind(self, sim: "Simulation", defense: "Defense") -> None:
        # Bind the inner strategy first so the *wrapper* ends up as the
        # defense's registered adversary (purge/maintenance requests
        # must route through the schedule gate).
        self.inner.bind(sim, defense)
        super().bind(sim, defense)

    # ------------------------------------------------------------------
    # schedule bookkeeping
    # ------------------------------------------------------------------
    def _active(self, now: float) -> bool:
        for window in self.windows[self._wi :]:
            if now < window.start:
                return False
            if now < window.end:
                return True
        return False

    def act(self, now: float) -> None:
        windows = self.windows
        wi = self._wi
        while wi < len(windows) and windows[wi].end <= now:
            if self.withdraw_on_close:
                standing = self.defense.bad_count()
                if standing:
                    removed = self.defense.process_bad_departure_batch(standing)
                    # Withdrawals bypass the engine's event handlers, so
                    # account for them here (scenario metrics report
                    # them as ``sybil_withdrawals``).
                    self.sim.metrics.counters.add("sybil_withdrawals", removed)
            wi += 1
        self._wi = wi
        if wi < len(windows) and windows[wi].start <= now:
            self.inner.act(now)

    def next_wake(self, now: float) -> float:
        windows = self.windows
        wi = self._wi
        if wi >= len(windows):
            return _INF
        window = windows[wi]
        if now < window.start:
            return window.start
        if now < window.end:
            # Open window: defer to the inner strategy, but never sleep
            # past the close (the exodus / window advance happens there).
            return min(self.inner.next_wake(now), window.end)
        # At or past an unclosed window's end: act() must run to close it.
        return now

    # ------------------------------------------------------------------
    # defense-invoked hooks (not gated by next_wake; see base class)
    # ------------------------------------------------------------------
    def respond_to_purge(self, bad_count: int, max_keep: int, now: float) -> int:
        if self._active(now):
            return self.inner.respond_to_purge(bad_count, max_keep, now)
        return 0

    def fund_maintenance(self, bad_count: int, cost_per_id: float, now: float) -> int:
        if self._active(now):
            return self.inner.fund_maintenance(bad_count, cost_per_id, now)
        return 0
