"""Concrete adversary strategies.

* :class:`GreedyJoinAdversary` -- burns budget on entrance challenges as
  fast as it accrues (the Figure-8/10 attack; also the Section 11
  lower-bound strategy's join phase).
* :class:`BurstyJoinAdversary` -- saves budget and floods periodically,
  stressing the entrance-cost window.
* :class:`PurgeSurvivorAdversary` -- additionally pays 1 per kept ID at
  purges, up to the κ-fraction bound (exercises Lemma 8/9).
* :class:`MaintenanceAdversary` -- for recurring-cost baselines
  (SybilControl, REMP): sustains the largest standing Sybil population
  its rate affords.
* :class:`PersistentFractionAdversary` -- keeps the bad fraction pinned
  at a target value (the Figure-9 estimation experiments).
* :class:`LowerBoundAdversary` -- the Theorem 3 strategy: join uniformly
  at the maximum affordable rate, drop out at every purge.
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.base import Adversary
from repro.adversary.budget import ResourceBudget


class GreedyJoinAdversary(Adversary):
    """Joins Sybil IDs whenever the accrued budget covers the cost."""

    name = "greedy-join"

    def __init__(self, rate: float, initial_budget: float = 0.0) -> None:
        super().__init__()
        self.budget = ResourceBudget(rate, initial=initial_budget)

    def act(self, now: float) -> None:
        self.budget.accrue(now)
        while True:
            reserve = self.budget.reserve_all()
            if reserve < self.MIN_ENTRANCE_COST:
                # Below the 1-hard floor nothing is affordable; skip the
                # defense round-trip (it would report zero attempts).
                self.budget.refund(reserve)
                return
            attempted, cost = self.defense.process_bad_join_batch(reserve)
            self.budget.refund(reserve - cost)
            if attempted == 0:
                return

    def next_wake(self, now: float) -> float:
        """Sleep until the budget could cover the cheapest possible join.

        Entrance costs are floored at :data:`MIN_ENTRANCE_COST`, so
        while the available budget is below that, ``act`` is provably a
        no-op and the engine need not call it.
        """
        available = self.budget.available
        if available >= self.MIN_ENTRANCE_COST:
            return now
        rate = self.budget.rate
        if rate <= 0:
            return float("inf")
        return now + (self.MIN_ENTRANCE_COST - available) / rate


class LowerBoundAdversary(GreedyJoinAdversary):
    """The Section 11 strategy against B1-B3 algorithms.

    "The adversary will have bad IDs join uniformly at the maximum rate
    possible, and then have the bad IDs drop out during the purge."
    Joining greedily as budget accrues yields exactly the uniform
    maximum-rate schedule, and the inherited ``respond_to_purge`` keeps
    nothing, so IDs drop out at every purge.
    """

    name = "lower-bound"


class BurstyJoinAdversary(GreedyJoinAdversary):
    """Saves budget between bursts, then floods.

    Exercises Ergo's quadratic window pricing: a burst of x joins within
    one ``1/J̃`` window costs Θ(x²) (Section 7.1).
    """

    name = "bursty-join"

    def __init__(self, rate: float, burst_period: float) -> None:
        super().__init__(rate)
        if burst_period <= 0:
            raise ValueError(f"burst period must be positive: {burst_period}")
        self.burst_period = float(burst_period)
        self._next_burst = 0.0

    def act(self, now: float) -> None:
        self.budget.accrue(now)
        if now < self._next_burst:
            return
        self._next_burst = now + self.burst_period
        while True:
            reserve = self.budget.reserve_all()
            if reserve < self.MIN_ENTRANCE_COST:
                self.budget.refund(reserve)
                return
            attempted, cost = self.defense.process_bad_join_batch(reserve)
            self.budget.refund(reserve - cost)
            if attempted == 0:
                return

    def next_wake(self, now: float) -> float:
        """Sleep through the quiet part of the burst cycle.

        Budget accrual is lazy (computed from elapsed time on the next
        ``accrue``), so skipping the in-between calls loses nothing.
        """
        if self._next_burst > now:
            return self._next_burst
        return now


class PurgeSurvivorAdversary(GreedyJoinAdversary):
    """Greedy joiner that also pays to survive purges.

    At a purge it keeps as many bad IDs as its remaining budget and the
    κ-fraction bound allow (1 unit per kept ID).  This is the worst case
    for the 3κ bad-fraction bound (Lemma 9).  Half of the accrued budget
    is kept liquid for purge payments; the other half floods joins.
    """

    name = "purge-survivor"

    #: Fraction of available budget kept liquid for purge survival.
    purge_reserve_fraction = 0.5

    def act(self, now: float) -> None:
        self.budget.accrue(now)
        while True:
            spendable = self.budget.available * (1 - self.purge_reserve_fraction)
            if spendable < self.MIN_ENTRANCE_COST:
                return
            reserve = self.budget.reserve(spendable)
            attempted, cost = self.defense.process_bad_join_batch(reserve)
            self.budget.refund(reserve - cost)
            if attempted == 0:
                return

    def next_wake(self, now: float) -> float:
        """Sleep until the join half of the budget could afford one ID."""
        if self.purge_reserve_fraction >= 1.0:
            # Everything is reserved for purge survival; act() can never
            # join, and respond_to_purge() is not gated by wake-ups.
            return float("inf")
        needed = self.MIN_ENTRANCE_COST / (1.0 - self.purge_reserve_fraction)
        available = self.budget.available
        if available >= needed:
            return now
        rate = self.budget.rate
        if rate <= 0:
            return float("inf")
        return now + (needed - available) / rate

    def respond_to_purge(self, bad_count: int, max_keep: int, now: float) -> int:
        # Purge responses are not gated by next_wake, so the budget may
        # not have accrued since the last act(); bring it current first.
        self.budget.accrue(now)
        keep = min(bad_count, max_keep, int(self.budget.available))
        if keep > 0:
            self.budget.spend(float(keep))
        return keep


class MaintenanceAdversary(Adversary):
    """Sustains the largest standing Sybil population its rate affords.

    Intended for defenses with recurring per-ID costs (SybilControl,
    REMP), which expose ``recurring_cost_rate_per_id()``.  Each
    activation it (1) tops the population up toward the sustainable
    target and (2) answers maintenance funding requests from the
    defense, paying for as many standing IDs as it can.
    """

    name = "maintenance"

    #: Fraction of the spend rate committed to maintenance.  Targeting
    #: 100% leaves nothing to replace evicted IDs, so the population
    #: death-spirals; a small headroom keeps it stable near the maximum.
    utilization = 0.9

    def __init__(self, rate: float) -> None:
        super().__init__()
        self.budget = ResourceBudget(rate)

    def _sustainable_target(self) -> int:
        cost_rate = self.defense.recurring_cost_rate_per_id()
        if cost_rate <= 0:
            return 0
        return int(self.utilization * self.budget.rate / cost_rate)

    def act(self, now: float) -> None:
        self.budget.accrue(now)
        deficit = self._sustainable_target() - self.defense.bad_count()
        if deficit <= 0:
            return
        join_cost = self.defense.quote_entrance_cost()
        spendable = min(self.budget.available, deficit * join_cost)
        attempted, cost = self.defense.process_bad_join_batch(spendable)
        if attempted:
            self.budget.spend(cost)

    def fund_maintenance(self, bad_count: int, cost_per_id: float, now: float) -> int:
        self.budget.accrue(now)
        if cost_per_id <= 0:
            return bad_count
        fundable = min(bad_count, int(self.budget.available / cost_per_id))
        if fundable > 0:
            self.budget.spend(fundable * cost_per_id)
        return fundable


class PersistentFractionAdversary(Adversary):
    """Pins the bad fraction at a target value (Figure 9's setup).

    "We experiment with different fractions of bad IDs that persist in
    the system" (Section 10.2).  Requires a defense exposing
    ``force_bad_join(count)`` (the estimation harness); tops the Sybil
    population up after every activation so that
    ``bad / (good + bad) = fraction``.
    """

    name = "persistent-fraction"

    def __init__(self, fraction: float, spend_rate: Optional[float] = None) -> None:
        super().__init__()
        if not 0 <= fraction < 1:
            raise ValueError(f"fraction must be in [0, 1): {fraction}")
        self.fraction = float(fraction)
        #: optional flooding budget on top of the persistent population
        self.budget = ResourceBudget(spend_rate) if spend_rate else None

    def act(self, now: float) -> None:
        good = self.defense.good_count()
        bad = self.defense.bad_count()
        if self.fraction > 0 and good > 0:
            target = int(self.fraction / (1.0 - self.fraction) * good)
            if bad < target:
                self.defense.force_bad_join(target - bad)
        if self.budget is not None:
            self.budget.accrue(now)
            while True:
                reserve = self.budget.reserve_all()
                if reserve < self.MIN_ENTRANCE_COST:
                    self.budget.refund(reserve)
                    break
                attempted, cost = self.defense.process_bad_join_batch(reserve)
                self.budget.refund(reserve - cost)
                if attempted == 0:
                    break

    def respond_to_purge(self, bad_count: int, max_keep: int, now: float) -> int:
        # The persistent population re-establishes itself after the purge
        # via act(); no need to pay to survive.
        return 0
