"""The server's population view: individual good IDs, aggregate bad IDs.

Why aggregate?  At adversarial spend rate T = 2^20 the adversary can
inject on the order of 10^6 Sybil joins *per second* against CCom
(entrance cost 1).  Materializing each Sybil ID as an object would make
the Figure-8 sweep intractable; but Sybil IDs are interchangeable for
every quantity the protocols compute (set sizes, symmetric differences,
purge evictions), so we track them as *cohorts* ``(join_serial,
join_time, count)``.

Good IDs stay individual because the ABC model selects the departing
good ID uniformly at random and session-based traces bind departures to
specific IDs.

Symmetric-difference bookkeeping for the aggregate side: for a snapshot
taken at serial watermark ``w``,

* ``snapshot_present`` = bad IDs with serial ≤ ``w`` still in the system,
* ``departed``        = bad IDs from the snapshot that have left,
* post-snapshot bad IDs still present = ``total - snapshot_present``,

so ``|B(t') △ B(s)| = (total - snapshot_present) + departed`` in O(1)
amortized per event.  Serials (not times) delineate snapshots because
several joins and a snapshot reset can share one timestamp; the serial
order is the event order, matching the ABC model's assumption that the
server totally orders events (Section 2.1.1).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.identity.membership import (
    SymmetricDifferenceTracker,
    make_membership_set,
)


@dataclass
class _BadSnapshot:
    """Per-tracker symmetric-difference state for the aggregate bad set."""

    watermark: int
    snapshot_present: int
    departed: int


class AggregateBadPopulation:
    """Sybil IDs tracked as cohorts of identical members."""

    def __init__(self) -> None:
        #: deque of [serial, join_time, count] cohorts, oldest first
        self._cohorts: Deque[List[float]] = deque()
        self._serials = itertools.count(1)
        self._last_serial = 0
        self._total = 0
        self._snapshots: Dict[str, _BadSnapshot] = {}

    # -- snapshots ---------------------------------------------------------
    def attach_tracker(self, name: str) -> None:
        self._snapshots[name] = _BadSnapshot(
            watermark=self._last_serial, snapshot_present=self._total, departed=0
        )

    def reset_tracker(self, name: str) -> None:
        snap = self._snapshots[name]
        snap.watermark = self._last_serial
        snap.snapshot_present = self._total
        snap.departed = 0

    def sym_diff(self, name: str) -> int:
        snap = self._snapshots[name]
        new_present = self._total - snap.snapshot_present
        return new_present + snap.departed

    # -- mutation ------------------------------------------------------------
    def join(self, count: int, now: float) -> None:
        if count < 0:
            raise ValueError(f"negative join count: {count}")
        if count == 0:
            return
        serial = next(self._serials)
        self._last_serial = serial
        self._cohorts.append([serial, float(now), count])
        self._total += count

    def evict_oldest(self, count: int) -> int:
        """Remove up to ``count`` of the oldest bad IDs; return removed."""
        removed = 0
        while count > 0 and self._cohorts:
            cohort = self._cohorts[0]
            take = min(count, int(cohort[2]))
            self._apply_eviction(int(cohort[0]), take)
            cohort[2] -= take
            if cohort[2] == 0:
                self._cohorts.popleft()
            removed += take
            count -= take
        return removed

    def evict_newest(self, count: int) -> int:
        """Remove up to ``count`` of the newest bad IDs; return removed."""
        removed = 0
        while count > 0 and self._cohorts:
            cohort = self._cohorts[-1]
            take = min(count, int(cohort[2]))
            self._apply_eviction(int(cohort[0]), take)
            cohort[2] -= take
            if cohort[2] == 0:
                self._cohorts.pop()
            removed += take
            count -= take
        return removed

    def evict_all(self) -> int:
        return self.evict_oldest(self._total)

    def _apply_eviction(self, serial: int, count: int) -> None:
        self._total -= count
        for snap in self._snapshots.values():
            if serial <= snap.watermark:
                # These were snapshot members: moving them out grows the
                # |S(t) − S(t')| side of the symmetric difference.
                snap.snapshot_present -= count
                snap.departed += count
            # Post-snapshot members joining and leaving cancel out: the
            # "new present" term shrinks automatically via self._total.

    # -- queries -------------------------------------------------------------
    @property
    def total(self) -> int:
        return self._total

    @property
    def cohort_count(self) -> int:
        return len(self._cohorts)


class SystemPopulation:
    """Combined view: ``S(t)`` = good membership ∪ aggregate bad population.

    Named trackers span both sides so GoodJEst's interval rule
    ``|S(t') △ S(t)| ≥ (5/12)|S(t')|`` and Heuristic 2's purge rule see
    the full set, while epoch detection attaches a good-only tracker
    directly to :attr:`good`.
    """

    def __init__(self) -> None:
        self.good = make_membership_set()
        self.bad = AggregateBadPopulation()
        self._combined: List[str] = []

    # -- trackers ------------------------------------------------------------
    def attach_combined_tracker(self, name: str) -> None:
        self.good.attach_tracker(name, SymmetricDifferenceTracker())
        self.bad.attach_tracker(name)
        self._combined.append(name)

    def reset_combined_tracker(self, name: str) -> None:
        self.good.reset_tracker(name)
        self.bad.reset_tracker(name)

    def combined_sym_diff(self, name: str) -> int:
        good_diff = self.good.tracker(name).symmetric_difference
        return good_diff + self.bad.sym_diff(name)

    # -- mutation ------------------------------------------------------------
    def good_join(self, ident: str, now: float) -> None:
        self.good.add(ident, is_good=True, now=now)

    def good_depart(self, ident: str) -> bool:
        return self.good.discard(ident)

    def random_good(self, rng: np.random.Generator) -> Optional[str]:
        return self.good.random_good(rng)

    def bad_join(self, count: int, now: float) -> None:
        self.bad.join(count, now)

    # -- queries -------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.good.size + self.bad.total

    @property
    def good_count(self) -> int:
        return self.good.size

    @property
    def bad_count(self) -> int:
        return self.bad.total

    def bad_fraction(self) -> float:
        total = self.size
        if total == 0:
            return 0.0
        return self.bad.total / total
