"""Ergo — "Entire by Rate of Good" (Figure 4).

    S(0) ← set of IDs that returned a valid solution to a 1-hard
           RB challenge;  J̃ maintained by GoodJEst in parallel.
    For each iteration:
      1. Each joining ID is assigned an RB challenge of hardness
         1 + (number of IDs that joined in the last 1/J̃ seconds of the
         current iteration).
      2. When the number of joining and departing IDs in this iteration
         exceeds |S(τ)|/11, perform a purge: issue all IDs a 1-hard
         challenge and keep exactly those that solve it within 1 round.

The entrance cost approximates the ratio of the total join rate to the
good join rate (Section 7.1): during a flood, the x-th joiner inside one
``1/J̃`` window pays ``x + 1``, so an adversary injecting ``x`` IDs per
window pays Θ(x²) while the good ID arriving in the same window pays
O(x) — the square-root asymmetry behind Theorem 1.

Purging bounds the bad fraction: right after a purge the adversary holds
at most a κ-fraction of the IDs (it can only solve a κ-fraction of the
challenges in one round), and an iteration ends before the fraction can
climb past 3κ ≤ 1/6 (Lemma 9).

This implementation also hosts the Section 10.3 heuristics, switched on
through :class:`ErgoConfig` (see :mod:`repro.core.heuristics` for the
named variants):

* **Heuristic 1** (``align_estimate_with_purge``): GoodJEst updates are
  deferred to just after the purge, when at most a κ-fraction of
  membership is bad.
* **Heuristic 2** (``purge_trigger="symdiff"``): iterations are
  delineated by the symmetric difference ``|S(τ) △ S(τ')| ≥ |S(τ)|/11``
  instead of the raw join+departure count, so an adversary cheaply
  joining and departing the same ID cannot force purges.
* **Heuristic 3** (``purge_gate_c``): when the purge condition trips,
  the purge is skipped if the iteration's total join rate is at most
  ``c`` times the estimate from the prior iteration (joins are in line
  with expectation, so there is no excess of bad IDs to flush).  This
  heuristic can violate correctness when ``c < α`` (Section 10.3).
* **Heuristic 4** (``classifier``): every joining ID is classified
  after paying its challenge; IDs classified bad are refused entry
  (ERGO-SF).  Refused good IDs retry; refused bad IDs cost the
  adversary their entrance fee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.goodjest import GoodJEst
from repro.core.protocol import Defense
from repro.sim.metrics import SlidingWindowCounter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.classifier.base import Classifier


@dataclass
class ErgoConfig:
    """Tunable parameters of Ergo (defaults follow the paper)."""

    #: Adversary's fraction of the RB resource; Theorem 1 needs κ ≤ 1/18.
    kappa: float = 1.0 / 18.0
    #: Iteration ends once joins+departures reach this fraction of |S(τ)|.
    purge_fraction: float = 1.0 / 11.0
    #: GoodJEst interval threshold (Figure 5).
    goodjest_threshold: float = 5.0 / 12.0
    #: Seconds taken by system initialization (one round of challenges).
    initialization_duration: float = 1.0
    #: Cap on the entrance-cost window width 1/J̃ (guards a ~zero estimate).
    max_window_width: float = 1.0e7
    #: "count" (Figure 4) or "symdiff" (Heuristic 2).
    purge_trigger: str = "count"
    #: Heuristic 1: apply GoodJEst updates right after purges.
    align_estimate_with_purge: bool = False
    #: Heuristic 3: skip a purge when join rate ≤ c · (previous estimate).
    purge_gate_c: Optional[float] = None
    #: Heuristic 4: classifier gating entry (ERGO-SF); ``None`` disables.
    classifier: Optional["Classifier"] = None
    #: Retry budget for good joiners refused by the classifier.
    max_good_retries: int = 25
    #: Fail fast if the bad fraction ever reaches 3κ (tests set this).
    paranoid: bool = False

    def __post_init__(self) -> None:
        if self.purge_trigger not in ("count", "symdiff"):
            raise ValueError(f"unknown purge trigger: {self.purge_trigger!r}")
        if not 0 < self.kappa < 1:
            raise ValueError(f"kappa must be in (0, 1): {self.kappa}")
        if not 0 < self.purge_fraction < 1:
            raise ValueError(f"purge fraction must be in (0,1): {self.purge_fraction}")


class Ergo(Defense):
    """The Ergo defense, coordinated by a single server (Section 7).

    Section 12's committee-based deployment wraps this same logic; see
    :mod:`repro.committee.decentralized`.
    """

    name = "ERGO"
    #: Name of the population tracker delineating iterations (Heuristic 2).
    ITER_TRACKER = "iteration"

    def __init__(self, config: Optional[ErgoConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else ErgoConfig()
        self.goodjest = GoodJEst(
            self.population,
            threshold=self.config.goodjest_threshold,
            defer_updates=self.config.align_estimate_with_purge,
        )
        self.population.attach_combined_tracker(self.ITER_TRACKER)
        self._window: Optional[SlidingWindowCounter] = None
        # -- iteration state (valid after bootstrap) --
        self._iter_start_time = 0.0
        self._iter_start_size = 0
        self._iter_threshold = 1
        self._event_counter = 0
        self._joins_in_iter = 0
        self._estimate_at_iter_start = 0.0
        # -- lifetime statistics --
        self.purge_count = 0
        self.purges_skipped = 0
        self.iteration_count = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def after_bootstrap(self, count: int) -> None:
        self.goodjest.initialize(
            self.now, initialization_duration=self.config.initialization_duration
        )
        # max_width bounds how far a later estimate revision can widen
        # the window (1/J̃ is capped at max_window_width), which lets the
        # counter prune batches no representable window can reach while
        # still re-admitting aged batches on widening.
        self._window = SlidingWindowCounter(
            self._window_width(), max_width=self.config.max_window_width
        )
        self._start_iteration(self.now)

    def _window_width(self) -> float:
        estimate = self.goodjest.estimate
        if estimate <= 0:
            return self.config.max_window_width
        return min(1.0 / estimate, self.config.max_window_width)

    def _start_iteration(self, now: float) -> None:
        self._iter_start_time = now
        self._iter_start_size = self.population.size
        self._iter_threshold = max(
            1, math.ceil(self._iter_start_size * self.config.purge_fraction)
        )
        self._event_counter = 0
        self._joins_in_iter = 0
        self._estimate_at_iter_start = self.goodjest.estimate
        self.population.reset_combined_tracker(self.ITER_TRACKER)
        self._window.clear(now)
        self.iteration_count += 1

    # ------------------------------------------------------------------
    # entrance cost (Figure 4, Step 1)
    # ------------------------------------------------------------------
    def quote_entrance_cost(self) -> float:
        return 1.0 + self._window.count(self.now)

    # ------------------------------------------------------------------
    # good events
    # ------------------------------------------------------------------
    def process_good_join(self, ident: Optional[str] = None) -> Optional[str]:
        classifier = self.config.classifier
        proposed = ident if ident is not None else "g"
        for _attempt in range(self.config.max_good_retries):
            cost = self.quote_entrance_cost()
            unique = self.ids.issue(proposed)
            self.accountant.charge_good(unique, cost, category="entrance")
            if classifier is not None and not classifier.classify_good(self._rng):
                # Misclassified: refused entry despite paying; retry as a
                # fresh ID (Section 10.1, ERGO-SF).
                self.sim.metrics.counters.add("good_refused")
                continue
            self.population.good_join(unique, self.now)
            self._note_events(joins=1)
            return unique
        self.sim.metrics.counters.add("good_abandoned")
        return None

    def _batch_pricing(self):
        """How the vectorized join batch prices a run.

        ``"window"`` -- Ergo's own quote (``1 +`` sliding-window count),
        vectorized through ``SlidingWindowCounter.quote_record_run``.  A
        float -- a flat per-join cost (CCom overrides this to ``1.0``).
        ``None`` -- the subclass overrode :meth:`quote_entrance_cost`
        with something this class cannot vectorize; the batch hook falls
        back to the per-row loop, which prices through the virtual
        quote.
        """
        if type(self).quote_entrance_cost is Ergo.quote_entrance_cost:
            return "window"
        return None

    def process_good_join_batch(self, times, idents=None) -> list:
        """Batched good joins: whole-run pricing between protocol trips.

        Equivalent to looping :meth:`process_good_join` row by row --
        same charges, window records, GoodJEst updates, and purge
        decisions in the same order -- but executed in *chunks*: a chunk
        never extends past the row where the purge rule or GoodJEst's
        interval rule can trip (both advance by exactly one per join, so
        the trip row is computed in closed form), and inside a chunk the
        entire run is priced in one ``quote_record_run`` pass, named in
        one ``issue_batch``, charged in one float-exact ``charge_seq``,
        and admitted in one arena ``add_batch``.  The per-row checks
        being skipped are provably no-ops: ``on_event`` /
        ``_maybe_purge`` are pure reads until their trip row, and the
        per-row ``_observe_fraction`` is dropped because across a pure
        join run the bad fraction is non-increasing, so the pre-batch
        peak dominates every intermediate value.  Classifier runs
        (ERGO-SF) fall back to the generic loop, which handles retries;
        subclasses with custom quotes fall back to the per-row loop.
        """
        if self.config.classifier is not None:
            return super().process_good_join_batch(times, idents)
        pricing = self._batch_pricing()
        n = len(times)
        if pricing is None or n < 4:
            # Tiny runs (steady-state interleave cuts batches to a row
            # or two): the closed-form trip bounds cost more than the
            # per-row checks they elide.
            return self._join_batch_per_row(times, idents)
        clock = self.sim.clock
        window = self._window
        goodjest = self.goodjest
        accountant = self.accountant
        add_batch = self.population.good.add_batch
        issue = self.ids.issue
        admitted: list = []
        i = 0
        # Rows-to-trip distances survive across chunks (each join consumes
        # exactly one from each), so the closed-form bounds are computed
        # only at entry and after an actual trip -- and the per-row
        # ``on_event`` / ``_maybe_purge`` calls, pure reads before their
        # trip row, are elided entirely rather than replayed per chunk.
        until_purge = self._events_until_purge()
        until_jest = goodjest.joins_until_update()
        while i < n:
            k = n - i
            if until_purge < k:
                k = until_purge
            if until_jest < k:
                k = until_jest
            chunk = times[i : i + k]
            if pricing == "window":
                counts = window.quote_record_run(chunk)
                costs = [1.0 + c for c in counts]
            else:
                window.record_run(chunk)
                costs = [pricing] * k
            if idents is None:
                uniques = self.ids.issue_batch("g", k)
            else:
                uniques = [
                    issue(p if p is not None else "g")
                    for p in idents[i : i + k]
                ]
            accountant.charge_good_batch(uniques, costs, "entrance")
            add_batch(uniques, True, chunk)
            admitted += uniques
            self._joins_in_iter += k
            self._event_counter += k
            i += k
            until_purge -= k
            until_jest -= k
            if until_jest == 0 or until_purge == 0:
                last_t = chunk[-1]
                clock._now = last_t
                if until_jest == 0:
                    if goodjest.on_event(last_t):
                        window.set_width(self._window_width())
                        if self.tracer.enabled:
                            self.tracer.emit(
                                last_t,
                                "estimate_update",
                                estimate=goodjest.estimate,
                            )
                    until_jest = goodjest.joins_until_update()
                if until_purge == 0:
                    self._maybe_purge(last_t)
                    # The purge (or gated iteration reset) moved both
                    # the iteration counters and the population.
                    until_purge = self._events_until_purge()
                    until_jest = goodjest.joins_until_update()
        clock._now = times[n - 1]
        return admitted

    def _join_batch_per_row(self, times, idents=None) -> list:
        """The row-by-row batch body (virtual-quote subclasses)."""
        clock = self.sim.clock
        window = self._window
        issue = self.ids.issue
        charge = self.accountant.charge_good
        good_join = self.population.good_join
        goodjest = self.goodjest
        quote = self.quote_entrance_cost
        admitted = []
        append = admitted.append
        for i, t in enumerate(times):
            clock._now = t
            cost = quote()
            proposed = idents[i] if idents is not None else None
            unique = issue(proposed if proposed is not None else "g")
            charge(unique, cost, "entrance")
            good_join(unique, t)
            window.record(t, 1)
            self._joins_in_iter += 1
            self._event_counter += 1
            if goodjest.on_event(t):
                window.set_width(self._window_width())
                if self.tracer.enabled:
                    self.tracer.emit(
                        t, "estimate_update", estimate=goodjest.estimate
                    )
            self._maybe_purge(t)
            append(unique)
        return admitted

    def process_good_departure_batch(self, times, idents=None) -> None:
        """Batched good departures: whole-run removals between trips.

        Fully named runs (the engine's session-departure drains) are
        removed through the arena's ``remove_batch`` in chunks bounded
        by the purge counter and GoodJEst's conservative departure
        bound, with the per-row machinery collapsed to one pass per
        chunk: the skipped ``on_event`` / ``_maybe_purge`` calls are
        pure reads before their trip row, and the bad fraction is
        non-decreasing across a pure good-departure run, so observing it
        once after the chunk captures the peak the per-row loop would
        have seen.  Runs containing anonymous victims fall back to the
        per-row hook to preserve the uniform random draw order.
        """
        n = len(times)
        if idents is None or n < 4 or None in idents:
            Defense.process_good_departure_batch(self, times, idents)
            return
        clock = self.sim.clock
        goodjest = self.goodjest
        remove_batch = self.population.good.remove_batch
        i = 0
        # Bounds consume one unit per *removal* (absent victims change
        # nothing); the departure bound is conservative, so hitting zero
        # re-checks exactly rather than guaranteeing a trip.
        until_purge = self._events_until_purge()
        until_jest = goodjest.departures_until_update_bound()
        while i < n:
            k = n - i
            if until_purge < k:
                k = until_purge
            if until_jest < k:
                k = until_jest
            removed = remove_batch(idents[i : i + k])
            i += k
            if removed:
                self._event_counter += removed
                self._observe_fraction()
                until_purge -= removed
                until_jest -= removed
                if until_jest == 0 or until_purge == 0:
                    last_t = times[i - 1]
                    clock._now = last_t
                    if until_jest == 0:
                        if goodjest.on_event(last_t):
                            self._window.set_width(self._window_width())
                            if self.tracer.enabled:
                                self.tracer.emit(
                                    last_t,
                                    "estimate_update",
                                    estimate=goodjest.estimate,
                                )
                        until_jest = goodjest.departures_until_update_bound()
                    if until_purge == 0:
                        self._maybe_purge(last_t)
                        until_purge = self._events_until_purge()
                        until_jest = goodjest.departures_until_update_bound()
        clock._now = times[n - 1]

    def process_good_departure(self, ident: Optional[str] = None) -> Optional[str]:
        victim = self._select_departing_good(ident)
        if victim is None:
            return None
        self.population.good_depart(victim)
        self._note_events(joins=0, departures=1)
        return victim

    def process_bad_departure(self, ident: str = "") -> None:
        removed = self.population.bad.evict_newest(1)
        if removed:
            # Even bad departures are detectable (heartbeats, §2.1.1) and
            # count toward the iteration's churn.
            self._note_events(joins=0, departures=removed)

    # ------------------------------------------------------------------
    # adversary joins (batched; see population module docstring)
    # ------------------------------------------------------------------
    def process_bad_join_batch(self, budget: float) -> Tuple[int, float]:
        classifier = self.config.classifier
        attempted_total = 0
        cost_total = 0.0
        remaining = float(budget)
        while True:
            window_count = self._window.count(self.now)
            # Size the batch with worst-case pricing (every attempt
            # admitted and congesting the window) so the realized cost
            # can never exceed the budget, whatever the classifier draws.
            attempts = self._max_affordable(window_count, remaining, 1.0)
            attempts = min(attempts, self._events_until_purge())
            if attempts <= 0:
                break
            if classifier is None:
                admitted = attempts
            else:
                admitted = classifier.admit_bad_batch(attempts, self._rng)
            # Admitted joiners raise the window count for later attempts;
            # with admissions evenly interleaved among the attempts the
            # congestion surcharge is admitted·(m−1)/2, which is at most
            # the worst case m(m−1)/2 used for sizing above.
            increments = admitted * (attempts - 1) / 2.0
            batch_cost = attempts * (1.0 + window_count) + increments
            self.accountant.charge_adversary(batch_cost, category="entrance")
            remaining -= batch_cost
            attempted_total += attempts
            cost_total += batch_cost
            if admitted > 0:
                self.population.bad_join(admitted, self.now)
                self._note_events(joins=admitted)
        return attempted_total, cost_total

    @staticmethod
    def _max_affordable(window_count: int, budget: float, admit_prob: float) -> int:
        """Largest m with m·(1+w) + p·m(m−1)/2 ≤ budget (expected cost)."""
        base = 1.0 + window_count
        if budget < base:
            return 0
        half_p = admit_prob / 2.0
        if half_p <= 0:
            return int(budget // base)
        # Solve half_p·m² + (base − half_p)·m − budget = 0 for m > 0.
        b_coef = base - half_p
        disc = b_coef * b_coef + 4.0 * half_p * budget
        m = int((math.sqrt(disc) - b_coef) / (2.0 * half_p))
        # Guard float slop: never exceed the budget.
        while m > 0 and m * base + half_p * m * (m - 1) > budget:
            m -= 1
        return m

    # ------------------------------------------------------------------
    # iteration bookkeeping and purges (Figure 4, Step 2)
    # ------------------------------------------------------------------
    def _note_events(self, joins: int, departures: int = 0) -> None:
        now = self.now
        if joins:
            self._window.record(now, joins)
            self._joins_in_iter += joins
        self._event_counter += joins + departures
        self._observe_fraction()
        if self.goodjest.on_event(now):
            self._window.set_width(self._window_width())
            if self.tracer.enabled:
                self.tracer.emit(
                    now, "estimate_update", estimate=self.goodjest.estimate
                )
        self._maybe_purge(now)

    def _iteration_progress(self) -> int:
        if self.config.purge_trigger == "count":
            return self._event_counter
        return self.population.combined_sym_diff(self.ITER_TRACKER)

    def _events_until_purge(self) -> int:
        return max(self._iter_threshold - self._iteration_progress(), 0)

    def _maybe_purge(self, now: float) -> bool:
        if self._iteration_progress() < self._iter_threshold:
            return False
        if self._purge_gated(now):
            self.purges_skipped += 1
            self.sim.metrics.counters.add("purges_skipped")
            self._finish_iteration(now)
            return False
        self._execute_purge(now)
        self._finish_iteration(now)
        return True

    def _purge_gated(self, now: float) -> bool:
        """Heuristic 3: skip the purge when joins match expectations.

        The gate only activates once GoodJEst has completed at least one
        interval: the bootstrap estimate (|S(0)| per initialization
        round) overstates the join rate by orders of magnitude, and
        gating against it would skip every purge while a slow Sybil
        drip accumulates past 1/6 -- exactly the correctness failure the
        paper warns about for c < α (Section 10.3).
        """
        c = self.config.purge_gate_c
        if c is None:
            return False
        if not self.goodjest.intervals:
            return False
        elapsed = max(now - self._iter_start_time, 1e-9)
        join_rate = self._joins_in_iter / elapsed
        return join_rate <= c * self._estimate_at_iter_start

    def _execute_purge(self, now: float) -> None:
        good_n = self.population.good_count
        # Every good ID answers the 1-hard challenge within the round.
        self.accountant.charge_good_bulk(good_n, 1.0, category="purge")
        bad_n = self.population.bad_count
        max_keep = int(self.config.kappa * self.population.size)
        kept = 0
        if self._adversary is not None and bad_n > 0 and max_keep > 0:
            kept = self._adversary.respond_to_purge(bad_n, max_keep, now)
            kept = max(0, min(kept, max_keep, bad_n))
        evicted = self.population.bad.evict_oldest(bad_n - kept)
        if kept > 0:
            self.accountant.charge_adversary(float(kept), category="purge")
        self.purge_count += 1
        self.sim.metrics.counters.add("purges")
        self.sim.metrics.counters.add("bad_purged", evicted)
        if self.tracer.enabled:
            self.tracer.emit(
                now,
                "purge",
                good=good_n,
                evicted=evicted,
                kept=kept,
                size=self.population.size,
            )

    def _finish_iteration(self, now: float) -> None:
        if self.goodjest.apply_deferred(now):
            self._window.set_width(self._window_width())
        if self.config.paranoid:
            from repro.core.defid import check_defid

            check_defid(self.population, self.config.kappa, now)
        self._start_iteration(now)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def estimate(self) -> float:
        """Current GoodJEst estimate J̃."""
        return self.goodjest.estimate

    def iteration_stats(self) -> dict:
        return {
            "iterations": self.iteration_count,
            "purges": self.purge_count,
            "purges_skipped": self.purges_skipped,
            "estimate": self.goodjest.estimate,
            "intervals": len(self.goodjest.intervals),
        }
