"""The paper's primary contribution: Ergo, GoodJEst, and the DefID problem.

* :mod:`repro.core.protocol` -- the abstract ``Defense`` interface every
  Sybil defense (Ergo and the baselines) implements, plus the engine- and
  adversary-facing entry points.
* :mod:`repro.core.population` -- the server's population view: good IDs
  individually, Sybil IDs in aggregate cohorts (necessary to simulate
  adversaries injecting millions of IDs per second at T = 2^20).
* :mod:`repro.core.goodjest` -- the GoodJEst estimator (Figure 5).
* :mod:`repro.core.ergo` -- the Ergo defense (Figure 4).
* :mod:`repro.core.heuristics` -- Heuristics 1-4 of Section 10.3 and the
  named variants ERGO-CH1, ERGO-CH2, ERGO-SF(92), ERGO-SF(98).
* :mod:`repro.core.defid` -- the DefID problem statement and its runtime
  invariant checker.
"""

from repro.core.defid import DefIDViolation, check_defid
from repro.core.ergo import Ergo, ErgoConfig
from repro.core.goodjest import GoodJEst
from repro.core.heuristics import ergo_ch1, ergo_ch2, ergo_sf
from repro.core.population import AggregateBadPopulation, SystemPopulation
from repro.core.protocol import Defense

__all__ = [
    "AggregateBadPopulation",
    "Defense",
    "DefIDViolation",
    "Ergo",
    "ErgoConfig",
    "GoodJEst",
    "SystemPopulation",
    "check_defid",
    "ergo_ch1",
    "ergo_ch2",
    "ergo_sf",
]
