"""The abstract ``Defense`` interface.

A defense is the server-side protocol of Section 2: it learns about
every join and departure, issues resource-burning challenges, and
maintains the membership set.  The simulation engine calls the
``process_*`` methods for trace events; the adversary calls
``quote_entrance_cost`` / ``process_bad_join_batch`` to inject Sybil
IDs, paying whatever the defense demands.

Implementations: :class:`repro.core.ergo.Ergo` (and its heuristic
variants), :class:`repro.baselines.ccom.CCom`,
:class:`repro.baselines.sybilcontrol.SybilControl`,
:class:`repro.baselines.remp.Remp`, and the estimation-only harness in
:mod:`repro.experiments.figure9`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterable, Optional, Tuple

from repro.core.population import SystemPopulation
from repro.identity.ids import IdentityFactory
from repro.rb.ledger import CostAccountant
from repro.sim.tracing import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adversary.base import Adversary
    from repro.sim.engine import Simulation


class Defense(abc.ABC):
    """Base class wiring a defense into the simulation."""

    #: Human-readable algorithm name (used in reports and RNG streams).
    name = "abstract"

    def __init__(self) -> None:
        self.sim: Optional["Simulation"] = None
        self.population = SystemPopulation()
        self.ids = IdentityFactory()
        self.accountant: Optional[CostAccountant] = None
        self._adversary: Optional["Adversary"] = None
        self._rng = None
        #: Highest bad fraction ever observed (engine samples can miss
        #: instantaneous spikes between joins and evictions).
        self.peak_bad_fraction = 0.0
        #: Structured protocol trace; disabled by default (zero cost
        #: beyond one check per emit).  Enable with ``tracer.enabled``.
        self.tracer = TraceRecorder(enabled=False)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, sim: "Simulation") -> None:
        """Attach to a simulation (engine calls this once)."""
        self.sim = sim
        self.accountant = CostAccountant(sim.metrics)
        self._rng = sim.rngs.stream(f"defense.{self.name}")
        self.configure()

    def configure(self) -> None:
        """Subclass hook run at bind time (set up trackers, callbacks)."""

    def register_adversary(self, adversary: "Adversary") -> None:
        self._adversary = adversary

    @property
    def now(self) -> float:
        return self.sim.clock.now

    def bootstrap(self, idents: Iterable[str]) -> None:
        """Initialize membership with IDs that solved a 1-hard challenge.

        "The server initializes system membership with all IDs that
        solve a 1-hard RB challenge." (Section 7.)  Each initial good ID
        is charged 1.
        """
        count = 0
        for ident in idents:
            self.population.good_join(ident, self.now)
            self.accountant.charge_good(ident, 1.0, category="init")
            count += 1
        self.after_bootstrap(count)

    def after_bootstrap(self, count: int) -> None:
        """Subclass hook run after initial membership is in place."""

    # ------------------------------------------------------------------
    # engine-facing event processing
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def process_good_join(self, ident: Optional[str] = None) -> Optional[str]:
        """Handle a good ID's join attempt.

        Returns the admitted (unique) identifier, or ``None`` if the
        joiner was not admitted.
        """

    @abc.abstractmethod
    def process_good_departure(self, ident: Optional[str] = None) -> Optional[str]:
        """Handle a good departure.

        ``ident=None`` means the victim is selected uniformly at random
        from the good IDs (the ABC model's rule).  Returns the ID that
        actually departed, or ``None`` if no such ID was present.
        """

    def process_bad_departure(self, ident: str) -> None:
        """Adversary-scheduled departure of one of its IDs (aggregate)."""
        self.population.bad.evict_newest(1)

    def process_bad_departure_batch(self, count: int) -> int:
        """Withdraw up to ``count`` bad IDs at the current instant.

        The block form of :meth:`process_bad_departure`: a scheduled
        Sybil mass exodus (:class:`repro.sim.events.BadDepartureBatch`)
        or a flapping attack's window-close withdrawal arrives as one
        call instead of ``count`` per-object events.  The default
        aggregates only when the per-ID hook is the base implementation
        (a bare ``evict_newest(1)``, for which one ``evict_newest(count)``
        is exactly equivalent); defenses that override the per-ID hook
        with extra bookkeeping get a faithful per-ID loop unless they
        also override this batch hook with something provably
        equivalent.

        Returns the number of departures the schedule *delivered* (calls
        that found a standing Sybil to withdraw) -- capped by the live
        population, and never counting IDs a defense mechanism (e.g. a
        purge tripped by the departure bookkeeping) evicted as a side
        effect; those are already tallied by the defense's own counters.
        """
        if count <= 0:
            return 0
        if type(self).process_bad_departure is Defense.process_bad_departure:
            return self.population.bad.evict_newest(count)
        delivered = 0
        for _ in range(count):
            if self.population.bad_count == 0:
                break
            self.process_bad_departure("")
            delivered += 1
        return delivered

    # ------------------------------------------------------------------
    # batch hooks (the engine's zero-heap fast path)
    # ------------------------------------------------------------------
    # The engine hands runs of good-churn rows to these hooks instead of
    # dispatching one event at a time.  Contract:
    #
    # * ``times`` is non-decreasing and every row precedes the next heap
    #   event, the adversary's wake time, and the next metrics sample --
    #   nothing else happens "inside" a batch.
    # * The defaults loop over the per-ID hooks, advancing the clock to
    #   each row's time, so overriding is purely an optimization.
    # * An override MUST be observably equivalent to that loop (same
    #   charges, same population mutations in the same order, same
    #   purge/iteration decisions); it may only amortize work whose
    #   per-row result is provably unchanged -- e.g. skipping a
    #   peak-bad-fraction check while the fraction is monotone across
    #   the run, or merging same-time SlidingWindowCounter records.
    #   Equivalence is enforced by tests/test_engine_fastpath.py.

    def process_good_join_batch(self, times, idents=None) -> list:
        """Handle a time-sorted run of good join attempts.

        ``idents`` is a parallel sequence of proposed names (``None``
        entries -- or ``idents=None`` for the whole run -- mean the
        defense picks the name).  Returns one admitted unique ident (or
        ``None`` if refused) per row; the engine schedules session
        departures for the admitted ones.
        """
        clock = self.sim.clock
        join = self.process_good_join
        admitted = []
        append = admitted.append
        if idents is None:
            for t in times:
                clock._now = t
                append(join(None))
        else:
            for t, ident in zip(times, idents):
                clock._now = t
                append(join(ident))
        return admitted

    def process_good_departure_batch(self, times, idents=None) -> None:
        """Handle a time-sorted run of good departures.

        ``idents`` entries of ``None`` (or ``idents=None``) select the
        victim uniformly at random, as in the per-ID hook.
        """
        clock = self.sim.clock
        depart = self.process_good_departure
        if idents is None:
            for t in times:
                clock._now = t
                depart(None)
        else:
            for t, ident in zip(times, idents):
                clock._now = t
                depart(ident)

    # -- shared override bodies for flat-cost defenses ------------------
    def _flat_cost_join_batch(self, times, idents, cost: float) -> list:
        """Batched joins for defenses whose join is issue/charge/admit.

        Observably equivalent to the default loop for any defense whose
        ``process_good_join`` charges a flat ``cost`` and does no other
        bookkeeping (SybilControl, REMP): each row keeps its own
        timestamp and per-ID ledger entry, but names, charges, and
        membership go through the whole-run batch APIs
        (``IdentityFactory.issue_batch``, ``charge_good_batch``,
        ``MembershipSet.add_batch``) instead of per-row calls.
        """
        k = len(times)
        if idents is None:
            uniques = self.ids.issue_batch("g", k)
        else:
            issue = self.ids.issue
            uniques = [
                issue(ident if ident is not None else "g") for ident in idents
            ]
        self.accountant.charge_good_batch(uniques, [cost] * k, "entrance")
        self.population.good.add_batch(uniques, True, times)
        return uniques

    def _removal_departure_batch(self, times, idents=None) -> None:
        """Batched departures by direct membership removal.

        Observably equivalent to the default loop for any defense whose
        ``process_good_departure`` is select-victim + remove with no
        other bookkeeping: a named victim that already left is a no-op
        either way, and unnamed victims fall back to the per-ID hook so
        the uniform random draw order matches the per-event path.  Fully
        named runs (the engine's session-departure drains) go through
        ``MembershipSet.remove_batch`` in one call.
        """
        if idents is None:
            Defense.process_good_departure_batch(self, times, idents)
            return
        if len(idents) == 1:
            # Single-departure drains dominate once joins interleave;
            # skip straight to the membership removal.
            ident = idents[0]
            if ident is None:
                self.sim.clock._now = times[0]
                self.process_good_departure(None)
            else:
                self.population.good.discard(ident)
            return
        if None in idents:
            clock = self.sim.clock
            remove = self.population.good.discard
            depart = self.process_good_departure
            for t, ident in zip(times, idents):
                if ident is None:
                    clock._now = t
                    depart(None)
                else:
                    remove(ident)
            return
        self.population.good.remove_batch(idents)

    def on_tick(self, now: float) -> None:
        """Periodic housekeeping (default: none)."""

    # ------------------------------------------------------------------
    # adversary-facing API
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def quote_entrance_cost(self) -> float:
        """The RB hardness the next joiner must pay right now."""

    @abc.abstractmethod
    def process_bad_join_batch(self, budget: float) -> Tuple[int, float]:
        """Admit as many Sybil joins as ``budget`` affords right now.

        The defense charges the adversary for every join *attempt* (the
        challenge is solved before any admission decision) and handles
        any purges the joins trigger.  Returns ``(attempted, total_cost)``
        so the adversary can decrement its budget; ``attempted`` may
        exceed the number of IDs actually admitted when a classifier
        refuses entries (ERGO-SF).
        """

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def system_size(self) -> int:
        return self.population.size

    def good_count(self) -> int:
        return self.population.good_count

    def bad_count(self) -> int:
        return self.population.bad_count

    def bad_fraction(self) -> float:
        return self.population.bad_fraction()

    def _observe_fraction(self) -> None:
        fraction = self.population.bad_fraction()
        if fraction > self.peak_bad_fraction:
            self.peak_bad_fraction = fraction

    def _select_departing_good(self, ident: Optional[str]) -> Optional[str]:
        """Resolve which good ID departs (u.a.r. when unspecified)."""
        if ident is None:
            return self.population.random_good(self._rng)
        if ident in self.population.good:
            return ident
        # The ID already left (e.g. chosen earlier as a u.a.r. victim);
        # a departure of an absent ID is a no-op, not an error.
        return None
