"""The DefID problem (Section 2.2) and its runtime invariant checker.

DefID generalizes the well-studied GenID problem to churn: at any time
``t``, all good IDs must know a set ``S(t)`` such that

1. every good ID is in ``S(t)``; and
2. at most an O(κ)-fraction of the IDs in ``S(t)`` are bad.

Ergo guarantees (2) with the concrete constant ``3κ`` for ``κ ≤ 1/18``
(Theorem 1 / Lemma 9), keeping the bad fraction strictly below ``1/6`` —
the threshold enabling Byzantine agreement and secure multiparty
computation.  (1) holds by construction in our server model: the server
admits every good ID that pays its entrance cost and never removes a
good ID that answers purge challenges.

:func:`check_defid` is used by tests and by defenses in "paranoid" mode
to fail fast the moment the invariant is violated.
"""

from __future__ import annotations

from repro.core.population import SystemPopulation

#: The fraction of bad IDs Ergo keeps the system under (Lemma 9).
BAD_FRACTION_BOUND = 1.0 / 6.0


class DefIDViolation(AssertionError):
    """Raised when the DefID invariant is observed to fail."""


def check_defid(
    population: SystemPopulation,
    kappa: float,
    now: float,
    bound_multiplier: float = 3.0,
) -> None:
    """Assert the DefID bad-fraction invariant: ``bad/N < 3κ``.

    Raises:
        DefIDViolation: with a diagnostic message when the bound fails.
    """
    bound = bound_multiplier * kappa
    fraction = population.bad_fraction()
    if fraction >= bound and population.size > 0:
        raise DefIDViolation(
            f"DefID violated at t={now:.3f}: bad fraction "
            f"{fraction:.4f} >= {bound:.4f} "
            f"(bad={population.bad_count}, total={population.size})"
        )
