"""GoodJEst: estimating the good join rate (Figure 5).

    t  ← time at system initialization.
    J̃  ← |S(t)| divided by time required for initialization.
    Repeat forever: whenever |S(t') △ S(t)| ≥ (5/12)|S(t')|:
        1.  J̃ ← |S(t')| / (t' − t)
        2.  t ← t'

The estimator needs no knowledge of which IDs are good, of epoch
boundaries, or of α and β.  Theorem 2 guarantees (given a bad fraction
below 1/6) that ``J̃`` is within ``[ρ/(88 α⁴ β³), 1867 α⁴ β⁵ ρ]`` of the
true good join rate ρ of any epoch the estimate lives in.

Heuristic 1 (Section 10.3) aligns updates with Ergo's purges: when the
interval threshold trips, the update is *deferred* and applied right
after the next purge, so the membership size used in step 1 contains at
most a κ-fraction of bad IDs.  Set ``defer_updates=True`` and have the
defense call :meth:`apply_deferred` after purging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.population import SystemPopulation

#: Interval threshold from Figure 5; see Section 9.3 for why 5/12.
INTERVAL_THRESHOLD = 5.0 / 12.0


@dataclass(frozen=True)
class IntervalRecord:
    """One completed GoodJEst interval (for analysis/experiments)."""

    start: float
    end: float
    size_at_end: int
    estimate: float


class GoodJEst:
    """The good-join-rate estimator, fed by a defense's population view."""

    TRACKER = "goodjest"

    def __init__(
        self,
        population: SystemPopulation,
        threshold: float = INTERVAL_THRESHOLD,
        defer_updates: bool = False,
        min_interval_length: float = 1e-9,
    ) -> None:
        self._population = population
        self._threshold = float(threshold)
        self._defer = bool(defer_updates)
        self._min_len = float(min_interval_length)
        self._estimate: Optional[float] = None
        self._interval_start: Optional[float] = None
        self._pending = False
        self._intervals: List[IntervalRecord] = []
        population.attach_combined_tracker(self.TRACKER)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def initialize(self, now: float, initialization_duration: float = 1.0) -> None:
        """Set the initial estimate from the bootstrap population.

        "Initially, GoodJEst sets J̃ equal to the number of IDs at system
        initialization divided by the total time taken for
        initialization" (Section 8); initialization is one round of
        1-hard challenges, so the default duration is one second.
        """
        if initialization_duration <= 0:
            raise ValueError("initialization duration must be positive")
        size = self._population.size
        self._estimate = max(size / initialization_duration, self._min_len)
        self._interval_start = now
        self._population.reset_combined_tracker(self.TRACKER)

    @property
    def estimate(self) -> float:
        """The current estimate J̃ (raises if never initialized)."""
        if self._estimate is None:
            raise RuntimeError("GoodJEst.initialize() was never called")
        return self._estimate

    @property
    def interval_start(self) -> float:
        if self._interval_start is None:
            raise RuntimeError("GoodJEst.initialize() was never called")
        return self._interval_start

    @property
    def intervals(self) -> List[IntervalRecord]:
        """Completed intervals, oldest first."""
        return list(self._intervals)

    @property
    def has_pending_update(self) -> bool:
        return self._pending

    # ------------------------------------------------------------------
    # event feed
    # ------------------------------------------------------------------
    def on_event(self, now: float) -> bool:
        """Check the interval rule after a join/departure.

        Returns ``True`` if the estimate was updated (or, in deferred
        mode, if an update became pending).
        """
        if self._estimate is None:
            raise RuntimeError("GoodJEst.initialize() was never called")
        if self._pending:
            return False
        diff = self._population.combined_sym_diff(self.TRACKER)
        if diff < self._threshold * self._population.size:
            return False
        if self._defer:
            self._pending = True
            return True
        self._update(now)
        return True

    def joins_until_update(self) -> int:
        """Exact count of further *pure good joins* before a trip.

        During a run of good joins, the combined symmetric difference
        and the system size each grow by exactly 1 per row, so the k-th
        next join trips the interval rule iff
        ``diff + k >= threshold * (size + k)`` -- evaluated with the
        same float arithmetic as :meth:`on_event`, so Ergo's vectorized
        join batches can stop at precisely the row where the per-row
        loop would have updated.  Returns at least 1; a huge sentinel
        when no number of joins can trip (deferred update pending, or a
        threshold ≥ 1 never crossed).
        """
        never = 1 << 62
        if self._estimate is None:
            raise RuntimeError("GoodJEst.initialize() was never called")
        if self._pending:
            return never
        diff = self._population.combined_sym_diff(self.TRACKER)
        size = self._population.size
        thr = self._threshold
        if diff + 1 >= thr * (size + 1):
            return 1
        if thr >= 1.0:
            # diff + k - thr*(size + k) is non-increasing in k.
            return never
        k = int(math.ceil((thr * size - diff) / (1.0 - thr)))
        if k < 1:
            k = 1
        # The estimate above can be off by an ulp; settle on the exact
        # first k satisfying the on_event comparison.
        while diff + k < thr * (size + k):
            k += 1
        while k > 1 and diff + (k - 1) >= thr * (size + k - 1):
            k -= 1
        return k

    def departures_until_update_bound(self) -> int:
        """A safe lower bound on departures before a trip can occur.

        A departure moves the combined symmetric difference by at most
        +1 while shrinking the size by 1 (a post-snapshot member leaving
        *reduces* the difference), so the worst case approaches the
        interval rule fastest via ``diff + k >= threshold * (size - k)``.
        Any run shorter than the returned bound cannot trip before its
        final row; the caller re-checks exactly with :meth:`on_event`.
        """
        never = 1 << 62
        if self._estimate is None:
            raise RuntimeError("GoodJEst.initialize() was never called")
        if self._pending:
            return never
        diff = self._population.combined_sym_diff(self.TRACKER)
        size = self._population.size
        thr = self._threshold
        if diff + 1 >= thr * (size - 1):
            return 1
        k = int(math.ceil((thr * size - diff) / (1.0 + thr)))
        if k < 1:
            k = 1
        while diff + k < thr * (size - k):
            k += 1
        while k > 1 and diff + (k - 1) >= thr * (size - (k - 1)):
            k -= 1
        return k

    def apply_deferred(self, now: float) -> bool:
        """Apply a pending update (Heuristic 1: call right after a purge)."""
        if not self._pending:
            return False
        self._pending = False
        self._update(now)
        return True

    def _update(self, now: float) -> None:
        elapsed = max(now - self._interval_start, self._min_len)
        size = self._population.size
        new_estimate = max(size / elapsed, self._min_len)
        self._intervals.append(
            IntervalRecord(
                start=self._interval_start,
                end=now,
                size_at_end=size,
                estimate=new_estimate,
            )
        )
        self._estimate = new_estimate
        self._interval_start = now
        self._population.reset_combined_tracker(self.TRACKER)
