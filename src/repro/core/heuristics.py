"""Named Ergo variants from Section 10.3.

The paper evaluates four heuristics and three named combinations:

* **ERGO-CH1** = Heuristics 1 + 2 (purge-aligned estimation, symmetric-
  difference purge trigger).
* **ERGO-CH2** = Heuristics 1 + 2 + 3 (additionally gate purges on the
  iteration's join rate vs. the prior estimate, c = 1/11).  Heuristic 3
  can violate the 1/6 bound when c < α; the paper verified empirically
  that it held on all four datasets, and our experiments re-verify via
  ``SimulationResult.max_bad_fraction``.
* **ERGO-SF(92)** / **ERGO-SF(98)** = Heuristics 1 + 2 + 3 + 4 with
  classifier accuracy 0.92 / 0.98.

Figure 8's plain **ERGO-SF** applies only Heuristic 4 on top of vanilla
Ergo (Section 10.1); build it with ``ergo_sf(0.98, combined=False)``.
"""

from __future__ import annotations

from typing import Optional

from repro.classifier.base import Classifier
from repro.classifier.bernoulli import BernoulliClassifier
from repro.core.ergo import Ergo, ErgoConfig

#: Heuristic 3's purge-gate constant ("In our experiments, we set c = 1/11").
PURGE_GATE_C = 1.0 / 11.0


def _named_ergo(name: str, config: ErgoConfig) -> Ergo:
    defense = Ergo(config)
    defense.name = name
    return defense


def ergo_ch1(**config_overrides) -> Ergo:
    """ERGO-CH1: Heuristics 1 (aligned estimate) + 2 (symdiff purges)."""
    config = ErgoConfig(
        align_estimate_with_purge=True,
        purge_trigger="symdiff",
        **config_overrides,
    )
    return _named_ergo("ERGO-CH1", config)


def ergo_ch2(purge_gate_c: float = PURGE_GATE_C, **config_overrides) -> Ergo:
    """ERGO-CH2: Heuristics 1 + 2 + 3 (gated purges)."""
    config = ErgoConfig(
        align_estimate_with_purge=True,
        purge_trigger="symdiff",
        purge_gate_c=purge_gate_c,
        **config_overrides,
    )
    return _named_ergo("ERGO-CH2", config)


def ergo_sf(
    accuracy: float = 0.98,
    combined: bool = True,
    classifier: Optional[Classifier] = None,
    **config_overrides,
) -> Ergo:
    """ERGO-SF: classifier-gated Ergo (Heuristic 4).

    ``combined=True`` (Figure 10) stacks Heuristics 1-3 underneath;
    ``combined=False`` (Figure 8's ERGO-SF) gates vanilla Ergo.  Pass a
    ``classifier`` to substitute the executable SybilFuse pipeline for
    the Bernoulli accuracy model.
    """
    gate = classifier if classifier is not None else BernoulliClassifier(accuracy)
    if combined:
        config = ErgoConfig(
            align_estimate_with_purge=True,
            purge_trigger="symdiff",
            purge_gate_c=PURGE_GATE_C,
            classifier=gate,
            **config_overrides,
        )
    else:
        config = ErgoConfig(classifier=gate, **config_overrides)
    label = int(round(accuracy * 100))
    return _named_ergo(f"ERGO-SF({label})", config)
