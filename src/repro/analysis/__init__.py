"""Theory library and reporting utilities.

* :mod:`repro.analysis.bounds` -- closed forms of Theorems 1-4 and the
  GoodJEst envelope (Theorem 2, Lemmas 5/7), used by tests to check
  simulated behaviour against the analysis.
* :mod:`repro.analysis.lower_bound` -- the Theorem 3 lower bound
  Ω(√(TJ) + J) for B1-B3 algorithms.
* :mod:`repro.analysis.plotting` -- text/CSV "figures" (matplotlib is
  unavailable offline).
* :mod:`repro.analysis.stats` -- small statistical helpers.
"""

from repro.analysis.bounds import (
    ergo_spend_rate_bound,
    goodjest_envelope,
    intuition_spend_rate,
)
from repro.analysis.intervals import (
    max_epochs_per_interval,
    max_intervals_per_iteration,
)
from repro.analysis.lower_bound import lower_bound_spend_rate
from repro.analysis.plotting import ascii_loglog_plot, format_table, series_to_csv
from repro.analysis.validation import ValidationReport, validate_run

__all__ = [
    "ValidationReport",
    "ascii_loglog_plot",
    "ergo_spend_rate_bound",
    "format_table",
    "goodjest_envelope",
    "intuition_spend_rate",
    "lower_bound_spend_rate",
    "max_epochs_per_interval",
    "max_intervals_per_iteration",
    "series_to_csv",
    "validate_run",
]
