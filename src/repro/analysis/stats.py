"""Small statistical helpers shared by experiments and tests."""

from __future__ import annotations

import math
from typing import Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("empty sequence")
    total = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values: {value}")
        total += math.log(value)
    return math.exp(total / len(values))


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def log_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) vs log(x).

    Used to check growth exponents: Ergo's spend rate should grow
    ~T^0.5 at large T, CCom's ~T^1.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need >= 2 paired points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    var = sum((a - mean_x) ** 2 for a in lx)
    if var == 0:
        raise ValueError("x values are all equal")
    return cov / var


def max_ratio_spread(values: Sequence[float]) -> float:
    """max/min over positive values (1.0 = perfectly flat)."""
    if not values:
        raise ValueError("empty sequence")
    low = min(values)
    high = max(values)
    if low <= 0:
        raise ValueError("values must be positive")
    return high / low
