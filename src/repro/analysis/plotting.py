"""Text and CSV "figures".

matplotlib is not available in the offline environment, so experiments
emit (a) aligned tables, (b) log-log ASCII plots good enough to eyeball
curve shapes (who wins, where the crossovers are), and (c) CSV series
for external plotting.
"""

from __future__ import annotations

import io
import math
from typing import Dict, List, Optional, Sequence

from repro.resilience import atomic_write_text


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """A fixed-width table with right-aligned numeric columns."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def ascii_loglog_plot(
    series: Dict[str, List[tuple]],
    width: int = 72,
    height: int = 22,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render named (x, y) series on shared log-log axes.

    Each series gets a marker character; points sharing a cell show the
    series that was plotted last.  Zero/negative values are dropped
    (log axes).
    """
    markers = "o*x+#@%&^~"
    points: List[tuple] = []
    cleaned: Dict[str, List[tuple]] = {}
    for name, pts in series.items():
        keep = [(x, y) for x, y in pts if x > 0 and y > 0]
        cleaned[name] = keep
        points.extend(keep)
    if not points:
        return f"{title}\n(no positive data to plot)"
    log_x = [math.log10(x) for x, _ in points]
    log_y = [math.log10(y) for _, y in points]
    x_lo, x_hi = min(log_x), max(log_x)
    y_lo, y_hi = min(log_y), max(log_y)
    x_span = max(x_hi - x_lo, 1e-9)
    y_span = max(y_hi - y_lo, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(cleaned.items()):
        marker = markers[index % len(markers)]
        for x, y in pts:
            col = int((math.log10(x) - x_lo) / x_span * (width - 1))
            row = int((math.log10(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(cleaned)
    )
    out.write(legend + "\n")
    out.write(f"{ylabel}: 1e{y_hi:.1f} (top) .. 1e{y_lo:.1f} (bottom)\n")
    for line in grid:
        out.write("|" + "".join(line) + "\n")
    out.write("+" + "-" * width + "\n")
    out.write(f"{xlabel}: 1e{x_lo:.1f} (left) .. 1e{x_hi:.1f} (right)\n")
    return out.getvalue()


def series_to_csv(
    series: Dict[str, List[tuple]],
    x_name: str = "x",
    path: Optional[str] = None,
) -> str:
    """Serialize named series to ``x,series,y`` CSV (returned; optionally written)."""
    out = io.StringIO()
    out.write(f"{x_name},series,y\n")
    for name, pts in series.items():
        for x, y in pts:
            out.write(f"{x!r},{name},{y!r}\n")
    text = out.getvalue()
    if path is not None:
        atomic_write_text(path, text)
    return text
