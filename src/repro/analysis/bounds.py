"""Closed-form bounds from the paper's analysis.

These are the exact expressions of Theorems 1-2 and the Section 7.1
intuition, with all constants.  Tests compare simulated quantities
against them; experiments annotate results with them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def ergo_spend_rate_bound(
    t_rate: float, j_rate: float, alpha: float = 1.0, beta: float = 1.0
) -> float:
    """Theorem 1's good-spend-rate upper bound (up to the big-O constant).

    ``O(α^{11/2} β^7 √(T(J+1)) + α^{11} β^{14} J)``.
    """
    if t_rate < 0 or j_rate < 0:
        raise ValueError("rates must be non-negative")
    if alpha < 1 or beta < 1:
        raise ValueError("alpha and beta must be >= 1")
    first = alpha ** 5.5 * beta**7 * math.sqrt(t_rate * (j_rate + 1.0))
    second = alpha**11 * beta**14 * j_rate
    return first + second


def intuition_spend_rate(t_rate: float, j_rate: float) -> float:
    """The Section 7.1 balanced-cost expression ``2√(J·T)``.

    "When ξ = J_a/J these two costs are balanced, and the good spend
    rate ... is within a constant factor of 2√(J·T)."
    """
    if t_rate < 0 or j_rate < 0:
        raise ValueError("rates must be non-negative")
    return 2.0 * math.sqrt(j_rate * t_rate)


@dataclass(frozen=True)
class GoodJEstEnvelope:
    """Theorem 2's multiplicative envelope around the true rate ρ."""

    lower_factor: float
    upper_factor: float

    def contains(self, estimate: float, true_rate: float) -> bool:
        if true_rate <= 0:
            return False
        ratio = estimate / true_rate
        return self.lower_factor <= ratio <= self.upper_factor


def goodjest_envelope(alpha: float = 1.0, beta: float = 1.0) -> GoodJEstEnvelope:
    """Theorem 2: ``ρ/(88 α⁴ β³) ≤ J̃ ≤ 1867 α⁴ β⁵ ρ``."""
    if alpha < 1 or beta < 1:
        raise ValueError("alpha and beta must be >= 1")
    return GoodJEstEnvelope(
        lower_factor=1.0 / (88.0 * alpha**4 * beta**3),
        upper_factor=1867.0 * alpha**4 * beta**5,
    )


def interval_estimate_envelope(beta: float = 1.0) -> GoodJEstEnvelope:
    """Lemma 5: within one interval, ``J/21 ≤ J̃ ≤ 210 β² J``."""
    if beta < 1:
        raise ValueError("beta must be >= 1")
    return GoodJEstEnvelope(lower_factor=1.0 / 21.0, upper_factor=210.0 * beta**2)


def entrance_cost_asymmetry(bad_per_window: int) -> tuple[float, float]:
    """Section 7.1's flood arithmetic.

    With x bad joins per ``1/J̃`` window, the adversary pays at least
    ``1 + 2 + ... + x = x(x+1)/2`` per window while the (last-arriving)
    good joiner pays at most ``x + 1``.  Returns ``(adversary, good)``.
    """
    if bad_per_window < 0:
        raise ValueError(f"negative count: {bad_per_window}")
    x = bad_per_window
    return x * (x + 1) / 2.0, float(x + 1)
