"""Empirical validation of the epoch/interval/iteration translation.

The analysis's backbone is a pair of structural lemmas (Figure 7):

* **Lemma 1**: a GoodJEst interval intersects at most two epochs;
* **Lemma 11**: an Ergo iteration intersects at most two intervals.

Both hold under the bad-fraction precondition; this module counts the
intersections on simulated histories so tests and experiments can check
the lemmas *as measured*, not just as proved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.churn.epochs import Epoch
from repro.core.goodjest import IntervalRecord


@dataclass(frozen=True)
class Span:
    """A half-open time span ``[start, end)``."""

    start: float
    end: float

    def intersects(self, other: "Span") -> bool:
        return self.start < other.end and other.start < self.end


def _spans_from_epochs(epochs: Sequence[Epoch]) -> List[Span]:
    spans = []
    for epoch in epochs:
        if epoch.end is None:
            continue
        spans.append(Span(start=epoch.start, end=epoch.end))
    return spans


def _spans_from_intervals(intervals: Sequence[IntervalRecord]) -> List[Span]:
    return [Span(start=i.start, end=i.end) for i in intervals]


def count_intersections(inner: Sequence[Span], outer: Sequence[Span]) -> List[int]:
    """For each inner span, how many outer spans it intersects."""
    counts = []
    for span in inner:
        counts.append(sum(1 for other in outer if span.intersects(other)))
    return counts


def max_epochs_per_interval(
    intervals: Sequence[IntervalRecord], epochs: Sequence[Epoch]
) -> int:
    """Lemma 1's measured quantity (should be ≤ 2).

    Only *completed* epochs are counted; an interval overlapping the
    final, still-open epoch is charged for it as well, matching the
    lemma's statement.
    """
    interval_spans = _spans_from_intervals(intervals)
    epoch_spans = _spans_from_epochs(epochs)
    if not interval_spans:
        return 0
    counts = count_intersections(interval_spans, epoch_spans)
    # Charge intervals extending past the last completed epoch for the
    # open epoch they also touch.
    if epoch_spans:
        horizon = epoch_spans[-1].end
        for index, span in enumerate(interval_spans):
            if span.end > horizon:
                counts[index] += 1
    return max(counts) if counts else 0


def max_intervals_per_iteration(
    iteration_boundaries: Sequence[float],
    intervals: Sequence[IntervalRecord],
) -> int:
    """Lemma 11's measured quantity (should be ≤ 2).

    ``iteration_boundaries`` are the purge times delimiting iterations,
    in increasing order, starting with the bootstrap time.
    """
    if len(iteration_boundaries) < 2:
        return 0
    iteration_spans = [
        Span(start=a, end=b)
        for a, b in zip(iteration_boundaries, iteration_boundaries[1:])
        if b > a
    ]
    interval_spans = _spans_from_intervals(intervals)
    counts = count_intersections(iteration_spans, interval_spans)
    return max(counts) if counts else 0


def interval_epoch_report(
    intervals: Sequence[IntervalRecord], epochs: Sequence[Epoch]
) -> Tuple[int, float]:
    """(max epochs per interval, mean epochs per interval)."""
    interval_spans = _spans_from_intervals(intervals)
    epoch_spans = _spans_from_epochs(epochs)
    if not interval_spans or not epoch_spans:
        return 0, 0.0
    counts = count_intersections(interval_spans, epoch_spans)
    return max(counts), sum(counts) / len(counts)
