"""Theory-vs-measured validation of a simulation run.

Turns a :class:`~repro.sim.engine.SimulationResult` into a verdict
against the paper's guarantees:

* Lemma 9 / Theorem 1 part 1: bad fraction < 3κ;
* Theorem 1 part 2: good spend rate below the (α,β)-parameterized upper
  bound;
* Theorem 3: good spend rate above the Ω(√(TJ)+J) lower bound (only for
  B1-B3 algorithms under the join-and-drop strategy);
* accounting closure: category totals equal party totals.

Experiments attach these verdicts to their reports; tests assert them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.bounds import ergo_spend_rate_bound
from repro.analysis.lower_bound import lower_bound_spend_rate
from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class Check:
    """One validated claim."""

    name: str
    passed: bool
    detail: str


@dataclass
class ValidationReport:
    """All checks for one run."""

    checks: List[Check]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failures(self) -> List[Check]:
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        lines = []
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            lines.append(f"[{status}] {check.name}: {check.detail}")
        return "\n".join(lines)


def validate_run(
    result: SimulationResult,
    kappa: float = 1.0 / 18.0,
    alpha: float = 1.0,
    beta: float = 1.0,
    check_lower_bound: bool = False,
    omega_constant: float = 1.0 / 64.0,
    join_rate: Optional[float] = None,
    big_o_constant: float = 30.0,
    purge_fraction: float = 1.0 / 11.0,
) -> ValidationReport:
    """Validate a finished run against the paper's guarantees.

    ``join_rate`` defaults to the measured good join rate from the run's
    counters.  ``check_lower_bound`` should only be enabled for runs
    driven by the Section 11 join-and-drop adversary.

    The Theorem 1 comparison (a) excludes the one-off initialization
    cost, which the asymptotic statement amortizes away; (b) carries an
    explicit stand-in for the big-O constant; and (c) only applies in
    the theorem's regime -- when a flood burst ``√(2T)`` exceeds one
    purge threshold ``n·purge_fraction``, every burst forces a purge
    cycle and the algorithm is (correctly) linear, outside the bound's
    asymptotic applicability (the theorem assumes n₀ ≥ 6000).
    """
    checks: List[Check] = []
    if join_rate is None:
        joins = result.counters.get("good_join_events", 0)
        join_rate = joins / result.horizon if result.horizon > 0 else 0.0

    bound_3k = 3.0 * kappa
    checks.append(
        Check(
            name="lemma9.bad_fraction",
            passed=result.max_bad_fraction < bound_3k,
            detail=(
                f"max bad fraction {result.max_bad_fraction:.4f} "
                f"vs 3κ = {bound_3k:.4f}"
            ),
        )
    )

    by_category = result.metrics.good.by_category() if result.metrics else {}
    init_cost = by_category.get("init", 0.0)
    steady_rate = max(result.good_spend - init_cost, 0.0) / max(result.horizon, 1e-9)
    upper = big_o_constant * ergo_spend_rate_bound(
        result.adversary_spend_rate, join_rate, alpha=alpha, beta=beta
    )
    burst = math.sqrt(2.0 * max(result.adversary_spend_rate, 0.0))
    threshold = result.final_system_size * purge_fraction
    in_regime = burst <= threshold or result.adversary_spend_rate == 0.0
    if in_regime:
        checks.append(
            Check(
                name="theorem1.upper_bound",
                passed=steady_rate <= upper or upper == 0.0,
                detail=(
                    f"steady A = {steady_rate:.2f}/s vs "
                    f"{big_o_constant:.0f}·bound = {upper:.2f}/s "
                    f"at (α={alpha}, β={beta})"
                ),
            )
        )
    else:
        checks.append(
            Check(
                name="theorem1.upper_bound",
                passed=True,
                detail=(
                    f"skipped: flood burst √(2T)={burst:.0f} exceeds the "
                    f"purge threshold {threshold:.0f} (population too "
                    "small for the asymptotic regime)"
                ),
            )
        )

    if check_lower_bound and join_rate > 0:
        lower = omega_constant * lower_bound_spend_rate(
            result.adversary_spend_rate, join_rate
        )
        checks.append(
            Check(
                name="theorem3.lower_bound",
                passed=result.good_spend_rate >= lower,
                detail=(
                    f"A = {result.good_spend_rate:.2f}/s vs "
                    f"Ω-bound {lower:.2f}/s"
                ),
            )
        )

    category_sum = sum(by_category.values())
    checks.append(
        Check(
            name="accounting.closure",
            passed=abs(category_sum - result.good_spend) < 1e-6 * max(1.0, result.good_spend),
            detail=(
                f"category sum {category_sum:.2f} vs total {result.good_spend:.2f}"
            ),
        )
    )
    return ValidationReport(checks=checks)
