"""The Theorem 3 lower bound for B1-B3 algorithms (Section 11).

Any defense that (B1) prices entry as a function of the good and bad
join rates, (B2) runs iterations delineated by ``a + d ≥ δn``, and (B3)
charges every ID Ω(1) per iteration end, can be forced by the
join-and-drop adversary to spend at rate ``Ω(√(T·J) + J)``, where T is
the *algorithm's* spend rate.  Ergo meets B1-B3, so Theorem 1 is
asymptotically optimal in this class.

:func:`lower_bound_spend_rate` gives the bound's value; the
``experiments.lowerbound`` harness measures Ergo and CCom against it.
"""

from __future__ import annotations

import math


def lower_bound_spend_rate(t_rate: float, j_rate: float) -> float:
    """``√(T·J) + J`` -- the Ω(·) expression with constant 1."""
    if t_rate < 0 or j_rate < 0:
        raise ValueError("rates must be non-negative")
    return math.sqrt(t_rate * j_rate) + j_rate


def optimal_bad_join_rate(t_rate: float, j_rate: float) -> float:
    """The adversary's break-even Sybil join rate ``J_B = √(T·J)``.

    From the Theorem 3 proof: if the entrance cost function satisfies
    ``f(J_B, J) ≤ J_B/J`` the adversary achieves ``J_B ≥ √(TJ)`` (case
    1); otherwise the algorithm's entrance spending alone reaches the
    bound (case 2).  Either way ``√(TJ)`` is the pivotal rate.
    """
    if t_rate < 0 or j_rate < 0:
        raise ValueError("rates must be non-negative")
    return math.sqrt(t_rate * j_rate)


def satisfies_lower_bound(
    measured_spend_rate: float,
    t_rate: float,
    j_rate: float,
    constant: float = 1.0 / 64.0,
) -> bool:
    """Is a measured spend rate consistent with Ω(√(TJ) + J)?

    ``constant`` absorbs the Ω(·); the default is deliberately loose --
    the point of the check is catching defenses that *beat* the bound
    (which would falsify the theorem or reveal an accounting bug).
    """
    return measured_spend_rate >= constant * lower_bound_spend_rate(t_rate, j_rate)
