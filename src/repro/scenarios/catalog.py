"""The scenario registry and the named catalog.

Every entry is a :class:`~repro.scenarios.spec.ScenarioSpec` runnable
against every defense via ``python -m repro scenarios run <name>`` (or
:func:`repro.scenarios.run.run_catalog`).  The shapes come from the
churn/attack workloads the related literature evaluates under: flash
crowds and synchronized exoduses (Tor Sybil characterization), node
failure/recovery cycles (SybilControl), diurnal churn (BitTorrent /
Gnutella measurement studies), and the paper's own steady-state traces.

Register custom scenarios with :func:`register`; the CLI and the runner
resolve names through :func:`get_scenario`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import (
    AttackSchedule,
    DiurnalCycle,
    FlashCrowd,
    MassExodus,
    PartitionRejoin,
    ScenarioSpec,
    SessionSpec,
    Silence,
    SteadyState,
    SybilExodus,
    TraceReplay,
)

CATALOG: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a spec to the catalog (names are unique unless ``replace``)."""
    if not replace and spec.name in CATALOG:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    CATALOG[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown scenario {name!r}; choose from: {known}") from None


def scenario_names() -> List[str]:
    """Catalog names in registration (presentation) order."""
    return list(CATALOG)


# ----------------------------------------------------------------------
# the built-in catalog
# ----------------------------------------------------------------------
register(
    ScenarioSpec(
        name="flash-crowd",
        description=(
            "Steady state, then a coordinated mass join of 3x the "
            "population in 100 s, then the crowd drains through its "
            "sessions.  The headline zero-heap workload."
        ),
        phases=(
            SteadyState(duration=200.0),
            FlashCrowd(duration=100.0, multiplier=3.0),
            SteadyState(duration=300.0),
        ),
        n0=1000,
        sessions=SessionSpec(kind="exponential", mean=600.0),
        attack=AttackSchedule(profile="sustained"),
    )
)

register(
    ScenarioSpec(
        name="diurnal",
        description=(
            "Day/night modulated arrivals (amplitude 0.8, two cycles) "
            "under a sustained attack -- the measurement-study workload."
        ),
        phases=(DiurnalCycle(duration=1200.0, amplitude=0.8, period=600.0),),
        n0=800,
        sessions=SessionSpec(kind="weibull", mean=500.0, shape=0.59),
        attack=AttackSchedule(profile="sustained"),
    )
)

register(
    ScenarioSpec(
        name="mass-exodus",
        description=(
            "Steady state, then 60% of the population departs inside "
            "50 s (correlated failure / network collapse), then the "
            "system recovers.  Stresses GoodJEst under a rate cliff."
        ),
        phases=(
            SteadyState(duration=200.0),
            MassExodus(duration=50.0, fraction=0.6),
            SteadyState(duration=350.0),
        ),
        n0=1200,
        sessions=SessionSpec(kind="exponential", mean=900.0),
        attack=AttackSchedule(profile="sustained"),
    )
)

register(
    ScenarioSpec(
        name="flapping-sybils",
        description=(
            "Steady good churn while the adversary flaps: 100 s attack "
            "windows separated by 100 s of darkness, withdrawing every "
            "standing Sybil at each window close (block-form bad "
            "departures)."
        ),
        phases=(SteadyState(duration=900.0),),
        n0=900,
        sessions=SessionSpec(kind="exponential", mean=700.0),
        attack=AttackSchedule(profile="flapping", on=100.0, off=100.0),
        default_t_rate=256.0,
    )
)

register(
    ScenarioSpec(
        name="tor-relay-replay",
        description=(
            "Replay of a packaged relay up/down trace (18 flapping "
            "relays plus a synchronized burst join and exodus) over a "
            "small steady background population."
        ),
        phases=(
            TraceReplay(path="tor_relay_flap.csv", duration=500.0),
            Silence(duration=100.0),
        ),
        n0=120,
        sessions=SessionSpec(kind="exponential", mean=400.0),
        attack=AttackSchedule(profile="off"),
    )
)

register(
    ScenarioSpec(
        name="consensus-flap",
        description=(
            "Streamed replay of a synthetic consensus-flap trace "
            "(heavy-tailed relay uptimes, diurnal flap rate; generated "
            "on demand by repro.traces, never materialized) over a "
            "steady background population under a sustained attack."
        ),
        phases=(
            TraceReplay(path="synthetic-flap-ci", duration=600.0),
            Silence(duration=60.0),
        ),
        n0=300,
        sessions=SessionSpec(kind="exponential", mean=500.0),
        attack=AttackSchedule(profile="sustained"),
    )
)

register(
    ScenarioSpec(
        name="calm-then-storm",
        description=(
            "A long calm stretch at one fifth of equilibrium churn, "
            "then a simultaneous flash crowd and burst-profile attack "
            "-- the adversary saves its whole budget for the storm."
        ),
        phases=(
            SteadyState(duration=400.0, rate_scale=0.2),
            FlashCrowd(duration=60.0, multiplier=2.0),
            SteadyState(duration=140.0),
        ),
        n0=1000,
        sessions=SessionSpec(kind="exponential", mean=600.0),
        attack=AttackSchedule(profile="burst", burst_period=120.0),
        default_t_rate=512.0,
    )
)

register(
    ScenarioSpec(
        name="partition-rejoin",
        description=(
            "Half the network partitions away for 200 s and rejoins in "
            "one 10 s wave; the defense must not misread the partition "
            "as low churn nor the rejoin wave as an attack."
        ),
        phases=(
            SteadyState(duration=200.0),
            PartitionRejoin(away=200.0, fraction=0.5),
            SteadyState(duration=180.0),
        ),
        n0=1000,
        sessions=SessionSpec(kind="exponential", mean=800.0),
        attack=AttackSchedule(profile="sustained"),
    )
)

register(
    ScenarioSpec(
        name="sybil-collapse",
        description=(
            "The adversary floods greedily, then withdraws everything "
            "in four scheduled block-form batches (synchronized Sybil "
            "exodus) while good churn stays steady."
        ),
        phases=(
            SteadyState(duration=300.0),
            SybilExodus(duration=30.0, batches=4),
            SteadyState(duration=270.0),
        ),
        n0=800,
        sessions=SessionSpec(kind="exponential", mean=600.0),
        attack=AttackSchedule(profile="sustained", end=300.0),
        default_t_rate=256.0,
    )
)
