"""Compile a :class:`~repro.scenarios.spec.ScenarioSpec` to churn blocks.

The compiler walks the spec's phase timeline with a running time cursor
and a coarse population estimate, emitting

* time-sorted :class:`~repro.sim.blocks.ChurnBlock` batches for all good
  churn (so every scenario rides the engine's zero-heap fast path -- the
  phase compilers reuse the vectorized generators
  :func:`~repro.churn.generators.poisson_join_blocks` /
  :func:`~repro.churn.generators.modulated_join_blocks`), and
* scheduled :class:`~repro.sim.events.BadDepartureBatch` events for
  adversarial exoduses (one heap entry per batch, never per ID).

The population estimate is deliberately simple (joins add, departures
subtract, steady phases hold) -- it only sizes fraction-based phases and
resolves equilibrium rates; the simulation itself tracks the true
population.  Everything is derived from the one ``rng`` stream handed
in, so a (spec, seed) pair compiles to a bit-identical workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.churn.generators import (
    diurnal_rate,
    modulated_join_blocks,
    poisson_join_blocks,
)
from repro.churn.sessions import (
    EquilibriumResidualSampler,
    SessionDistribution,
    sample_session_array,
)
from repro.churn.traces import InitialMember, SortedPeakJoins, load_trace_csv
from repro.traces.reader import TraceBlockStream
from repro.traces.source import PACKAGED_DATA_DIR, resolve_trace
from repro.scenarios.spec import (
    DiurnalCycle,
    FlashCrowd,
    MassExodus,
    PartitionRejoin,
    ScenarioSpec,
    Silence,
    SteadyState,
    SybilExodus,
    TraceReplay,
)
from repro.sim.blocks import DEPART, JOIN, ChurnBlock, blocks_from_events
from repro.sim.events import BadDepartureBatch, Event, GoodDeparture, GoodJoin

#: Packaged trace data (``TraceReplay`` relative paths resolve here);
#: shared with the :mod:`repro.traces` registry.
DATA_DIR = PACKAGED_DATA_DIR


@dataclass
class CompiledScenario:
    """A runnable workload: what the simulation engine consumes.

    ``blocks`` holds the time-sorted good churn as a list of *parts*:
    materialized :class:`~repro.sim.blocks.ChurnBlock` batches
    interleaved with lazy
    :class:`~repro.traces.reader.TraceBlockStream` segments (streaming
    ``TraceReplay`` phases).  Consumers iterate :meth:`iter_blocks`,
    which flattens both shapes into one lazy block stream -- a lazy
    segment is parsed from disk only as the engine (or the summary)
    walks past it, so trace length never bounds memory.
    """

    spec: ScenarioSpec
    horizon: float
    initial: List[InitialMember]
    #: churn parts: ``ChurnBlock`` batches and lazy trace segments
    blocks: List
    #: events to push into the queue before run() (Sybil exoduses)
    scheduled: List[Event] = dataclass_field(default_factory=list)
    #: compile-time anomalies (e.g. fraction phases clamped at small
    #: ``--n0-scale``), surfaced through :meth:`summary` and the CLI
    warnings: List[str] = dataclass_field(default_factory=list)

    def iter_blocks(self):
        """One lazy, time-sorted block stream over all churn parts."""
        for part in self.blocks:
            if isinstance(part, ChurnBlock):
                yield part
            else:
                yield from part

    def summary(self) -> dict:
        """Workload-shape statistics (trace side only, defense-free).

        Streams: lazy trace segments are re-read block by block, so the
        summary of a million-event replay costs one bounded-memory pass
        over the file, not a materialization.
        """
        joins = 0
        departures = 0
        # Compiled block streams are globally time-sorted (enforced by
        # ``_check_sorted``), which is exactly the tracker's contract.
        peak = SortedPeakJoins()
        for block in self.iter_blocks():
            kinds = block.kinds
            block_joins = int(np.count_nonzero(kinds == JOIN))
            joins += block_joins
            departures += len(block) - block_joins
            # Peak join rate: max joins falling into any 1-second bin.
            if block_joins:
                peak.add_block(block.times[kinds == JOIN])
        return {
            "horizon": self.horizon,
            "initial_members": len(self.initial),
            "good_joins": joins,
            "good_departures": departures,
            "peak_join_rate": peak.result(),
            "scheduled_bad_departure_batches": len(self.scheduled),
            "warnings": list(self.warnings),
        }


class _Compiler:
    """Single-pass phase walker (one instance per compile call)."""

    def __init__(
        self,
        spec: ScenarioSpec,
        rng: np.random.Generator,
        sessions: SessionDistribution,
        n0: int,
    ) -> None:
        self.spec = spec
        self.rng = rng
        self.sessions = sessions
        self.now = 0.0
        #: coarse population estimate (sizes fraction-based phases)
        self.pop = float(n0)
        self.blocks: List = []
        self.scheduled: List[Event] = []
        self.warnings: List[str] = []
        #: set once a streaming TraceReplay has been compiled: its join
        #: count is unknown without a full pass, so the population
        #: estimate excludes it and later pop-sized phases get a warning
        self._streamed_replay = False
        self._streamed_pop_warned = False

    # -- helpers -------------------------------------------------------
    def equilibrium_rate(self) -> float:
        return max(self.pop, 1.0) / self.sessions.mean()

    def fraction_count(self, fraction: float, phase_name: str) -> int:
        """Size a fraction-based phase against the population estimate.

        ``int(round(fraction * pop))`` reaches 0 under small
        ``--n0-scale``, silently turning exodus/partition phases into
        no-ops; a positive fraction of a non-empty population is clamped
        to at least one member, and the clamp is reported through the
        compile warnings so scaled-down runs stay interpretable.
        """
        count = int(round(fraction * self.pop))
        if count == 0 and fraction > 0.0 and self.pop >= 1.0:
            self.warnings.append(
                f"{phase_name}: fraction {fraction:g} of estimated "
                f"population {self.pop:.1f} rounds to 0; clamped to 1"
            )
            count = 1
        return count

    def emit(self, blocks) -> int:
        """Collect a block stream; returns the number of rows emitted."""
        rows = 0
        for block in blocks:
            if len(block):
                self.blocks.append(block)
                rows += len(block)
        return rows

    def join_burst(self, count: int, start: float, duration: float) -> int:
        """``count`` joins with sessions, uniform over the window."""
        if count <= 0:
            return 0
        width = max(duration, 1e-9)
        times = np.sort(self.rng.uniform(start, start + width, size=count))
        self.blocks.append(
            ChurnBlock(
                times,
                np.full(count, JOIN, dtype=np.uint8),
                sessions=sample_session_array(self.sessions, self.rng, count),
            )
        )
        return count

    def departure_burst(self, count: int, start: float, duration: float) -> int:
        """``count`` anonymous departures, uniform over the window."""
        if count <= 0:
            return 0
        width = max(duration, 1e-9)
        times = np.sort(self.rng.uniform(start, start + width, size=count))
        self.blocks.append(
            ChurnBlock(times, np.full(count, DEPART, dtype=np.uint8))
        )
        return count

    def _pop_dependent(self, phase) -> bool:
        """Does compiling ``phase`` read the population estimate?"""
        if isinstance(phase, SteadyState):
            return phase.rate is None
        if isinstance(phase, DiurnalCycle):
            return phase.base_rate is None
        if isinstance(phase, FlashCrowd):
            return phase.joins is None
        if isinstance(phase, MassExodus):
            return phase.count is None and phase.fraction > 0.0
        return isinstance(phase, PartitionRejoin)

    # -- phase compilers ----------------------------------------------
    def compile_phase(self, phase) -> None:
        start = self.now
        if (
            self._streamed_replay
            and not self._streamed_pop_warned
            and self._pop_dependent(phase)
        ):
            self.warnings.append(
                f"{type(phase).__name__}: sized from a population estimate "
                "that excludes joins from earlier streaming TraceReplay "
                "phases (use streaming=False to have replayed joins "
                "counted)"
            )
            self._streamed_pop_warned = True
        if isinstance(phase, SteadyState):
            rate = (
                phase.rate
                if phase.rate is not None
                else self.equilibrium_rate() * phase.rate_scale
            )
            self.emit(
                poisson_join_blocks(
                    rate=rate,
                    session_dist=self.sessions,
                    rng=self.rng,
                    horizon=start + phase.duration,
                    start=start,
                )
            )
            self.now = start + phase.duration
        elif isinstance(phase, FlashCrowd):
            joins = (
                phase.joins
                if phase.joins is not None
                else int(round(phase.multiplier * self.pop))
            )
            rate = joins / max(phase.duration, 1e-9)
            emitted = self.emit(
                poisson_join_blocks(
                    rate=rate,
                    session_dist=self.sessions,
                    rng=self.rng,
                    horizon=start + phase.duration,
                    start=start,
                )
            )
            self.pop += emitted
            self.now = start + phase.duration
        elif isinstance(phase, DiurnalCycle):
            base = (
                phase.base_rate
                if phase.base_rate is not None
                else self.equilibrium_rate()
            )
            rate_fn = diurnal_rate(base, phase.amplitude, period=phase.period)
            self.emit(
                modulated_join_blocks(
                    rate_fn=rate_fn,
                    max_rate=base * (1.0 + phase.amplitude),
                    session_dist=self.sessions,
                    rng=self.rng,
                    horizon=start + phase.duration,
                    start=start,
                )
            )
            self.now = start + phase.duration
        elif isinstance(phase, MassExodus):
            count = (
                phase.count
                if phase.count is not None
                else self.fraction_count(phase.fraction, "MassExodus")
            )
            self.departure_burst(count, start, phase.duration)
            self.pop = max(self.pop - count, 0.0)
            self.now = start + phase.duration
        elif isinstance(phase, PartitionRejoin):
            count = self.fraction_count(phase.fraction, "PartitionRejoin")
            self.departure_burst(count, start, phase.exodus_window)
            rejoin_at = start + phase.exodus_window + phase.away
            self.join_burst(count, rejoin_at, phase.rejoin_window)
            self.now = start + phase.duration
        elif isinstance(phase, Silence):
            self.now = start + phase.duration
        elif isinstance(phase, TraceReplay):
            self.compile_replay(phase, start)
            self.now = start + phase.duration
        elif isinstance(phase, SybilExodus):
            step = phase.duration / phase.batches
            if phase.count is None:
                # "Withdraw everything": sized at fire time, in equal
                # shares of the then-standing population -- fractions
                # 1/n, 1/(n-1), ..., 1 drain it all by the last batch.
                # (A precomputed huge count would collapse the staged
                # exodus into the first batch.)
                for i in range(phase.batches):
                    self.scheduled.append(
                        BadDepartureBatch(
                            time=start + i * step,
                            count=0,
                            drain_fraction=1.0 / (phase.batches - i),
                        )
                    )
            else:
                per_batch = max(phase.count // phase.batches, 1)
                for i in range(phase.batches):
                    self.scheduled.append(
                        BadDepartureBatch(
                            time=start + i * step, count=per_batch
                        )
                    )
            self.now = start + phase.duration
        else:  # pragma: no cover - spec validation rejects these earlier
            raise TypeError(f"unknown phase type: {type(phase).__name__}")

    def compile_replay(self, phase: TraceReplay, start: float) -> None:
        """Lower a trace-replay phase: lazy block stream or eager load.

        ``phase.path`` is resolved through the :mod:`repro.traces`
        registry (names, packaged fixtures, plain paths).  The default
        streaming form appends a re-iterable
        :class:`~repro.traces.reader.TraceBlockStream` part -- the file
        is parsed only when the engine (or the summary) consumes it, so
        replay memory is bounded by the block size, not the trace.  The
        eager form (``streaming=False``) keeps the historical
        load-sort-pack behavior and feeds the population estimate.
        """
        path = resolve_trace(phase.path)
        if phase.streaming is not False:
            part = TraceBlockStream(
                path,
                start=start,
                time_scale=phase.time_scale,
                duration=phase.duration,
            )
            if not part.empty:
                self.blocks.append(part)
                self._streamed_replay = True
            return
        events = load_trace_csv(path)
        if not events:
            return
        events.sort(key=lambda e: e.time)
        origin = events[0].time
        shifted: List[Event] = []
        joins = 0
        for event in events:
            t = (event.time - origin) * phase.time_scale
            if t > phase.duration:
                break
            if isinstance(event, GoodJoin):
                shifted.append(
                    GoodJoin(
                        time=start + t, ident=event.ident, session=event.session
                    )
                )
                joins += 1
            else:
                shifted.append(GoodDeparture(time=start + t, ident=event.ident))
        self.emit(blocks_from_events(shifted))
        # Replayed departures name explicit replay idents, so they do
        # not shrink the anonymous background population estimate.
        self.pop += joins


def compile_scenario(
    spec: ScenarioSpec,
    rng: np.random.Generator,
    n0_scale: float = 1.0,
) -> CompiledScenario:
    """Materialize a spec into a runnable, deterministic workload.

    ``n0_scale`` scales the initial population; every population-derived
    quantity (equilibrium rates, fraction-based exodus sizes, flash
    crowd multipliers) follows automatically, so ``--quick`` runs are
    shape-preserving miniatures of the full scenario.
    """
    if n0_scale <= 0:
        raise ValueError(f"n0_scale must be positive: {n0_scale}")
    sessions = spec.sessions.build()
    n0 = max(int(round(spec.n0 * n0_scale)), 1)
    if spec.equilibrium:
        draw = EquilibriumResidualSampler(sessions).sample
    else:
        draw = sessions.sample
    initial = [
        InitialMember(ident=f"{spec.name}-init-{i}", residual=draw(rng))
        for i in range(n0)
    ]
    compiler = _Compiler(spec, rng, sessions, n0)
    for phase in spec.phases:
        compiler.compile_phase(phase)
    _check_sorted(compiler.blocks, spec.name)
    return CompiledScenario(
        spec=spec,
        horizon=compiler.now,
        initial=initial,
        blocks=compiler.blocks,
        scheduled=sorted(compiler.scheduled, key=lambda e: e.time),
        warnings=compiler.warnings,
    )


def _check_sorted(blocks: Sequence, name: str) -> None:
    """Phases compile sequentially, so parts must chain in time order.

    Lazy trace segments are checked by their bounds (phase start and
    ``start + duration``) -- the streaming reader enforces monotonicity
    *within* a segment and clips at the duration, so the bounds are
    exact without reading the file.
    """
    last = float("-inf")
    for part in blocks:
        if not isinstance(part, ChurnBlock):
            if part.t_begin < last:
                raise ValueError(
                    f"scenario {name!r} compiled out of order: trace "
                    f"segment starting at {part.t_begin} follows time {last}"
                )
            last = max(last, part.t_end_bound)
            continue
        if len(part) == 0:
            continue
        if part.times[0] < last:
            raise ValueError(
                f"scenario {name!r} compiled out of order: block starting at "
                f"{part.times[0]} follows time {last}"
            )
        last = float(part.times[-1])
