"""Run catalog scenarios against the defense suite.

One scenario x defense x seed triple is a :class:`ScenarioPointSpec` --
a frozen, picklable coordinate, like the figure sweeps' ``PointSpec`` --
and :func:`run_scenario_point` is the module-level worker entry, so the
catalog fans out over :func:`repro.experiments.parallel.parallel_map`
with the same determinism story: per-point seeds derived by SHA-256 from
the run seed and the point coordinates, results collected in submission
order.  Same seed, same machine => byte-identical metrics JSON.

Each run reports a flat metrics row: spend totals and rates, the peak
bad fraction, workload shape (peak join rate, joins/departures) and
path accounting (fraction of good joins applied through the engine's
zero-heap fast path).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.adversary.schedule import ScheduledAdversary, periodic_windows
from repro.adversary.strategies import BurstyJoinAdversary, GreedyJoinAdversary
from repro.baselines.ccom import CCom
from repro.baselines.remp import Remp
from repro.baselines.sybilcontrol import SybilControl
from repro.core.ergo import Ergo, ErgoConfig
from repro.core.protocol import Defense
from repro.experiments.config import KAPPA
from repro.experiments.parallel import derive_seed, map_report
from repro.experiments.runner import adversary_for
from repro.profiling import ProfilePolicy, ProfileReport
from repro.scenarios.catalog import get_scenario, scenario_names
from repro.scenarios.compile import compile_scenario
from repro.scenarios.spec import AttackSchedule, ScenarioSpec
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.metrics import SnapshotPolicy
from repro.sim.null_defense import NullDefense
from repro.sim.rng import RngRegistry

#: The defense suite every scenario runs against, in report order.
SCENARIO_DEFENSES = ("ERGO", "CCOM", "SybilControl", "REMP", "Null")

#: REMP's provisioning assumption (matches the Figure 8 setup).
REMP_T_MAX = 1.0e7


def build_defense(name: str) -> Defense:
    """Construct one of the five suite defenses by report name."""
    if name == "ERGO":
        return Ergo(ErgoConfig(kappa=KAPPA))
    if name == "CCOM":
        return CCom(ErgoConfig(kappa=KAPPA))
    if name == "SybilControl":
        return SybilControl()
    if name == "REMP":
        return Remp(t_max=REMP_T_MAX, kappa=KAPPA)
    if name == "Null":
        return NullDefense()
    known = ", ".join(SCENARIO_DEFENSES)
    raise KeyError(f"unknown defense {name!r}; choose from: {known}")


def build_adversary(
    schedule: AttackSchedule,
    t_rate: float,
    defense: Defense,
    horizon: float,
) -> Optional[Adversary]:
    """Materialize an attack schedule for one run."""
    if schedule.profile == "off" or t_rate <= 0:
        return None
    start = schedule.start
    end = schedule.end if schedule.end is not None else horizon
    if schedule.profile == "flapping":
        return ScheduledAdversary(
            GreedyJoinAdversary(rate=t_rate),
            periodic_windows(schedule.on, schedule.off, start, end),
            withdraw_on_close=True,
        )
    if schedule.profile == "burst":
        inner: Adversary = BurstyJoinAdversary(
            rate=t_rate, burst_period=schedule.burst_period
        )
    else:  # sustained: the defense-appropriate strongest attack
        inner = adversary_for(defense, t_rate)
        if inner is None:
            return None
    if start > 0 or end < horizon:
        return ScheduledAdversary(inner, [(start, end)])
    return inner


@dataclass(frozen=True)
class ScenarioPointSpec:
    """One picklable (scenario, defense) run coordinate."""

    scenario: str
    defense: str
    seed: int
    t_rate: float
    n0_scale: float = 1.0


def resolve_t_rate(spec: ScenarioSpec, override: Optional[float]) -> float:
    """CLI override > schedule's pinned rate > the spec default."""
    if override is not None:
        return float(override)
    if spec.attack.t_rate is not None:
        return float(spec.attack.t_rate)
    return float(spec.default_t_rate)


def run_spec_point(
    spec: ScenarioSpec,
    point: ScenarioPointSpec,
    churn_fast_path: Optional[bool] = None,
    snapshot_policy: Optional[SnapshotPolicy] = None,
    on_snapshot: Optional[Callable] = None,
    profile: Optional[ProfilePolicy] = None,
) -> Dict:
    """Simulate one (spec, defense) coordinate; returns a flat row.

    This is the registry-free core of :func:`run_scenario_point`:
    benchmarks and equivalence tests hand it unregistered specs (and an
    explicit engine-path override for fast-vs-heap A/B runs).  The
    compiled churn is consumed through
    :meth:`~repro.scenarios.compile.CompiledScenario.iter_blocks`, so
    streaming ``TraceReplay`` phases flow to the engine lazily.

    ``snapshot_policy`` + ``on_snapshot`` turn on the engine's
    incremental telemetry; ``profile`` turns on span-level cost
    attribution, delivered as a ``"profile"`` key on the row.  The
    metrics keys of the returned row are byte-identical either way
    (the engine's determinism contract).
    """
    rngs = RngRegistry(seed=point.seed)
    compiled = compile_scenario(
        spec, rngs.stream(f"scenario.{spec.name}"), n0_scale=point.n0_scale
    )
    defense = build_defense(point.defense)
    adversary = build_adversary(
        spec.attack, point.t_rate, defense, compiled.horizon
    )
    sim = Simulation(
        SimulationConfig(
            horizon=compiled.horizon,
            seed=point.seed,
            churn_fast_path=churn_fast_path,
            snapshots=snapshot_policy,
            profile=profile,
        ),
        defense,
        compiled.iter_blocks(),
        adversary=adversary,
        rngs=rngs,
        initial_members=compiled.initial,
        on_snapshot=on_snapshot,
    )
    for event in compiled.scheduled:
        sim.queue.push(event)
    result = sim.run()
    counters = result.counters
    joins = counters.get("good_join_events", 0)
    fast_joins = counters.get("good_joins_fast", 0)
    shape = compiled.summary()
    row = {
        "scenario": point.scenario,
        "defense": point.defense,
        "seed": point.seed,
        "t_rate": point.t_rate,
        "n0_scale": point.n0_scale,
        "horizon": compiled.horizon,
        "initial_members": shape["initial_members"],
        "good_joins": joins,
        "good_departures": counters.get("good_departure_events", 0),
        "bad_departures": counters.get("bad_departure_events", 0),
        "sybil_withdrawals": counters.get("sybil_withdrawals", 0),
        "peak_join_rate": shape["peak_join_rate"],
        "good_spend": result.good_spend,
        "good_spend_rate": result.good_spend_rate,
        "adversary_spend": result.adversary_spend,
        "adversary_spend_rate": result.adversary_spend_rate,
        "max_bad_fraction": result.max_bad_fraction,
        "final_size": result.final_system_size,
        "fast_join_fraction": fast_joins / joins if joins else 0.0,
        "churn_events_fast": counters.get("churn_events_fast", 0),
        "churn_events_heap": counters.get("churn_events_heap", 0),
        "queue_max_size": counters.get("queue_max_size", 0),
        "compile_warnings": shape["warnings"],
    }
    if sim.profiler is not None:
        # Rides the row itself so the per-point breakdown flows through
        # the same checkpoint/journal/persistence channels as the
        # metrics.  Determinism comparisons pop this key first.
        row["profile"] = sim.profiler.report().as_dict()
    return row


def run_scenario_point(point: ScenarioPointSpec) -> Dict:
    """Simulate one catalog (scenario, defense) coordinate."""
    return run_spec_point(get_scenario(point.scenario), point)


def run_scenario_point_profiled(point: ScenarioPointSpec) -> Dict:
    """Profiling variant of :func:`run_scenario_point` (picklable)."""
    return run_spec_point(
        get_scenario(point.scenario), point, profile=ProfilePolicy()
    )


def run_scenario_point_live(
    point: ScenarioPointSpec,
    snapshot_interval: float,
    profile: bool = False,
    emit_snapshot: Optional[Callable] = None,
) -> Dict:
    """Snapshot-emitting variant of :func:`run_scenario_point`.

    Module-level (hence picklable) worker entry used by
    :func:`run_catalog` when telemetry is requested: the runtime calls
    it with ``emit_snapshot`` wired to the live/collected delivery
    channel (see :func:`repro.experiments.runtime.run_tasks`).  The
    returned row's metrics keys are byte-identical to the
    snapshot-free run; ``profile=True`` additionally attaches the
    span breakdown.
    """
    return run_spec_point(
        get_scenario(point.scenario),
        point,
        snapshot_policy=SnapshotPolicy(sim_interval=float(snapshot_interval)),
        on_snapshot=emit_snapshot,
        profile=ProfilePolicy() if profile else None,
    )


def build_points(
    scenarios: Sequence[str],
    defenses: Sequence[str],
    seed: int,
    t_rate: Optional[float] = None,
    n0_scale: float = 1.0,
) -> List[ScenarioPointSpec]:
    """The scenario-major, defense-minor grid of run coordinates."""
    points: List[ScenarioPointSpec] = []
    for scenario_name in scenarios:
        spec = get_scenario(scenario_name)
        rate = resolve_t_rate(spec, t_rate)
        for defense in defenses:
            points.append(
                ScenarioPointSpec(
                    scenario=scenario_name,
                    defense=defense,
                    seed=derive_seed(seed, scenario_name, defense, rate),
                    t_rate=rate,
                    n0_scale=n0_scale,
                )
            )
    return points


def run_catalog(
    scenarios: Optional[Sequence[str]] = None,
    defenses: Sequence[str] = SCENARIO_DEFENSES,
    seed: int = 2021,
    t_rate: Optional[float] = None,
    n0_scale: float = 1.0,
    jobs: int = 1,
    policy=None,
    on_row=None,
    snapshot_interval: Optional[float] = None,
    on_snapshot=None,
    profile: bool = False,
) -> Dict:
    """Run scenarios x defenses and collect the metrics report.

    ``policy`` (an :class:`~repro.experiments.runtime.ExecutionPolicy`)
    enables retries, per-point timeouts, checkpoint/resume and fault
    injection.  Points that fail permanently are dropped from ``rows``
    and surface as structured ``failures`` entries instead.

    This is the job-sized entry point the simulation service executes
    (:mod:`repro.serve`): ``on_row(index, row)`` fires on the
    coordinator as each point completes (or is restored by
    ``policy.resume``), so rows can be persisted incrementally instead
    of only in the returned report.

    ``snapshot_interval`` (simulated seconds, > 0) turns on intra-point
    telemetry: each point also streams incremental
    :class:`~repro.sim.metrics.MetricsSnapshot` rows to
    ``on_snapshot(index, snapshot)`` on the coordinator -- live under
    ``jobs=1``, batched per completed point under a process pool.  The
    metrics keys of the report are byte-identical either way.

    ``profile=True`` (or ``policy.profile``) runs every point with
    span-level cost attribution: each row carries a ``"profile"``
    breakdown and the report grows a ``"profile"`` rollup summing span
    totals across points.
    """
    names = list(scenarios) if scenarios is not None else scenario_names()
    points = build_points(names, defenses, seed, t_rate, n0_scale)
    profile = profile or bool(getattr(policy, "profile", False))
    if snapshot_interval is not None:
        report = map_report(
            run_scenario_point_live,
            [(p, float(snapshot_interval), profile) for p in points],
            jobs=jobs,
            star=True,
            policy=policy,
            on_row=on_row,
            on_snapshot=on_snapshot,
        )
    elif profile:
        report = map_report(
            run_scenario_point_profiled,
            points,
            jobs=jobs,
            policy=policy,
            on_row=on_row,
        )
    else:
        report = map_report(
            run_scenario_point, points, jobs=jobs, policy=policy, on_row=on_row
        )
    out = {
        "seed": seed,
        "n0_scale": n0_scale,
        "scenarios": names,
        "defenses": list(defenses),
        "rows": report.completed,
        "failures": [f.as_dict() for f in report.failures],
        "resumed": report.resumed,
        "retries": report.retries,
        "pool_rebuilds": report.pool_rebuilds,
    }
    if profile:
        out["profile"] = aggregate_profiles(report.completed)
    return out


def aggregate_profiles(rows: Sequence[Dict]) -> Dict:
    """Sum per-row span breakdowns into one sweep-level rollup."""
    return ProfileReport.merged(
        row["profile"] for row in rows if isinstance(row.get("profile"), dict)
    ).as_dict()


def report_json(report: Dict) -> str:
    """Deterministic serialization (sorted keys, fixed separators)."""
    return json.dumps(report, indent=2, sort_keys=True)
