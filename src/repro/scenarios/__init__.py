"""Declarative scenario & workload subsystem.

The paper's guarantees hold "despite churn" -- this package makes churn
*programmable*.  A :class:`~repro.scenarios.spec.ScenarioSpec` describes
a workload as a timeline of phases (steady state, flash crowd, diurnal
cycle, mass exodus, partition-and-rejoin, trace replay, Sybil exodus)
plus an attack schedule (sustained / burst / flapping profiles);
:mod:`~repro.scenarios.compile` lowers it to struct-of-arrays
:class:`~repro.sim.blocks.ChurnBlock` batches so every scenario rides
the engine's zero-heap fast path; :mod:`~repro.scenarios.catalog` names
ready-made scenarios; and :mod:`~repro.scenarios.run` sweeps them across
the defense suite with the shared process-pool executor.

Entry points::

    python -m repro scenarios list
    python -m repro scenarios run flash-crowd --quick

or, as a library::

    from repro.scenarios import compile_scenario, get_scenario, run_catalog
"""

from repro.scenarios.catalog import (
    CATALOG,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios.compile import CompiledScenario, compile_scenario
from repro.scenarios.run import (
    SCENARIO_DEFENSES,
    ScenarioPointSpec,
    build_adversary,
    build_defense,
    run_catalog,
    run_scenario_point,
    run_spec_point,
)
from repro.scenarios.spec import (
    AttackSchedule,
    DiurnalCycle,
    FlashCrowd,
    MassExodus,
    PartitionRejoin,
    ScenarioSpec,
    SessionSpec,
    Silence,
    SteadyState,
    SybilExodus,
    TraceReplay,
)

__all__ = [
    "AttackSchedule",
    "CATALOG",
    "CompiledScenario",
    "DiurnalCycle",
    "FlashCrowd",
    "MassExodus",
    "PartitionRejoin",
    "SCENARIO_DEFENSES",
    "ScenarioPointSpec",
    "ScenarioSpec",
    "SessionSpec",
    "Silence",
    "SteadyState",
    "SybilExodus",
    "TraceReplay",
    "build_adversary",
    "build_defense",
    "compile_scenario",
    "get_scenario",
    "register",
    "run_catalog",
    "run_scenario_point",
    "run_spec_point",
    "scenario_names",
]
