"""Declarative scenario specifications.

A :class:`ScenarioSpec` is pure data: a timeline of **phases** (steady
state, flash crowd, diurnal cycle, mass exodus, partition-and-rejoin,
trace replay, silence, Sybil exodus) plus an :class:`AttackSchedule`
describing when and how the adversary spends.  Specs are frozen
dataclasses -- picklable, hashable, comparable -- so sweep workers can
rebuild a scenario from its spec and a seed with no closures involved.

The semantics live in :mod:`repro.scenarios.compile`, which turns a spec
into struct-of-arrays :class:`~repro.sim.blocks.ChurnBlock` batches (so
every scenario rides the engine's zero-heap fast path) plus scheduled
:class:`~repro.sim.events.BadDepartureBatch` events for adversarial
exoduses.  Named, ready-made specs live in
:mod:`repro.scenarios.catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.churn.sessions import (
    ExponentialSessions,
    LogNormalSessions,
    SessionDistribution,
    WeibullSessions,
)

#: Attack profiles an :class:`AttackSchedule` understands.
ATTACK_PROFILES = ("off", "sustained", "burst", "flapping")


@dataclass(frozen=True)
class SessionSpec:
    """A picklable description of a session-time distribution.

    ``kind`` selects the family; ``mean`` is the mean session length in
    seconds.  For ``weibull`` the ``shape`` parameter is honored (scale
    is solved from the mean); ``lognormal`` uses ``sigma``.
    """

    kind: str = "exponential"
    mean: float = 600.0
    shape: float = 0.6
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("exponential", "weibull", "lognormal"):
            raise ValueError(f"unknown session kind: {self.kind!r}")
        if self.mean <= 0:
            raise ValueError(f"mean session must be positive: {self.mean}")

    def build(self) -> SessionDistribution:
        if self.kind == "weibull":
            import math

            scale = self.mean / math.gamma(1.0 + 1.0 / self.shape)
            return WeibullSessions(shape=self.shape, scale_seconds=scale)
        if self.kind == "lognormal":
            import math

            mu = math.log(self.mean) - self.sigma**2 / 2.0
            return LogNormalSessions(mu=mu, sigma=self.sigma)
        return ExponentialSessions(mean_seconds=self.mean)


# ----------------------------------------------------------------------
# phases
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SteadyState:
    """Poisson joins at a steady rate with sessions from the spec.

    ``rate=None`` resolves to the M/G/∞ equilibrium rate for the
    compiler's current population estimate (``pop / E[session]``), so
    the system hovers around its size; ``rate_scale`` then scales that
    (0.2 = a calm stretch at one fifth of equilibrium churn).
    """

    duration: float
    rate: Optional[float] = None
    rate_scale: float = 1.0


@dataclass(frozen=True)
class FlashCrowd:
    """A coordinated mass join: ``joins`` arrivals in ``duration`` seconds.

    ``joins=None`` resolves to ``multiplier ×`` the compiler's current
    population estimate, so catalog entries scale with ``n0_scale``.
    Arrivals are Poisson at the implied burst rate; every joiner carries
    a session, so the crowd drains naturally afterwards.
    """

    duration: float
    joins: Optional[int] = None
    multiplier: float = 3.0


@dataclass(frozen=True)
class DiurnalCycle:
    """Day/night modulated joins: ``base·(1 + amplitude·sin(2πt/period))``.

    ``base_rate=None`` resolves to the equilibrium rate, like
    :class:`SteadyState`.  The period defaults to a *simulation-scaled*
    day (600 s) rather than 86,400 s so short scenario runs still sweep
    full cycles; pass ``period=86_400.0`` for wall-clock days.
    """

    duration: float
    amplitude: float = 0.8
    period: float = 600.0
    base_rate: Optional[float] = None

    def __post_init__(self) -> None:
        # diurnal_rate's own bound, surfaced at spec construction so an
        # invalid amplitude fails here, not mid-compile.
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1): {self.amplitude}")
        if self.period <= 0:
            raise ValueError(f"period must be positive: {self.period}")


@dataclass(frozen=True)
class MassExodus:
    """A synchronized collapse: departures of present good IDs.

    ``count=None`` resolves to ``fraction ×`` the compiler's population
    estimate.  Departure instants are uniform over the window (sorted);
    victims are anonymous, i.e. chosen uniformly at random by the
    defense, per the ABC model's departure rule.
    """

    duration: float
    fraction: float = 0.5
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {self.fraction}")


@dataclass(frozen=True)
class PartitionRejoin:
    """A network partition: a cohort drops out, stays away, rejoins.

    Compiles to a :class:`MassExodus`-shaped departure burst over
    ``exodus_window``, ``away`` seconds of silence, then the same number
    of joins (with fresh sessions) over ``rejoin_window``.
    """

    away: float
    fraction: float = 0.5
    exodus_window: float = 10.0
    rejoin_window: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {self.fraction}")

    @property
    def duration(self) -> float:
        return self.exodus_window + self.away + self.rejoin_window


@dataclass(frozen=True)
class Silence:
    """No good churn at all for ``duration`` seconds (quiet stretch)."""

    duration: float


@dataclass(frozen=True)
class TraceReplay:
    """Replay a ``save_trace_csv``-format trace as one phase.

    ``path`` is a **trace ref** resolved through the
    :mod:`repro.traces` registry: a registered source name (packaged
    fixture, cached URL, or on-demand synthetic trace), a filename in
    the packaged scenario data directory, or a filesystem path
    (``.gz`` compressed traces included).

    Event times are interpreted relative to the trace's first event,
    scaled by ``time_scale`` and shifted to the phase start; events past
    ``duration`` are dropped (a shorter trace simply ends early, leaving
    the rest of the window quiet).

    ``streaming`` selects how the trace reaches the engine.  The
    default (``None`` = streaming) hands the compiler a lazy
    :class:`~repro.traces.reader.TraceBlockStream`: blocks are parsed
    on demand in bounded memory, so multi-million-event consensus
    traces replay without ever materializing per-event objects --
    byte-identical results to the eager path, which requires a
    time-sorted trace.  ``streaming=False`` keeps the historical eager
    load (tolerates unsorted files by sorting in memory).
    """

    path: str
    duration: float
    time_scale: float = 1.0
    streaming: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.time_scale <= 0:
            raise ValueError(f"time_scale must be positive: {self.time_scale}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")


@dataclass(frozen=True)
class SybilExodus:
    """A scheduled adversarial mass withdrawal, in block form.

    Compiles to :class:`~repro.sim.events.BadDepartureBatch` events --
    ``batches`` of them spread over the window -- rather than per-object
    heap events.  ``count=None`` withdraws everything standing (the
    batch is capped by the live Sybil population at fire time).
    """

    duration: float = 0.0
    count: Optional[int] = None
    batches: int = 1

    def __post_init__(self) -> None:
        if self.batches < 1:
            raise ValueError(f"need at least one batch: {self.batches}")


#: Everything a spec timeline may contain.
Phase = Union[
    SteadyState,
    FlashCrowd,
    DiurnalCycle,
    MassExodus,
    PartitionRejoin,
    Silence,
    TraceReplay,
    SybilExodus,
]


# ----------------------------------------------------------------------
# attack schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttackSchedule:
    """When and how the adversary spends its rate-``T`` budget.

    Profiles:

    * ``off`` -- no adversary at all;
    * ``sustained`` -- the defense-appropriate always-on attack (greedy
      flooder, or the maintenance adversary against recurring-cost
      defenses), optionally windowed to ``[start, end)``;
    * ``burst`` -- saves budget and floods every ``burst_period``
      seconds (stresses window pricing);
    * ``flapping`` -- ``on`` seconds attacking / ``off`` seconds dark,
      withdrawing the whole standing Sybil population at every window
      close (the relay-flapping workload).

    ``t_rate=None`` defers to the runner's ``--t-rate`` (or the spec's
    ``default_t_rate``).  ``end=None`` means the scenario horizon.
    """

    profile: str = "off"
    t_rate: Optional[float] = None
    burst_period: float = 60.0
    on: float = 60.0
    off: float = 60.0
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.profile not in ATTACK_PROFILES:
            raise ValueError(
                f"unknown attack profile {self.profile!r}; "
                f"choose from {ATTACK_PROFILES}"
            )


# ----------------------------------------------------------------------
# the spec itself
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A named, declarative workload: population + phases + attack."""

    name: str
    description: str
    phases: Tuple[Phase, ...]
    n0: int = 1000
    sessions: SessionSpec = field(default_factory=SessionSpec)
    attack: AttackSchedule = field(default_factory=AttackSchedule)
    #: T used when neither the schedule nor the runner pins one.
    default_t_rate: float = 64.0
    #: initial members get equilibrium residual lifetimes (steady state)
    equilibrium: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.n0 < 1:
            raise ValueError(f"n0 must be at least 1: {self.n0}")
        if not self.phases:
            raise ValueError(f"scenario {self.name!r} has no phases")
        for phase in self.phases:
            if not isinstance(phase, Phase.__args__):
                raise TypeError(
                    f"scenario {self.name!r}: {type(phase).__name__} is not a phase"
                )

    @property
    def horizon(self) -> float:
        """Total simulated time implied by the phase durations."""
        return float(sum(phase.duration for phase in self.phases))
