"""``python -m repro scenarios`` -- the scenario subsystem CLI.

Usage::

    python -m repro scenarios list
    python -m repro scenarios run <name> [<name> ...] [options]
    python -m repro scenarios run --all [options]

Options:
    --defense NAME   restrict to one or more defenses (repeatable;
                     default: all of ERGO, CCOM, SybilControl, REMP, Null)
    --seed N         run seed (default 2021); per-point seeds derive from it
    --t-rate T       override every scenario's adversary spend rate
    --n0-scale X     scale initial populations (and everything derived)
    --quick          preset: --n0-scale 0.25 (the CI smoke scale)
    --jobs N         worker processes (default: all cores)
    --json PATH      also write the metrics report to PATH
    --progress       stream live per-point progress lines to stderr
                     (engine snapshots; see EXPERIMENTS.md,
                     "Observability")
    --profile        attribute wall time per engine span: each row
                     carries a per-point breakdown and the report gains
                     a sweep-level span rollup (see EXPERIMENTS.md,
                     "Cost attribution"); metrics stay byte-identical
    --snapshot-interval S
                     simulated seconds between progress snapshots
                     (default 1.0; implies nothing without --progress)

Resilience options (see EXPERIMENTS.md, "Resilient execution"):
    --resume             skip points journaled by a previous (killed or
                         failed) run of the same sweep
    --no-checkpoint      disable the per-run checkpoint journal
    --max-retries N      attempts beyond the first per point (default 2)
    --point-timeout S    per-point wall clock limit (parallel runs only)
    --fault-spec SPEC    deterministic fault injection, e.g.
                         "crash@0;hang@3:20;raise@0x5f;slow@*:0.1x2"

The metrics report (per scenario x defense row: spend rates, peak bad
fraction, peak join rate, fast-path fraction, ...) always lands in
``results/scenarios.json`` (written atomically); stdout gets a compact
table.  Points that fail permanently are listed in the report's
``failures`` array and the exit status is 1.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.plotting import format_table
from repro.cliutil import pop_multi as _pop_multi, pop_option as _pop_option
from repro.experiments import runtime
from repro.experiments.parallel import parse_jobs
from repro.experiments.report import results_path
from repro.resilience import atomic_write_text
from repro.scenarios.catalog import CATALOG, get_scenario, scenario_names
from repro.scenarios.run import (
    SCENARIO_DEFENSES,
    report_json,
    resolve_t_rate,
    run_catalog,
)

#: ``--quick`` population scale (the smoke-test miniature).
QUICK_N0_SCALE = 0.25

#: Default simulated seconds between ``--progress`` snapshots.
DEFAULT_SNAPSHOT_INTERVAL = 1.0

#: Minimum wall seconds between ``--progress`` lines (terminal
#: snapshots always print, so every point reports at least once).
PROGRESS_MIN_WALL_S = 0.1


def progress_printer(
    labels: Sequence[Tuple[str, str]],
    stream=None,
    min_wall_s: float = PROGRESS_MIN_WALL_S,
    clock: Callable[[], float] = time.monotonic,  # lint: allow[R001] -- stderr progress throttle; injectable for tests
) -> Callable:
    """An ``on_snapshot(index, snapshot)`` hook that narrates a run.

    ``labels`` maps point index -> ``(scenario, defense)`` in the same
    scenario-major, defense-minor order :func:`~repro.scenarios.run.
    build_points` uses.  Lines are wall-clock throttled so a fast sweep
    does not flood the terminal; terminal (``last=True``) snapshots
    always print.
    """
    stream = stream if stream is not None else sys.stderr
    state = {"next": 0.0}

    def on_snapshot(index: int, snap) -> None:
        now = clock()
        if not snap.last and now < state["next"]:
            return
        state["next"] = now + min_wall_s
        scenario, defense = labels[index]
        tag = "done" if snap.last else f"t={snap.sim_time:.0f}"
        print(
            f"[{scenario}/{defense}] {tag} n={snap.system_size}"
            f" bad={snap.bad_fraction:.3f}"
            f" adv_rate={snap.adversary_spend_rate:.1f}"
            f" ev/s={snap.events_per_sec:.0f}",
            file=stream,
            flush=True,
        )

    return on_snapshot


def _list_catalog() -> str:
    rows = []
    for name in scenario_names():
        spec = CATALOG[name]
        rows.append(
            [
                name,
                spec.n0,
                f"{spec.horizon:.0f}s",
                spec.attack.profile,
                spec.description,
            ]
        )
    return format_table(
        ["scenario", "n0", "horizon", "attack", "description"], rows
    )


def _report_table(report: Dict) -> str:
    rows = []
    for row in report["rows"]:
        rows.append(
            [
                row["scenario"],
                row["defense"],
                row["t_rate"],
                row["good_spend_rate"],
                row["adversary_spend_rate"],
                row["max_bad_fraction"],
                row["peak_join_rate"],
                f"{row['fast_join_fraction']:.1%}",
            ]
        )
    return format_table(
        [
            "scenario",
            "defense",
            "T",
            "A",
            "adv_rate",
            "max_bad",
            "peak_joins/s",
            "fast_joins",
        ],
        rows,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, args = args[0], args[1:]
    if command == "list":
        print(_list_catalog())
        return 0
    if command != "run":
        print(f"unknown scenarios command {command!r}; use 'list' or 'run'")
        return 2
    jobs = parse_jobs(args)
    _pop_option(args, "--jobs")
    policy = runtime.cli_policy(args, name="scenarios")
    run_all = "--all" in args
    args = [a for a in args if a != "--all"]
    quick = "--quick" in args
    args = [a for a in args if a != "--quick"]
    progress = "--progress" in args
    args = [a for a in args if a != "--progress"]
    profile = "--profile" in args
    args = [a for a in args if a != "--profile"]
    snap_interval_opt = _pop_option(args, "--snapshot-interval")
    defenses = _pop_multi(args, "--defense") or list(SCENARIO_DEFENSES)
    unknown_defenses = [d for d in defenses if d not in SCENARIO_DEFENSES]
    if unknown_defenses:
        raise SystemExit(
            f"unknown defense(s): {', '.join(unknown_defenses)}; "
            f"choose from: {', '.join(SCENARIO_DEFENSES)}"
        )
    seed_opt = _pop_option(args, "--seed")
    t_rate_opt = _pop_option(args, "--t-rate")
    n0_scale_opt = _pop_option(args, "--n0-scale")
    json_path = _pop_option(args, "--json")
    names = [a for a in args if not a.startswith("--")]
    unknown_flags = [a for a in args if a.startswith("--")]
    if unknown_flags:
        raise SystemExit(f"unknown option(s): {', '.join(unknown_flags)}")
    if run_all or not names:
        names = scenario_names()
    for name in names:
        try:
            get_scenario(name)  # fail fast, with the known-names message
        except KeyError as exc:
            raise SystemExit(exc.args[0])
    n0_scale = float(n0_scale_opt) if n0_scale_opt else (
        QUICK_N0_SCALE if quick else 1.0
    )
    snapshot_interval = None
    on_snapshot = None
    if progress:
        snapshot_interval = (
            float(snap_interval_opt)
            if snap_interval_opt
            else DEFAULT_SNAPSHOT_INTERVAL
        )
        if snapshot_interval <= 0:
            raise SystemExit("--snapshot-interval must be > 0")
        labels = [(s, d) for s in names for d in defenses]
        on_snapshot = progress_printer(labels)
    with runtime.exit_on_interrupt():
        report = run_catalog(
            scenarios=names,
            defenses=defenses,
            seed=int(seed_opt) if seed_opt else 2021,
            t_rate=float(t_rate_opt) if t_rate_opt else None,
            n0_scale=n0_scale,
            jobs=jobs,
            policy=policy,
            snapshot_interval=snapshot_interval,
            on_snapshot=on_snapshot,
            profile=profile,
        )
    text = report_json(report)
    out_path = results_path("scenarios.json")
    atomic_write_text(out_path, text + "\n")
    if json_path:
        atomic_write_text(json_path, text + "\n")
    print(_report_table(report))
    warnings = sorted(
        {
            f"{row['scenario']}: {warning}"
            for row in report["rows"]
            for warning in row.get("compile_warnings", ())
        }
    )
    for warning in warnings:
        print(f"warning: {warning}")
    print(f"\nmetrics JSON: {out_path}")
    failures = report.get("failures", [])
    if failures:
        print(f"\n{len(failures)} point(s) failed after retries:")
        print(
            format_table(
                ["#", "point", "attempts", "error", "last_attempt_s"],
                [
                    [
                        f["index"],
                        f["point"],
                        f["attempts"],
                        f["error"],
                        f["duration_s"],
                    ]
                    for f in failures
                ],
            )
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
