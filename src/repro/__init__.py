"""repro: a reproduction of "Bankrupting Sybil Despite Churn".

Gupta, Saia, Young -- ICDCS 2021 (extended version arXiv:2010.06834).

The package implements the paper's Sybil defense **Ergo**, its good-
join-rate estimator **GoodJEst**, the **ABC churn model**, the baseline
defenses it is evaluated against (CCom, SybilControl, REMP), classifier
gating (ERGO-SF), a committee-based decentralization, and the full
evaluation harness regenerating Figures 8-10.

Quickstart::

    import repro

    network = repro.churn.NETWORKS["gnutella"]
    rngs = repro.RngRegistry(seed=1)
    scenario = network.scenario(horizon=2000.0, rng=rngs.stream("churn"))
    defense = repro.Ergo()
    adversary = repro.GreedyJoinAdversary(rate=1000.0)
    sim = repro.Simulation(
        repro.SimulationConfig(horizon=2000.0),
        defense,
        scenario.events,
        adversary=adversary,
        rngs=rngs,
        initial_members=scenario.initial,
    )
    result = sim.run()
    print(result.good_spend_rate, result.adversary_spend_rate)
    assert result.max_bad_fraction < 1 / 6
"""

from repro import (
    adversary,
    analysis,
    applications,
    baselines,
    churn,
    classifier,
    committee,
    core,
    sim,
)
from repro.adversary import (
    BurstyJoinAdversary,
    GreedyJoinAdversary,
    MaintenanceAdversary,
    PassiveAdversary,
    PersistentFractionAdversary,
    PurgeSurvivorAdversary,
)
from repro.baselines import CCom, Remp, SybilControl
from repro.classifier import BernoulliClassifier, GraphClassifier
from repro.core import Defense, Ergo, ErgoConfig, GoodJEst, ergo_ch1, ergo_ch2, ergo_sf
from repro.sim import RngRegistry, Simulation, SimulationConfig

__version__ = "1.0.0"

__all__ = [
    "BernoulliClassifier",
    "BurstyJoinAdversary",
    "CCom",
    "Defense",
    "Ergo",
    "ErgoConfig",
    "GoodJEst",
    "GraphClassifier",
    "GreedyJoinAdversary",
    "MaintenanceAdversary",
    "PassiveAdversary",
    "PersistentFractionAdversary",
    "PurgeSurvivorAdversary",
    "Remp",
    "RngRegistry",
    "Simulation",
    "SimulationConfig",
    "SybilControl",
    "adversary",
    "analysis",
    "applications",
    "baselines",
    "churn",
    "classifier",
    "committee",
    "core",
    "ergo_ch1",
    "ergo_ch2",
    "ergo_sf",
    "sim",
]
