"""Identity and membership substrate.

Implements the paper's bookkeeping assumptions (Section 2.1.1):

* every joining ID receives a globally unique name (a join-event counter
  is concatenated to the name the ID chose) -- :mod:`repro.identity.ids`;
* the server/committee maintains the membership set and can compute the
  symmetric difference against past snapshots incrementally --
  :mod:`repro.identity.membership`;
* departures are detectable, either announced or inferred from missing
  heartbeat messages -- :mod:`repro.identity.heartbeat`.
"""

from repro.identity.heartbeat import HeartbeatMonitor
from repro.identity.ids import IdentityFactory
from repro.identity.membership import MembershipSet, SymmetricDifferenceTracker

__all__ = [
    "HeartbeatMonitor",
    "IdentityFactory",
    "MembershipSet",
    "SymmetricDifferenceTracker",
]
