"""Membership sets with O(1) incremental symmetric-difference tracking.

Both GoodJEst and the ABC model's epochs are defined in terms of the
symmetric difference between the current membership set and a past
snapshot:

* GoodJEst updates its estimate when ``|S(t') △ S(t)| ≥ (5/12)|S(t')|``
  over *all* IDs (Figure 5);
* an epoch ends when the symmetric difference of the *good* sets exceeds
  half the good population at the epoch start (Section 2.1.2).

Recomputing ``|A △ B|`` from scratch is O(n) per event, and even taking
an O(n) snapshot at each interval/iteration boundary is ruinous: against
CCom at T = 2^20 the simulation executes on the order of 10^7 purges.
:class:`SymmetricDifferenceTracker` therefore works with *serial
watermarks*: every member is stamped with a monotonically increasing
join serial, a snapshot is just the serial watermark at reset time, and

* ``snapshot_present``  = members with serial ≤ watermark still present,
* ``departed``          = snapshot members that left,
* ``|S_now − S_snap|``  = current size − snapshot_present,
* ``|S_snap − S_now|``  = departed,

all maintained in O(1) per event with O(1) resets.  This exploits the
fact that joining IDs are always brand new (unique names, Section
2.1.1): an ID that joins after the snapshot and then departs cancels out
of the symmetric difference automatically -- exactly the subtlety the
paper highlights in Section 8.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np


@dataclass(slots=True)
class Member:
    """One ID currently in the system.

    ``slots=True``: one ``Member`` is allocated per good join, millions
    of times per sweep, so the dict-free layout measurably cheapens the
    membership hot path.
    """

    ident: str
    is_good: bool
    joined_at: float
    serial: int = 0


class SymmetricDifferenceTracker:
    """Tracks ``|S_now △ S_snapshot|`` against a serial watermark.

    Owned by a :class:`MembershipSet`, which feeds it joins/departures
    and its current size.
    """

    def __init__(self) -> None:
        self._watermark = 0
        self._snapshot_present = 0
        self._departed = 0
        self._current_size = 0

    def reset(self, current_size: int, watermark: int) -> None:
        """Take a new snapshot: everyone present right now is in it."""
        self._watermark = watermark
        self._snapshot_present = current_size
        self._departed = 0
        self._current_size = current_size

    def on_join(self, member: Member) -> None:
        if member.serial <= self._watermark:
            raise ValueError(
                f"member {member.ident!r} joined with a stale serial; "
                "serials must increase monotonically"
            )
        self._current_size += 1

    def on_depart(self, member: Member) -> None:
        self._current_size -= 1
        if member.serial <= self._watermark:
            # A snapshot member left: grows |S_snap − S_now|.
            self._snapshot_present -= 1
            self._departed += 1
        # Post-snapshot members joining then leaving cancel out.

    @property
    def symmetric_difference(self) -> int:
        """``|S_now △ S_snapshot|``."""
        joined_since = self._current_size - self._snapshot_present
        return joined_since + self._departed

    @property
    def snapshot_size(self) -> int:
        """Size of the snapshot when it was taken (present + departed)."""
        return self._snapshot_present + self._departed

    @property
    def joined_since_snapshot(self) -> int:
        """``|S_now − S_snapshot|``: post-snapshot joiners still present."""
        return self._current_size - self._snapshot_present

    @property
    def departed_from_snapshot(self) -> int:
        """``|S_snapshot − S_now|``: snapshot members that left."""
        return self._departed


class MembershipSet:
    """The server's view of who is in the system.

    Supports O(1) joins/removals, O(1) uniform random selection of a
    good ID (the ABC model's departure rule), and any number of attached
    O(1)-per-event :class:`SymmetricDifferenceTracker` views.
    """

    def __init__(self) -> None:
        self._members: Dict[str, Member] = {}
        self._good_list: List[str] = []
        self._good_index: Dict[str, int] = {}
        self._bad: set = set()
        self._trackers: Dict[str, SymmetricDifferenceTracker] = {}
        self._serial = 0

    # -- tracker plumbing --------------------------------------------------
    def attach_tracker(self, name: str, tracker: SymmetricDifferenceTracker) -> None:
        tracker.reset(len(self._members), self._serial)
        self._trackers[name] = tracker

    def tracker(self, name: str) -> SymmetricDifferenceTracker:
        return self._trackers[name]

    def reset_tracker(self, name: str) -> None:
        self._trackers[name].reset(len(self._members), self._serial)

    def sym_diff(self, name: str) -> int:
        return self._trackers[name].symmetric_difference

    # -- mutation ----------------------------------------------------------
    def add(self, ident: str, is_good: bool, now: float) -> Member:
        if ident in self._members:
            raise ValueError(f"duplicate ID {ident!r}")
        self._serial += 1
        member = Member(
            ident=ident, is_good=is_good, joined_at=now, serial=self._serial
        )
        self._members[ident] = member
        if is_good:
            self._good_index[ident] = len(self._good_list)
            self._good_list.append(ident)
        else:
            self._bad.add(ident)
        if self._trackers:
            for tracker in self._trackers.values():
                tracker.on_join(member)
        return member

    def remove(self, ident: str) -> Optional[Member]:
        """Remove ``ident`` if present; return the member or ``None``."""
        member = self._members.pop(ident, None)
        if member is None:
            return None
        if member.is_good:
            self._remove_good(ident)
        else:
            self._bad.discard(ident)
        if self._trackers:
            for tracker in self._trackers.values():
                tracker.on_depart(member)
        return member

    def _remove_good(self, ident: str) -> None:
        idx = self._good_index.pop(ident)
        last = self._good_list.pop()
        if last != ident:
            self._good_list[idx] = last
            self._good_index[last] = idx

    # -- queries -----------------------------------------------------------
    def __contains__(self, ident: str) -> bool:
        return ident in self._members

    def __len__(self) -> int:
        return len(self._members)

    def get(self, ident: str) -> Optional[Member]:
        return self._members.get(ident)

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def good_count(self) -> int:
        return len(self._good_list)

    @property
    def bad_count(self) -> int:
        return len(self._bad)

    @property
    def last_serial(self) -> int:
        return self._serial

    def bad_fraction(self) -> float:
        if not self._members:
            return 0.0
        return len(self._bad) / len(self._members)

    def good_ids(self) -> List[str]:
        return list(self._good_list)

    def bad_ids(self) -> List[str]:
        return list(self._bad)

    def all_ids(self) -> List[str]:
        return list(self._members)

    def members(self) -> Iterable[Member]:
        return self._members.values()

    def random_good(self, rng: np.random.Generator) -> Optional[str]:
        """A good ID selected uniformly at random, or ``None`` if empty.

        This implements the ABC model's rule that the adversary schedules
        *when* a good departure happens but cannot choose *which* good ID
        departs (Section 2).
        """
        if not self._good_list:
            return None
        idx = int(rng.integers(0, len(self._good_list)))
        return self._good_list[idx]
