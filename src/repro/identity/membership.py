"""Membership sets with O(1) incremental symmetric-difference tracking.

Both GoodJEst and the ABC model's epochs are defined in terms of the
symmetric difference between the current membership set and a past
snapshot:

* GoodJEst updates its estimate when ``|S(t') △ S(t)| ≥ (5/12)|S(t')|``
  over *all* IDs (Figure 5);
* an epoch ends when the symmetric difference of the *good* sets exceeds
  half the good population at the epoch start (Section 2.1.2).

Recomputing ``|A △ B|`` from scratch is O(n) per event, and even taking
an O(n) snapshot at each interval/iteration boundary is ruinous: against
CCom at T = 2^20 the simulation executes on the order of 10^7 purges.
:class:`SymmetricDifferenceTracker` therefore works with *serial
watermarks*: every member is stamped with a monotonically increasing
join serial, a snapshot is just the serial watermark at reset time, and

* ``snapshot_present``  = members with serial ≤ watermark still present,
* ``departed``          = snapshot members that left,
* ``|S_now − S_snap|``  = current size − snapshot_present,
* ``|S_snap − S_now|``  = departed,

all maintained in O(1) per event with O(1) resets.  This exploits the
fact that joining IDs are always brand new (unique names, Section
2.1.1): an ID that joins after the snapshot and then departs cancels out
of the symmetric difference automatically -- exactly the subtlety the
paper highlights in Section 8.1.

Two interchangeable storage backends implement the same public API:

* :class:`ArenaMembershipSet` (the default) -- a slot-interned
  **arena**: idents are interned to integer slot indices, per-member
  fields live in parallel slot-indexed arrays (``is_good`` /
  ``joined_at`` / ``serial``), freed slots are recycled through a
  free-list, and the good population is a dense slot array supporting
  O(1) uniform selection.  Whole-run batch mutators
  (:meth:`~ArenaMembershipSet.add_batch` /
  :meth:`~ArenaMembershipSet.remove_batch`) replace the per-member
  allocation and bookkeeping that dominated the engine's block fast
  path, which is what makes 10^6-ID populations simulable in seconds.
* :class:`DictMembershipSet` -- the original dict-of-:class:`Member`
  layout, kept as the reference backend for A/B equivalence tests.

Both backends apply identical mutations in identical order (including
the swap-remove order of the dense good list), so a simulation produces
byte-identical metrics under either -- enforced by
``tests/test_membership_backends.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


@dataclass(slots=True)
class Member:
    """One ID currently in the system.

    Under the arena backend this is a *view* constructed on demand by
    ``get()`` / ``remove()`` / ``members()``; the live state is in the
    arena's parallel arrays.  Under the dict backend it is the storage
    itself (``slots=True`` keeps the layout dict-free).
    """

    ident: str
    is_good: bool
    joined_at: float
    serial: int = 0


class SymmetricDifferenceTracker:
    """Tracks ``|S_now △ S_snapshot|`` against a serial watermark.

    Owned by a membership set, which feeds it join/departure *serials*
    (not members: the arena backend never materializes a ``Member`` on
    the hot path) and its current size.
    """

    def __init__(self) -> None:
        self._watermark = 0
        self._snapshot_present = 0
        self._departed = 0
        self._current_size = 0

    def reset(self, current_size: int, watermark: int) -> None:
        """Take a new snapshot: everyone present right now is in it."""
        self._watermark = watermark
        self._snapshot_present = current_size
        self._departed = 0
        self._current_size = current_size

    def on_join(self, serial: int) -> None:
        if serial <= self._watermark:
            raise ValueError(
                f"join with stale serial {serial}; "
                "serials must increase monotonically"
            )
        self._current_size += 1

    def on_depart(self, serial: int) -> None:
        self._current_size -= 1
        if serial <= self._watermark:
            # A snapshot member left: grows |S_snap − S_now|.
            self._snapshot_present -= 1
            self._departed += 1
        # Post-snapshot members joining then leaving cancel out.

    # -- batch feeds (whole-run mutators) ----------------------------------
    def on_join_batch(self, count: int, first_serial: int) -> None:
        """``count`` joins with serials starting at ``first_serial``."""
        if first_serial <= self._watermark:
            raise ValueError(
                f"join with stale serial {first_serial}; "
                "serials must increase monotonically"
            )
        self._current_size += count

    def on_depart_batch(self, serials) -> None:
        """A run of departures, given the serials of the removed members."""
        watermark = self._watermark
        if len(serials) > 256:
            below = int(
                np.count_nonzero(np.asarray(serials, dtype=np.int64) <= watermark)
            )
        else:
            below = 0
            for serial in serials:
                if serial <= watermark:
                    below += 1
        self._current_size -= len(serials)
        self._snapshot_present -= below
        self._departed += below

    @property
    def symmetric_difference(self) -> int:
        """``|S_now △ S_snapshot|``."""
        joined_since = self._current_size - self._snapshot_present
        return joined_since + self._departed

    @property
    def snapshot_size(self) -> int:
        """Size of the snapshot when it was taken (present + departed)."""
        return self._snapshot_present + self._departed

    @property
    def joined_since_snapshot(self) -> int:
        """``|S_now − S_snapshot|``: post-snapshot joiners still present."""
        return self._current_size - self._snapshot_present

    @property
    def departed_from_snapshot(self) -> int:
        """``|S_snapshot − S_now|``: snapshot members that left."""
        return self._departed


class ArenaMembershipSet:
    """The server's membership view, stored as a slot-interned arena.

    Idents are interned to integer *slots*; ``is_good`` / ``joined_at``
    / ``serial`` live in parallel slot-indexed arrays; freed slots are
    recycled through a LIFO free-list; and the good population is a
    dense slot array (``_good_slots`` + per-slot position index) giving
    O(1) uniform random selection and O(1) swap-removal -- in exactly
    the same positional order as the dict backend's good list, so
    ``random_good`` draws are backend-independent.

    The parallel arrays are CPython lists rather than numpy buffers: the
    engine's real workload mixes whole-run batches with single-row
    mutations (run lengths of 5-10 are typical once session departures
    interleave), and list slice-assignment gives the batch mutators
    C-level fills while keeping scalar reads/writes ~4x cheaper than
    numpy element access.  Numpy enters for the aggregate math (tracker
    batch updates, the window counter) where whole-array operations pay.

    Supports O(1) joins/removals, O(1) uniform random selection of a
    good ID (the ABC model's departure rule), any number of attached
    O(1)-per-event :class:`SymmetricDifferenceTracker` views, and
    whole-run batch mutators (:meth:`add_batch` / :meth:`remove_batch`)
    for the engine's block fast path.
    """

    def __init__(self) -> None:
        self._slot_of: Dict[str, int] = {}
        self._idents: List[Optional[str]] = []
        self._serials: List[int] = []
        self._joined: List[float] = []
        self._good_flags: List[bool] = []
        #: dense array of good slots (append order == dict backend's
        #: good list) + slot-indexed positions for swap-removal
        self._good_slots: List[int] = []
        self._good_pos: List[int] = []
        self._free: List[int] = []
        self._bad_count = 0
        self._trackers: Dict[str, SymmetricDifferenceTracker] = {}
        self._tracker_list: List[SymmetricDifferenceTracker] = []
        self._serial = 0

    # -- tracker plumbing --------------------------------------------------
    def attach_tracker(self, name: str, tracker: SymmetricDifferenceTracker) -> None:
        tracker.reset(len(self._slot_of), self._serial)
        self._trackers[name] = tracker
        self._tracker_list = list(self._trackers.values())

    def tracker(self, name: str) -> SymmetricDifferenceTracker:
        return self._trackers[name]

    def reset_tracker(self, name: str) -> None:
        self._trackers[name].reset(len(self._slot_of), self._serial)

    def sym_diff(self, name: str) -> int:
        return self._trackers[name].symmetric_difference

    # -- mutation ----------------------------------------------------------
    def add(self, ident: str, is_good: bool, now: float) -> None:
        if ident in self._slot_of:
            raise ValueError(f"duplicate ID {ident!r}")
        self._add_unchecked(ident, is_good, now)
        if self._tracker_list:
            serial = self._serial
            for tr in self._tracker_list:
                tr.on_join(serial)

    def _add_unchecked(self, ident: str, is_good: bool, now: float) -> None:
        """``add`` minus the duplicate check and tracker feed (batch use)."""
        serial = self._serial + 1
        self._serial = serial
        free = self._free
        if free:
            slot = free.pop()
            self._idents[slot] = ident
            self._serials[slot] = serial
            self._joined[slot] = now
            self._good_flags[slot] = is_good
        else:
            slot = len(self._idents)
            self._idents.append(ident)
            self._serials.append(serial)
            self._joined.append(now)
            self._good_flags.append(is_good)
            self._good_pos.append(-1)
        self._slot_of[ident] = slot
        if is_good:
            self._good_pos[slot] = len(self._good_slots)
            self._good_slots.append(slot)
        else:
            self._bad_count += 1

    def add_batch(self, idents: Sequence[str], is_good: bool, times) -> None:
        """Add a run of brand-new members (parallel ``idents``/``times``).

        Observably equivalent to calling :meth:`add` row by row: serials
        are assigned in order, the good list grows in ident order, and
        trackers see one aggregated update.  Slot *indices* may differ
        from the per-row path when the free-list is non-empty, but slots
        are not observable through the public API.
        """
        k = len(idents)
        if k == 0:
            return
        if k == 1:
            # Single-row runs (steady-state interleave) skip the batch
            # machinery; ``add`` performs the same checks and feeds.
            self.add(idents[0], is_good, times[0])
            return
        slot_of = self._slot_of
        if not slot_of.keys().isdisjoint(idents):
            for ident in idents:
                if ident in slot_of:
                    raise ValueError(f"duplicate ID {ident!r}")
        if len(set(idents)) != k:
            # Checked *before* mutating: an intra-batch duplicate must
            # not leave a ghost slot behind the raised error.
            raise ValueError("duplicate ident within one add_batch call")
        if isinstance(times, np.ndarray):
            times = times.tolist()
        serial0 = self._serial
        free = self._free
        reuse = len(free)
        if reuse >= k:
            # Fully recycled: per-row stores into scattered slots.
            for ident, t in zip(idents, times):
                self._add_unchecked(ident, is_good, t)
        else:
            if reuse:
                for ident, t in zip(idents[:reuse], times[:reuse]):
                    self._add_unchecked(ident, is_good, t)
                idents_tail = idents[reuse:]
                times_tail = times[reuse:]
                kk = k - reuse
            else:
                idents_tail = idents
                times_tail = times
                kk = k
            # Contiguous tail: C-level extends, one zip interning pass.
            a = len(self._idents)
            b = a + kk
            s0 = self._serial
            self._serial = s0 + kk
            self._idents.extend(idents_tail)
            self._serials.extend(range(s0 + 1, s0 + kk + 1))
            self._joined.extend(times_tail)
            self._good_flags.extend([is_good] * kk)
            slot_of.update(zip(idents_tail, range(a, b)))
            if is_good:
                n = len(self._good_slots)
                self._good_pos.extend(range(n, n + kk))
                self._good_slots.extend(range(a, b))
            else:
                self._good_pos.extend([-1] * kk)
                self._bad_count += kk
        if self._tracker_list:
            for tr in self._tracker_list:
                tr.on_join_batch(k, serial0 + 1)

    def _release_slot(self, slot: int) -> None:
        """Detach ``slot`` from the good list / bad count and recycle it."""
        if self._good_flags[slot]:
            good_slots = self._good_slots
            pos = self._good_pos[slot]
            last_slot = good_slots.pop()
            if last_slot != slot:
                good_slots[pos] = last_slot
                self._good_pos[last_slot] = pos
        else:
            self._bad_count -= 1
        self._idents[slot] = None
        self._free.append(slot)

    def remove(self, ident: str) -> Optional[Member]:
        """Remove ``ident`` if present; return a member view or ``None``."""
        slot = self._slot_of.pop(ident, None)
        if slot is None:
            return None
        member = Member(
            ident=ident,
            is_good=self._good_flags[slot],
            joined_at=self._joined[slot],
            serial=self._serials[slot],
        )
        self._release_slot(slot)
        if self._tracker_list:
            for tr in self._tracker_list:
                tr.on_depart(member.serial)
        return member

    def discard(self, ident: str) -> bool:
        """Remove ``ident`` if present without building a member view."""
        slot = self._slot_of.pop(ident, None)
        if slot is None:
            return False
        serial = self._serials[slot]
        self._release_slot(slot)
        if self._tracker_list:
            for tr in self._tracker_list:
                tr.on_depart(serial)
        return True

    def remove_batch(self, idents: Sequence[str]) -> int:
        """Remove a run of named members; absent idents are no-ops.

        Returns the number actually removed.  Swap-removals happen in
        ident order, exactly as sequential :meth:`remove` calls would,
        so the dense good list ends in the identical permutation (and
        later ``random_good`` draws are unaffected by batching).
        Trackers see one aggregated update per run.
        """
        if len(idents) == 1:
            return 1 if self.discard(idents[0]) else 0
        pop = self._slot_of.pop
        track = bool(self._tracker_list)
        serials: List[int] = []
        track_serial = serials.append
        removed = 0
        all_serials = self._serials
        all_idents = self._idents
        good_flags = self._good_flags
        good_slots = self._good_slots
        good_pos = self._good_pos
        free_slot = self._free.append
        for ident in idents:
            slot = pop(ident, None)
            if slot is None:
                continue
            if track:
                track_serial(all_serials[slot])
            # Inlined _release_slot: this loop runs once per session
            # departure, and the call overhead alone is measurable.
            if good_flags[slot]:
                last_slot = good_slots.pop()
                if last_slot != slot:
                    pos = good_pos[slot]
                    good_slots[pos] = last_slot
                    good_pos[last_slot] = pos
            else:
                self._bad_count -= 1
            all_idents[slot] = None
            free_slot(slot)
            removed += 1
        if track and serials:
            for tr in self._tracker_list:
                tr.on_depart_batch(serials)
        return removed

    # -- queries -----------------------------------------------------------
    def __contains__(self, ident: str) -> bool:
        return ident in self._slot_of

    def __len__(self) -> int:
        return len(self._slot_of)

    def get(self, ident: str) -> Optional[Member]:
        slot = self._slot_of.get(ident)
        if slot is None:
            return None
        return Member(
            ident=ident,
            is_good=self._good_flags[slot],
            joined_at=self._joined[slot],
            serial=self._serials[slot],
        )

    @property
    def size(self) -> int:
        return len(self._slot_of)

    @property
    def good_count(self) -> int:
        return len(self._good_slots)

    @property
    def bad_count(self) -> int:
        return self._bad_count

    @property
    def last_serial(self) -> int:
        return self._serial

    def bad_fraction(self) -> float:
        total = len(self._slot_of)
        if not total:
            return 0.0
        return self._bad_count / total

    def good_ids(self) -> List[str]:
        idents = self._idents
        return [idents[s] for s in self._good_slots]

    def bad_ids(self) -> List[str]:
        good = self._good_flags
        return [i for i, s in self._slot_of.items() if not good[s]]

    def all_ids(self) -> List[str]:
        return list(self._slot_of)

    def members(self) -> Iterable[Member]:
        good = self._good_flags
        joined = self._joined
        serials = self._serials
        return [
            Member(
                ident=ident,
                is_good=good[slot],
                joined_at=joined[slot],
                serial=serials[slot],
            )
            for ident, slot in self._slot_of.items()
        ]

    def random_good(self, rng: np.random.Generator) -> Optional[str]:
        """A good ID selected uniformly at random, or ``None`` if empty.

        This implements the ABC model's rule that the adversary schedules
        *when* a good departure happens but cannot choose *which* good ID
        departs (Section 2).
        """
        good_slots = self._good_slots
        n = len(good_slots)
        if not n:
            return None
        idx = int(rng.integers(0, n))
        return self._idents[good_slots[idx]]


class DictMembershipSet:
    """The reference dict-of-:class:`Member` backend.

    Same public API (including the batch mutators, implemented as plain
    loops) and identical observable behavior as the arena; kept so
    equivalence tests can A/B the storage layouts.
    """

    def __init__(self) -> None:
        self._members: Dict[str, Member] = {}
        self._good_list: List[str] = []
        self._good_index: Dict[str, int] = {}
        self._bad: set = set()
        self._trackers: Dict[str, SymmetricDifferenceTracker] = {}
        self._serial = 0

    # -- tracker plumbing --------------------------------------------------
    def attach_tracker(self, name: str, tracker: SymmetricDifferenceTracker) -> None:
        tracker.reset(len(self._members), self._serial)
        self._trackers[name] = tracker

    def tracker(self, name: str) -> SymmetricDifferenceTracker:
        return self._trackers[name]

    def reset_tracker(self, name: str) -> None:
        self._trackers[name].reset(len(self._members), self._serial)

    def sym_diff(self, name: str) -> int:
        return self._trackers[name].symmetric_difference

    # -- mutation ----------------------------------------------------------
    def add(self, ident: str, is_good: bool, now: float) -> None:
        if ident in self._members:
            raise ValueError(f"duplicate ID {ident!r}")
        self._serial += 1
        member = Member(
            ident=ident, is_good=is_good, joined_at=now, serial=self._serial
        )
        self._members[ident] = member
        if is_good:
            self._good_index[ident] = len(self._good_list)
            self._good_list.append(ident)
        else:
            self._bad.add(ident)
        if self._trackers:
            for tracker in self._trackers.values():
                tracker.on_join(member.serial)

    def add_batch(self, idents: Sequence[str], is_good: bool, times) -> None:
        if isinstance(times, np.ndarray):
            times = times.tolist()
        for ident, t in zip(idents, times):
            self.add(ident, is_good, t)

    def remove(self, ident: str) -> Optional[Member]:
        """Remove ``ident`` if present; return the member or ``None``."""
        member = self._members.pop(ident, None)
        if member is None:
            return None
        if member.is_good:
            self._remove_good(ident)
        else:
            self._bad.discard(ident)
        if self._trackers:
            for tracker in self._trackers.values():
                tracker.on_depart(member.serial)
        return member

    def discard(self, ident: str) -> bool:
        return self.remove(ident) is not None

    def remove_batch(self, idents: Sequence[str]) -> int:
        removed = 0
        for ident in idents:
            if self.remove(ident) is not None:
                removed += 1
        return removed

    def _remove_good(self, ident: str) -> None:
        idx = self._good_index.pop(ident)
        last = self._good_list.pop()
        if last != ident:
            self._good_list[idx] = last
            self._good_index[last] = idx

    # -- queries -----------------------------------------------------------
    def __contains__(self, ident: str) -> bool:
        return ident in self._members

    def __len__(self) -> int:
        return len(self._members)

    def get(self, ident: str) -> Optional[Member]:
        return self._members.get(ident)

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def good_count(self) -> int:
        return len(self._good_list)

    @property
    def bad_count(self) -> int:
        return len(self._bad)

    @property
    def last_serial(self) -> int:
        return self._serial

    def bad_fraction(self) -> float:
        if not self._members:
            return 0.0
        return len(self._bad) / len(self._members)

    def good_ids(self) -> List[str]:
        return list(self._good_list)

    def bad_ids(self) -> List[str]:
        return list(self._bad)

    def all_ids(self) -> List[str]:
        return list(self._members)

    def members(self) -> Iterable[Member]:
        return self._members.values()

    def random_good(self, rng: np.random.Generator) -> Optional[str]:
        """A good ID selected uniformly at random, or ``None`` if empty."""
        if not self._good_list:
            return None
        idx = int(rng.integers(0, len(self._good_list)))
        return self._good_list[idx]


#: The default storage backend (``"arena"`` or ``"dict"``).  Equivalence
#: tests flip this module-wide to A/B the layouts; everything routes
#: through :func:`make_membership_set`.
MEMBERSHIP_BACKEND_DEFAULT = "arena"


def make_membership_set():
    """Construct a membership set using the module-default backend."""
    if MEMBERSHIP_BACKEND_DEFAULT == "dict":
        return DictMembershipSet()
    return ArenaMembershipSet()


#: Backwards-compatible name: the default backend's class.
MembershipSet = ArenaMembershipSet
