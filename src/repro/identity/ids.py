"""Unique ID naming.

"Every joining ID is treated as a new ID.  We ensure every joining ID is
given a unique name by concatenating a join-event counter to the name
chosen by the ID." (Section 2.1.1.)
"""

from __future__ import annotations


class IdentityFactory:
    """Issues globally unique identifier strings.

    The factory appends a monotonically increasing join-event counter to
    whatever name the joiner proposes, so re-joining IDs are always new
    IDs from the system's perspective.
    """

    def __init__(self) -> None:
        self._counter = 0

    @property
    def issued(self) -> int:
        """How many identifiers have been issued so far."""
        return self._counter

    def issue(self, proposed_name: str = "id") -> str:
        """Return a unique identifier derived from ``proposed_name``."""
        self._counter += 1
        return f"{proposed_name}#{self._counter}"

    def issue_batch(self, proposed_name: str = "id", count: int = 1) -> list:
        """Issue ``count`` identifiers sharing one proposed name.

        Exactly equivalent to ``count`` :meth:`issue` calls (same names,
        same counter state after), amortizing the per-call overhead for
        the defenses' whole-run join hooks.
        """
        if count == 1:
            self._counter += 1
            return [f"{proposed_name}#{self._counter}"]
        start = self._counter
        self._counter = start + count
        prefix = proposed_name + "#"
        return list(map(prefix.__add__, map(str, range(start + 1, start + count + 1))))

    def issue_good(self) -> str:
        """Convenience wrapper for good-ID names (used by the engine)."""
        return self.issue("g")

    def issue_bad(self) -> str:
        """Convenience wrapper for Sybil-ID names (used by adversaries)."""
        return self.issue("b")
