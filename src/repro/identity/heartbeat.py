"""Heartbeat-based departure detection.

"In practice, each good ID can issue 'heartbeat messages' to the server
that indicate they are still alive. ... a bad ID that fails to issue
heartbeat messages will be treated by the server as having departed."
(Section 2.1.1.)

The simulation engine normally learns about departures from the trace
directly, but :class:`HeartbeatMonitor` implements the practical
mechanism so the decentralized committee (Section 12) and the examples
can exercise the detection path, including bad IDs going silent.
"""

from __future__ import annotations

from typing import Dict, List


class HeartbeatMonitor:
    """Tracks last-heard-from times and flags silent IDs as departed."""

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError(f"heartbeat timeout must be positive: {timeout}")
        self.timeout = float(timeout)
        self._last_seen: Dict[str, float] = {}

    def register(self, ident: str, now: float) -> None:
        """Start tracking ``ident`` (e.g. when it joins)."""
        self._last_seen[ident] = float(now)

    def beat(self, ident: str, now: float) -> None:
        """Record a heartbeat from ``ident``.

        Raises:
            KeyError: for unknown IDs -- a heartbeat from an ID the server
                never admitted indicates a protocol bug.
        """
        if ident not in self._last_seen:
            raise KeyError(f"heartbeat from unregistered ID {ident!r}")
        self._last_seen[ident] = float(now)

    def forget(self, ident: str) -> None:
        """Stop tracking ``ident`` (announced departure or purge)."""
        self._last_seen.pop(ident, None)

    def expired(self, now: float) -> List[str]:
        """IDs whose last heartbeat is older than the timeout.

        The caller is expected to treat these as departed and then call
        :meth:`forget` on each (this method does not mutate state so the
        caller can decide what a detection means).
        """
        cutoff = now - self.timeout
        return [ident for ident, seen in self._last_seen.items() if seen < cutoff]

    @property
    def tracked(self) -> int:
        return len(self._last_seen)
