"""Deterministic fault injection for the sweep runtime.

Testing crash recovery with real flakiness (random kills, wall-clock
races) produces flaky tests; this module makes every failure mode a
*scheduled, reproducible event*.  A fault spec is a small string --
passed via ``--fault-spec`` on the sweep CLIs or the
``REPRO_FAULT_SPEC`` environment variable -- that workers consult
before running each point, so CI can exercise every recovery path of
:mod:`repro.experiments.runtime` (pool rebuild, retry, timeout,
resume) without timing games.

Grammar (clauses separated by ``;``)::

    clause := KIND "@" TARGET [":" PARAM] ["x" COUNT]
    KIND   := crash | hang | raise | slow
    TARGET := point index (decimal) | "0x" digest prefix | "*"
    PARAM  := float   (seconds: hang duration / slow-down; default
                       3600 for hang, 0.05 for slow)
    COUNT  := attempts the fault fires on (fires while attempt <=
              COUNT; default 1, "*" = every attempt)

Examples::

    crash@3             worker simulating point 3 calls os._exit on
                        its first attempt (-> BrokenProcessPool)
    hang@2:30           point 2's first attempt sleeps 30s (recovered
                        by --point-timeout)
    raise@5x2           point 5 raises FaultInjected on attempts 1-2
    slow@*:0.2          every point sleeps 0.2s before running
    crash@0x3f2a        crash any point whose coordinate digest starts
                        with 3f2a

Points are addressed by their submission index (stable: specs are
built in deterministic order) or by a prefix of their *coordinate
digest* -- the SHA-256 the runtime derives from the pickled point
spec -- so a fault can name a point independently of grid ordering.
A target starting with ``0x`` is always a digest prefix, so index 0
cannot take an ``xCOUNT`` suffix directly -- address it as ``*`` on a
single-point sweep or via its digest when a count is needed.
Because the fault fires as a function of ``(point, attempt)`` only,
an injected run is exactly as deterministic as a clean one.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

#: Worker exit code for injected crashes (distinguishable from real
#: signals/oom in CI logs).
CRASH_EXIT_CODE = 86

#: Default injected-hang duration: "forever" at sweep timescales, so an
#: unconfigured timeout is loudly visible instead of silently absorbed.
DEFAULT_HANG_S = 3600.0

DEFAULT_SLOW_S = 0.05

KINDS = ("crash", "hang", "raise", "slow")


class FaultSpecError(ValueError):
    """A fault spec string that does not parse."""


class FaultInjected(RuntimeError):
    """The exception ``raise`` clauses throw inside a worker."""


@dataclass(frozen=True)
class FaultClause:
    """One scheduled fault: kind + point target + attempt window."""

    kind: str
    target: str  # "*", a decimal index, or "0x<hex digest prefix>"
    param: Optional[float] = None
    count: Optional[int] = None  # None = 1; 0 or less is rejected

    def matches(self, index: int, digest: str, attempt: int) -> bool:
        limit = 1 if self.count is None else self.count
        if attempt > limit:
            return False
        if self.target == "*":
            return True
        if self.target.startswith("0x"):
            return digest.lower().startswith(self.target[2:].lower())
        return int(self.target) == index


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault spec: every clause, in spec order."""

    clauses: Tuple[FaultClause, ...]

    def apply(self, index: int, digest: str, attempt: int) -> None:
        """Fire every matching clause, in spec order (worker-side).

        ``slow`` clauses sleep and fall through; ``crash``/``hang``/
        ``raise`` are terminal for the attempt.
        """
        for clause in self.clauses:
            if not clause.matches(index, digest, attempt):
                continue
            if clause.kind == "slow":
                time.sleep(clause.param if clause.param is not None
                           else DEFAULT_SLOW_S)
            elif clause.kind == "crash":
                # A hard worker death: no exception, no cleanup -- the
                # coordinator sees BrokenProcessPool, exactly like a
                # segfault or an OOM kill.
                os._exit(CRASH_EXIT_CODE)
            elif clause.kind == "hang":
                time.sleep(clause.param if clause.param is not None
                           else DEFAULT_HANG_S)
            else:  # raise
                raise FaultInjected(
                    f"injected fault at point {index} "
                    f"(digest {digest[:12]}, attempt {attempt})"
                )


def _parse_clause(text: str) -> FaultClause:
    head, sep, target = text.partition("@")
    if not sep:
        raise FaultSpecError(
            f"fault clause {text!r} is missing '@' (want KIND@TARGET"
            f"[:PARAM][xCOUNT])"
        )
    kind = head.strip().lower()
    if kind not in KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r}; choose from: {', '.join(KINDS)}"
        )
    count: Optional[int] = None

    def split_count(chunk: str) -> str:
        # COUNT rides after the last 'x' -- but the 'x' of a "0x" digest
        # prefix is part of the TARGET, never a count separator.
        nonlocal count
        search_from = 2 if chunk[:2].lower() == "0x" else 0
        pos = chunk.rfind("x", search_from)
        if pos < 0:
            return chunk
        count_text = chunk[pos + 1 :]
        if count_text.strip() == "*":
            count = 1 << 30  # effectively "every attempt"
        else:
            try:
                count = int(count_text)
            except ValueError:
                raise FaultSpecError(
                    f"fault clause {text!r}: count {count_text!r} is not "
                    f"an integer (use xN or x*)"
                ) from None
            if count < 1:
                raise FaultSpecError(
                    f"fault clause {text!r}: count must be >= 1"
                )
        return chunk[:pos]

    param: Optional[float] = None
    if ":" in target:
        target, _, param_text = target.partition(":")
        param_text = split_count(param_text)
        try:
            param = float(param_text)
        except ValueError:
            raise FaultSpecError(
                f"fault clause {text!r}: param {param_text!r} is not a "
                f"number of seconds"
            ) from None
        if param < 0:
            raise FaultSpecError(f"fault clause {text!r}: param must be >= 0")
    else:
        target = split_count(target)
    target = target.strip()
    if target != "*" and not target.startswith("0x"):
        try:
            int(target)
        except ValueError:
            raise FaultSpecError(
                f"fault clause {text!r}: target {target!r} must be a point "
                f"index, a 0x digest prefix, or '*'"
            ) from None
    elif target.startswith("0x"):
        prefix = target[2:]
        if not prefix:
            raise FaultSpecError(f"fault clause {text!r}: empty digest prefix")
        try:
            int(prefix, 16)
        except ValueError:
            raise FaultSpecError(
                f"fault clause {text!r}: digest prefix {prefix!r} is not "
                f"hex (note '0x' always starts a digest prefix; give point "
                f"0 a count via its digest or '*')"
            ) from None
    return FaultClause(kind=kind, target=target, param=param, count=count)


@lru_cache(maxsize=64)
def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``;``-separated fault spec string (cached per process)."""
    clauses = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if chunk:
            clauses.append(_parse_clause(chunk))
    if not clauses:
        raise FaultSpecError(f"fault spec {spec!r} contains no clauses")
    return FaultPlan(clauses=tuple(clauses))


def env_fault_spec() -> Optional[str]:
    """The ambient ``REPRO_FAULT_SPEC`` (empty/unset -> ``None``)."""
    spec = os.environ.get("REPRO_FAULT_SPEC", "").strip()
    return spec or None


def inject(spec: Optional[str], index: int, digest: str, attempt: int) -> None:
    """Consult a fault spec before running a point (the worker hook).

    ``spec=None`` is the fast path: no parse, no matching, no cost.
    """
    if not spec:
        return
    parse_fault_spec(spec).apply(index, digest, attempt)
