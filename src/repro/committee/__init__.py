"""Decentralizing Ergo (Section 12).

Without a central server, a Θ(log n₀)-sized committee with a good
majority takes over the server's duties:

* :mod:`repro.committee.genid` -- system initialization: a GenID
  solution gives all good IDs an agreed initial set with at most a
  κ-fraction bad, plus an initial committee.
* :mod:`repro.committee.smr` -- synchronous state-machine replication:
  the committee agrees on a total order of join/departure events, which
  is what lets GoodJEst and Ergo run unchanged on top.
* :mod:`repro.committee.election` -- at the end of every iteration the
  old committee elects a new one of size C·log(N_i) uniformly at random
  (via simulated secure multiparty coin flipping); Lemma 18 gives a 7/8
  good fraction with high probability.
* :mod:`repro.committee.decentralized` -- :class:`DecentralizedErgo`,
  Ergo plus committee maintenance, providing Theorem 4's guarantees.
"""

from repro.committee.decentralized import CommitteeRecord, DecentralizedErgo
from repro.committee.election import Committee, elect_committee
from repro.committee.genid import GenIDResult, run_genid
from repro.committee.smr import ReplicatedLog, Replica

__all__ = [
    "Committee",
    "CommitteeRecord",
    "DecentralizedErgo",
    "GenIDResult",
    "Replica",
    "ReplicatedLog",
    "elect_committee",
    "run_genid",
]
