"""Synchronous state-machine replication for the committee (Section 12.2).

"The committee makes use of State Machine Replication to agree on an
ordering of network events so as to execute GoodJEst and Ergo in
parallel."  The communication model is synchronous with authenticated
channels (inherited from [103, 28]), under which majority-honest SMR is
classical.

We implement an explicit synchronous SMR round structure so the
decentralized path is executable and testable with Byzantine replicas:

* a rotating leader proposes the next operation from its queue;
* every replica echoes the proposal it received (bad leaders can
  equivocate -- send different values to different replicas);
* replicas adopt the majority echo; with a good majority, every good
  replica commits the same operation at the same index (agreement +
  total order), whatever the bad replicas do.

Byzantine behaviours implemented for fault-injection tests: equivocating
leaders, vote flipping, and silence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Behaviour(enum.Enum):
    """How a replica acts during rounds."""

    HONEST = "honest"
    EQUIVOCATE = "equivocate"  # leader sends different values to halves
    FLIP = "flip"  # echoes a corrupted value
    SILENT = "silent"  # sends nothing


@dataclass
class Replica:
    """One committee member's replicated state."""

    ident: str
    behaviour: Behaviour = Behaviour.HONEST
    log: List[str] = field(default_factory=list)

    @property
    def is_good(self) -> bool:
        return self.behaviour is Behaviour.HONEST


class ReplicatedLog:
    """A committee executing synchronous majority SMR."""

    def __init__(self, replicas: List[Replica]) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas = replicas
        self._round = 0

    @property
    def good_majority(self) -> bool:
        good = sum(1 for r in self.replicas if r.is_good)
        return good > len(self.replicas) / 2

    def _corrupt(self, value: str) -> str:
        return f"corrupt({value})"

    def propose(self, value: str) -> Optional[str]:
        """Run one synchronous round; returns the committed value.

        The leader rotates round-robin.  Good replicas commit the
        majority echo; ``None`` is returned when no value reached a
        majority (possible only without a good majority, or with a
        silent leader -- in which case the round is skipped, matching a
        synchronous protocol's timeout).
        """
        leader = self.replicas[self._round % len(self.replicas)]
        self._round += 1
        proposals = self._leader_proposals(leader, value)
        if proposals is None:
            return None
        echoes = self._echo_phase(proposals)
        committed = self._majority(echoes, len(self.replicas))
        if committed is None:
            return None
        for replica in self.replicas:
            if replica.is_good:
                replica.log.append(committed)
        return committed

    def _leader_proposals(
        self, leader: Replica, value: str
    ) -> Optional[Dict[str, str]]:
        """What each replica hears from the leader."""
        if leader.behaviour is Behaviour.SILENT:
            return None
        proposals: Dict[str, str] = {}
        for i, replica in enumerate(self.replicas):
            if leader.behaviour is Behaviour.EQUIVOCATE:
                proposals[replica.ident] = value if i % 2 == 0 else self._corrupt(value)
            elif leader.behaviour is Behaviour.FLIP:
                proposals[replica.ident] = self._corrupt(value)
            else:
                proposals[replica.ident] = value
        return proposals

    @staticmethod
    def _valid(value: str) -> bool:
        """Authenticity check on a proposed operation.

        Operations originate from clients over authenticated channels
        (Section 12's model), so a fabricated operation fails signature
        validation.  Corruption markers model forged payloads.
        """
        return not value.startswith("corrupt(")

    def _echo_phase(self, proposals: Dict[str, str]) -> List[str]:
        """All-to-all echo; honest replicas validate, bad replicas lie."""
        echoes: List[str] = []
        for replica in self.replicas:
            heard = proposals[replica.ident]
            if replica.behaviour is Behaviour.SILENT:
                continue
            if replica.behaviour in (Behaviour.FLIP, Behaviour.EQUIVOCATE):
                echoes.append(self._corrupt(heard))
            elif self._valid(heard):
                echoes.append(heard)
        return echoes

    @staticmethod
    def _majority(echoes: List[str], committee_size: int) -> Optional[str]:
        """The value echoed by a majority of the *whole committee*.

        Missing echoes (silent or refusing replicas) count against
        reaching a majority -- a synchronous no-show is a no-vote.
        """
        counts: Dict[str, int] = {}
        for echo in echoes:
            counts[echo] = counts.get(echo, 0) + 1
        if not counts:
            return None
        best, best_count = max(counts.items(), key=lambda kv: kv[1])
        if best_count > committee_size / 2:
            return best
        return None

    def good_logs_agree(self) -> bool:
        """Agreement invariant: all good replicas hold identical logs."""
        logs = [tuple(r.log) for r in self.replicas if r.is_good]
        return len(set(logs)) <= 1

    def committed_log(self) -> List[str]:
        for replica in self.replicas:
            if replica.is_good:
                return list(replica.log)
        return []
