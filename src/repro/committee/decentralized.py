"""Decentralized Ergo (Section 12): committee-maintained membership.

:class:`DecentralizedErgo` extends Ergo with the committee life cycle:

* at bootstrap, a GenID execution agrees on the initial set and elects
  the initial committee;
* at the end of *every iteration* (purged or gated), the old committee
  elects a new committee of size C·log(N_i) by uniform sampling over
  the current population;
* committee compositions are recorded so Theorem 4 / Lemma 18's
  invariants -- good fraction ≥ 7/8 and size Θ(log n₀), for all
  iterations -- can be checked after a run.

The protocol logic (entrance costs, purges, GoodJEst) is inherited
unchanged: the committee merely replaces the server as the executor, and
the SMR layer (:mod:`repro.committee.smr`) provides the agreed event
order that the server's total order provided before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.committee.election import Committee, elect_committee
from repro.core.ergo import Ergo, ErgoConfig


@dataclass(frozen=True)
class CommitteeRecord:
    """Committee composition at one iteration boundary."""

    iteration: int
    time: float
    committee: Committee
    population: int


class DecentralizedErgo(Ergo):
    """Ergo run by a rotating committee instead of a server."""

    name = "ERGO-decentralized"

    def __init__(
        self,
        config: Optional[ErgoConfig] = None,
        committee_constant: float = 12.0,
    ) -> None:
        super().__init__(config)
        self.committee_constant = float(committee_constant)
        self.committee_history: List[CommitteeRecord] = []
        self._committee_rng = None

    def bind(self, sim) -> None:
        super().bind(sim)
        self._committee_rng = sim.rngs.stream("committee.election")

    def after_bootstrap(self, count: int) -> None:
        super().after_bootstrap(count)
        self._elect(reason="genid")

    def _elect(self, reason: str) -> Committee:
        committee = elect_committee(
            good_count=self.population.good_count,
            bad_count=self.population.bad_count,
            rng=self._committee_rng,
            constant=self.committee_constant,
        )
        self.committee_history.append(
            CommitteeRecord(
                iteration=self.iteration_count,
                time=self.now,
                committee=committee,
                population=self.population.size,
            )
        )
        return committee

    def _finish_iteration(self, now: float) -> None:
        super()._finish_iteration(now)
        self._elect(reason="iteration-end")

    # ------------------------------------------------------------------
    # Theorem 4 / Lemma 18 checks
    # ------------------------------------------------------------------
    @property
    def current_committee(self) -> Committee:
        if not self.committee_history:
            raise RuntimeError("no committee elected yet")
        return self.committee_history[-1].committee

    def all_committees_good_majority(self) -> bool:
        return all(r.committee.has_good_majority for r in self.committee_history)

    def all_committees_meet_lemma18(self) -> bool:
        return all(r.committee.meets_lemma18 for r in self.committee_history)

    def committee_size_range(self) -> tuple:
        sizes = [r.committee.size for r in self.committee_history]
        return min(sizes), max(sizes)
