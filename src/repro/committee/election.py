"""Committee election (Section 12.2).

"A new committee is elected by the old committee at the end of each
iteration ... the old committee selects a committee of size C·log N_i"
uniformly at random, via classic secure multiparty computation (Rabin &
Ben-Or [104]) so the adversary cannot bias the randomness.

We simulate the election's *outcome distribution*: members are drawn
uniformly without replacement from the current population, so the number
of bad members is hypergeometric.  Lemma 18 shows the good fraction
stays above 7/8 w.h.p. for C large enough; the tests and the committee
experiment verify exactly that on simulated histories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Committee:
    """One elected committee (composition only; members are symmetric)."""

    size: int
    good_members: int
    bad_members: int

    def __post_init__(self) -> None:
        if self.good_members + self.bad_members != self.size:
            raise ValueError("committee composition does not sum to size")

    @property
    def good_fraction(self) -> float:
        if self.size == 0:
            return 0.0
        return self.good_members / self.size

    @property
    def has_good_majority(self) -> bool:
        return self.good_members > self.size / 2

    @property
    def meets_lemma18(self) -> bool:
        """Lemma 18's stronger bound: at least 7/8 good."""
        return self.good_members >= (7.0 / 8.0) * self.size


def committee_size(population: int, constant: float = 12.0) -> int:
    """C·log(N), with a floor of 3 members."""
    if population < 1:
        raise ValueError(f"population must be positive: {population}")
    return max(3, int(constant * math.log(max(population, 2))))


def sample_committee_composition(
    size: int, good_count: int, bad_count: int, rng: np.random.Generator
) -> Committee:
    """Draw a committee uniformly at random from the population.

    With uniform sampling without replacement the bad-member count is
    Hypergeometric(N, bad, size).
    """
    total = good_count + bad_count
    if size > total:
        size = total
    if size <= 0:
        raise ValueError("cannot sample an empty committee")
    if bad_count == 0:
        bad_members = 0
    else:
        bad_members = int(rng.hypergeometric(bad_count, good_count, size))
    return Committee(size=size, good_members=size - bad_members, bad_members=bad_members)


def elect_committee(
    good_count: int,
    bad_count: int,
    rng: np.random.Generator,
    constant: float = 12.0,
) -> Committee:
    """End-of-iteration election: size C·log(N_i), uniform sampling."""
    total = good_count + bad_count
    return sample_committee_composition(
        committee_size(total, constant), good_count, bad_count, rng
    )
