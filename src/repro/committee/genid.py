"""GenID bootstrap (Sections 2.2 and 12.1).

GenID gives a permissionless system an agreed starting point: all good
IDs decide the same set S with (1) every good ID in S and (2) at most a
O(κ)-fraction of S bad, plus an initial committee of logarithmic size
with a good majority.  Solvers exist in the paper's model ([18, 37, 36,
38]); the one in [38] takes expected O(1) rounds, O(n) bits per good ID,
and O(1) 1-hard challenges per good ID.

We simulate that interface: every participant solves a 1-hard challenge
(the adversary can afford a κ-fraction of the solutions, so up to
``κ·n/(1−κ)`` Sybil IDs appear alongside n good IDs), and the initial
committee is sampled uniformly from the agreed set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.committee.election import Committee, sample_committee_composition


@dataclass(frozen=True)
class GenIDResult:
    """The agreed initial state."""

    good_ids: List[str]
    bad_count: int
    committee: Committee
    #: total RB cost paid by good IDs during initialization
    good_cost: float

    @property
    def total(self) -> int:
        return len(self.good_ids) + self.bad_count

    @property
    def bad_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return self.bad_count / self.total


def run_genid(
    good_ids: List[str],
    kappa: float,
    rng: np.random.Generator,
    committee_constant: float = 12.0,
    adversary_joins_fully: bool = True,
) -> GenIDResult:
    """Simulate a GenID execution.

    Every good ID pays one 1-hard challenge.  The adversary solves as
    many challenges as its κ-fraction of the resource affords in the
    round: with n good solutions, up to ``κ/(1−κ)·n`` bad ones.
    """
    if not 0 < kappa < 0.5:
        raise ValueError(f"kappa must be in (0, 0.5): {kappa}")
    n_good = len(good_ids)
    if n_good == 0:
        raise ValueError("GenID needs at least one good ID")
    max_bad = int(kappa / (1.0 - kappa) * n_good)
    bad_count = max_bad if adversary_joins_fully else int(rng.integers(0, max_bad + 1))
    total = n_good + bad_count
    committee_size = max(3, int(committee_constant * math.log(max(total, 2))))
    committee = sample_committee_composition(
        committee_size, good_count=n_good, bad_count=bad_count, rng=rng
    )
    return GenIDResult(
        good_ids=list(good_ids),
        bad_count=bad_count,
        committee=committee,
        good_cost=float(n_good),
    )
