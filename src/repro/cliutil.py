"""Shared helpers for the hand-rolled subcommand CLIs.

The subcommand CLIs (``repro scenarios``, ``repro traces``) parse a
small flag vocabulary by mutating the argument list in place; these
helpers are the one copy of that logic.
"""

from __future__ import annotations

from typing import List, Optional


def pop_option(args: List[str], flag: str) -> Optional[str]:
    """Extract ``--flag VALUE`` / ``--flag=VALUE`` (single occurrence)."""
    for i, arg in enumerate(args):
        if arg == flag:
            if i + 1 >= len(args):
                raise SystemExit(f"{flag} requires a value")
            value = args[i + 1]
            del args[i : i + 2]
            return value
        if arg.startswith(flag + "="):
            del args[i]
            return arg.split("=", 1)[1]
    return None


def pop_multi(args: List[str], flag: str) -> List[str]:
    """Extract every occurrence of a repeatable ``--flag VALUE``."""
    values = []
    while True:
        value = pop_option(args, flag)
        if value is None:
            return values
        values.append(value)
