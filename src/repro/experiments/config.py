"""Experiment configurations.

Full-scale defaults reproduce the paper's setups; every config has a
``quick()`` preset used by the pytest-benchmark harness and smoke tests
(same code paths, smaller sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: κ = 1/18 throughout the evaluation (Section 10.1).
KAPPA = 1.0 / 18.0

#: All four networks, in the order the figures present them.
ALL_NETWORKS = ["bitcoin", "bittorrent", "gnutella", "ethereum"]


@dataclass
class Figure8Config:
    """A vs T for ERGO, CCOM, SybilControl, REMP, ERGO-SF (Figure 8)."""

    networks: List[str] = field(default_factory=lambda: list(ALL_NETWORKS))
    #: T = 2^e for each exponent ("T ranges over [2^0, 2^20]").
    t_exponents: List[int] = field(default_factory=lambda: list(range(0, 21, 2)))
    horizon: float = 10_000.0
    seed: int = 2021
    kappa: float = KAPPA
    remp_t_max: float = 1.0e7
    sf_accuracy: float = 0.98
    #: Scale initial populations (1.0 = the paper's n0).
    n0_scale: float = 1.0

    @classmethod
    def quick(cls) -> "Figure8Config":
        return cls(
            networks=["gnutella"],
            t_exponents=[0, 6, 12, 18],
            horizon=600.0,
            n0_scale=0.25,
        )


@dataclass
class Figure9Config:
    """GoodJEst estimate/true ratio vs bad fraction (Figure 9)."""

    networks: List[str] = field(default_factory=lambda: list(ALL_NETWORKS))
    #: The figure's x-axis fractions.
    bad_fractions: List[float] = field(
        default_factory=lambda: [1 / 1536, 1 / 384, 1 / 96, 1 / 24, 1 / 6]
    )
    #: T = 0 (no attack) and T = 10,000 (Section 10.2).
    attack_rates: List[float] = field(default_factory=lambda: [0.0, 10_000.0])
    horizon: float = 100_000.0
    seed: int = 2021
    n0_scale: float = 1.0

    @classmethod
    def quick(cls) -> "Figure9Config":
        return cls(
            networks=["gnutella"],
            bad_fractions=[1 / 96, 1 / 6],
            horizon=20_000.0,
            n0_scale=0.25,
        )


@dataclass
class Figure10Config:
    """Heuristic comparison: ERGO vs CH1/CH2/SF(92)/SF(98) (Figure 10)."""

    networks: List[str] = field(default_factory=lambda: list(ALL_NETWORKS))
    t_exponents: List[int] = field(default_factory=lambda: list(range(0, 21, 2)))
    horizon: float = 10_000.0
    seed: int = 2021
    kappa: float = KAPPA
    n0_scale: float = 1.0

    @classmethod
    def quick(cls) -> "Figure10Config":
        return cls(
            networks=["gnutella"],
            t_exponents=[0, 8, 16],
            horizon=600.0,
            n0_scale=0.25,
        )


@dataclass
class LowerBoundConfig:
    """Theorem 3 validation: measured spend vs Ω(√(TJ)+J)."""

    network: str = "gnutella"
    t_exponents: List[int] = field(default_factory=lambda: list(range(4, 21, 4)))
    horizon: float = 4_000.0
    seed: int = 2021
    #: Ω(·) constant used in the check (loose on purpose).
    omega_constant: float = 1.0 / 64.0
    n0_scale: float = 1.0

    @classmethod
    def quick(cls) -> "LowerBoundConfig":
        return cls(t_exponents=[8, 16], horizon=600.0, n0_scale=0.25)


@dataclass
class CommitteeConfig:
    """Lemma 18 / Theorem 4 committee invariants."""

    network: str = "gnutella"
    attack_rate: float = 10_000.0
    horizon: float = 5_000.0
    seed: int = 2021
    committee_constant: float = 12.0
    n0_scale: float = 1.0

    @classmethod
    def quick(cls) -> "CommitteeConfig":
        return cls(horizon=800.0, n0_scale=0.25)


def scaled_n0(base_n0: int, scale: float) -> Optional[int]:
    """Apply an n0 scale factor (None means 'use the network default')."""
    if scale == 1.0:
        return None
    return max(200, int(base_n0 * scale))
