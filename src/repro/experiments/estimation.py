"""The GoodJEst estimation harness (Figure 9's apparatus).

Theorem 2 is about GoodJEst alone: "Assume the fraction of bad IDs is
always less than 1/6" -- purges are not part of the claim.  The harness
therefore runs GoodJEst over a churn trace with

* a *persistent* Sybil population pinned at a chosen fraction (the
  figure's x-axis), maintained by
  :class:`repro.adversary.strategies.PersistentFractionAdversary`
  through the zero-cost :meth:`force_bad_join` hook; and
* optionally, an *attacking* flood throttled by Ergo-style entrance
  pricing, so "a constant rate that can be afforded when T = 10,000"
  (Section 10.2) is meaningful.

After every completed interval it records ``J̃ / (true good join rate
over that interval)`` -- the exact quantity Figure 9 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.goodjest import GoodJEst
from repro.core.protocol import Defense
from repro.sim.metrics import SlidingWindowCounter


@dataclass(frozen=True)
class RatioSample:
    """One interval's estimate/true ratio."""

    time: float
    estimate: float
    true_rate: float

    @property
    def ratio(self) -> float:
        if self.true_rate <= 0:
            return float("nan")
        return self.estimate / self.true_rate


class EstimationHarness(Defense):
    """GoodJEst + entrance pricing, no purges, no cost accounting."""

    name = "GoodJEst-harness"

    def __init__(
        self,
        max_window_width: float = 1.0e7,
        bad_fraction_cap: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.goodjest = GoodJEst(self.population)
        self.max_window_width = float(max_window_width)
        #: Theorem 2's precondition: keep the bad fraction below a cap by
        #: trimming the *newest* Sybil IDs (the persistent base stays).
        self.bad_fraction_cap = bad_fraction_cap
        self._window: Optional[SlidingWindowCounter] = None
        self._good_joins_in_interval = 0
        self._intervals_seen = 0
        self.ratios: List[RatioSample] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def after_bootstrap(self, count: int) -> None:
        self.goodjest.initialize(self.now)
        # Widening (an estimate revised downward) re-admits aged batches
        # up to max_window_width, which also bounds pruning.
        self._window = SlidingWindowCounter(
            self._window_width(), max_width=self.max_window_width
        )

    def _window_width(self) -> float:
        estimate = self.goodjest.estimate
        if estimate <= 0:
            return self.max_window_width
        return min(1.0 / estimate, self.max_window_width)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def quote_entrance_cost(self) -> float:
        return 1.0 + self._window.count(self.now)

    def process_good_join(self, ident: Optional[str] = None) -> Optional[str]:
        unique = self.ids.issue(ident if ident is not None else "g")
        self.population.good_join(unique, self.now)
        self._good_joins_in_interval += 1
        self._after_event(joins=1)
        return unique

    def process_good_departure(self, ident: Optional[str] = None) -> Optional[str]:
        victim = self._select_departing_good(ident)
        if victim is None:
            return None
        self.population.good_depart(victim)
        self._after_event(joins=0)
        return victim

    def force_bad_join(self, count: int) -> None:
        """Zero-cost Sybil joins for the persistent population."""
        if count <= 0:
            return
        self.population.bad_join(count, self.now)
        self._window.record(self.now, count)
        self._after_event(joins=0)

    def process_bad_join_batch(self, budget: float) -> Tuple[int, float]:
        """Attack joins priced by the entrance window (like Ergo)."""
        from repro.core.ergo import Ergo

        attempted_total = 0
        cost_total = 0.0
        remaining = float(budget)
        while True:
            window_count = self._window.count(self.now)
            batch = Ergo._max_affordable(window_count, remaining, 1.0)
            # Without purges there is no iteration cap, but cap batches
            # near event granularity: in reality joins arrive one at a
            # time and the fraction cap trims continuously, so a burst
            # standing in the system when an interval ends is small.
            batch = min(batch, max(self.population.size // 64, 1))
            if batch <= 0:
                break
            cost = batch * (1.0 + window_count) + batch * (batch - 1) / 2.0
            self.accountant.charge_adversary(cost, category="entrance")
            remaining -= cost
            attempted_total += batch
            cost_total += cost
            self.population.bad_join(batch, self.now)
            self._window.record(self.now, batch)
            # The estimator sees the flood at event granularity (an
            # interval can end while the burst is in the system); the
            # persistence cap is enforced only between batches.
            self._after_event(joins=0)
            self._trim_bad()
        return attempted_total, cost_total

    def _trim_bad(self) -> None:
        """Enforce the bad-fraction cap by evicting the newest Sybils."""
        cap = self.bad_fraction_cap
        if cap is None:
            return
        good = self.population.good_count
        limit = int(cap / (1.0 - cap) * good)
        excess = self.population.bad_count - limit
        if excess > 0:
            self.population.bad.evict_newest(excess)

    # ------------------------------------------------------------------
    # interval-completion hook: record the estimate/true ratio
    # ------------------------------------------------------------------
    def _after_event(self, joins: int) -> None:
        self._observe_fraction()
        if not self.goodjest.on_event(self.now):
            return
        self._window.set_width(self._window_width())
        interval = self.goodjest.intervals[-1]
        duration = max(interval.end - interval.start, 1e-12)
        true_rate = self._good_joins_in_interval / duration
        sample = RatioSample(
            time=interval.end, estimate=interval.estimate, true_rate=true_rate
        )
        self.ratios.append(sample)
        if true_rate > 0:
            self.sim.metrics.estimate_ratio.record(interval.end, sample.ratio)
        self._good_joins_in_interval = 0
        self._intervals_seen += 1

    def bootstrap(self, idents) -> None:
        """Initial members join for free (estimation-only harness)."""
        count = 0
        for ident in idents:
            self.population.good_join(ident, self.now)
            count += 1
        self.after_bootstrap(count)
