"""Theorem 3 validation: no B1-B3 algorithm beats Ω(√(TJ)+J).

For a sweep of attack rates, run the Section 11 join-and-drop adversary
against Ergo and CCom (both are B1-B3 algorithms) and compare the
measured good spend rate to the lower-bound expression.  Two things are
checked:

* neither algorithm's spend falls below ``c·(√(TJ)+J)`` (the Ω bound);
* Ergo's spend stays within a polylog-ish factor of the bound (Theorem
  1 says it is asymptotically *optimal* in this class), while CCom's
  gap grows ~√T.

Run: ``python -m repro.experiments.lowerbound [--quick] [--jobs N]``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.analysis.lower_bound import lower_bound_spend_rate
from repro.analysis.plotting import format_table
from repro.baselines.ccom import CCom
from repro.churn.datasets import NETWORKS
from repro.core.ergo import Ergo
from repro.core.protocol import Defense
from repro.experiments import parallel, runtime
from repro.experiments.config import LowerBoundConfig, scaled_n0
from repro.experiments.report import results_path
from repro.resilience import atomic_write_text


def defense_factories() -> Dict[str, Callable[[], Defense]]:
    """The two B1-B3 algorithms the bound is checked against."""
    return {"ERGO": Ergo, "CCOM": CCom}


@dataclass
class LowerBoundRow:
    defense: str
    t_rate: float
    good_rate: float
    join_rate: float
    bound: float

    @property
    def ratio(self) -> float:
        """measured / bound; must stay >= the Ω constant."""
        if self.bound <= 0:
            return float("inf")
        return self.good_rate / self.bound


def run_report(config: LowerBoundConfig, jobs: int = 1, policy=None):
    network = NETWORKS[config.network]
    n0 = scaled_n0(network.n0, config.n0_scale)
    specs = [
        parallel.PointSpec(
            network=config.network,
            defense=label,
            t_rate=float(2**exponent),
            seed=parallel.derive_seed(
                config.seed, config.network, label, float(2**exponent)
            ),
            horizon=config.horizon,
            n0=n0,
            adversary="lower-bound",
        )
        for exponent in config.t_exponents
        for label in ("ERGO", "CCOM")
    ]
    return parallel.execute_report(
        specs, defense_factories, jobs=jobs, policy=policy
    )


def _bound_rows(points, join_rate: float) -> List[LowerBoundRow]:
    return [
        LowerBoundRow(
            defense=point.defense,
            t_rate=point.t_rate,
            good_rate=point.good_spend_rate,
            join_rate=join_rate,
            bound=lower_bound_spend_rate(point.t_rate, join_rate),
        )
        for point in points
    ]


def run(
    config: LowerBoundConfig, jobs: int = 1, policy=None
) -> List[LowerBoundRow]:
    join_rate = NETWORKS[config.network].steady_state_rate()
    report = run_report(config, jobs=jobs, policy=policy)
    return _bound_rows(report.rows, join_rate)


def render(rows: List[LowerBoundRow]) -> str:
    headers = ["defense", "T", "A (measured)", "sqrt(TJ)+J", "A/bound"]
    data = [[r.defense, r.t_rate, r.good_rate, r.bound, r.ratio] for r in rows]
    title = "Theorem 3: measured spend vs the Omega(sqrt(TJ)+J) lower bound"
    return "\n".join([title, "=" * len(title), "", format_table(headers, data)])


def main(argv: List[str] = None) -> List[LowerBoundRow]:
    args = list(argv if argv is not None else sys.argv[1:])
    config = LowerBoundConfig.quick() if "--quick" in args else LowerBoundConfig()
    policy = runtime.cli_policy(args, name="lowerbound")
    with runtime.exit_on_interrupt():
        report = run_report(config, jobs=parallel.parse_jobs(args), policy=policy)
    join_rate = NETWORKS[config.network].steady_state_rate()
    rows = _bound_rows(report.completed, join_rate)
    text = render(rows)
    atomic_write_text(results_path("lowerbound.txt"), text + "\n")
    print(text)
    if runtime.print_failures(report):
        raise SystemExit(1)
    return rows


if __name__ == "__main__":
    main()
