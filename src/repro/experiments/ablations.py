"""Ablations over Ergo's design constants.

The paper fixes three load-bearing constants and discusses their origin
in Section 9.3:

* **purge fraction 1/11** -- iterations end after ``|S(τ)|/11`` events
  ("the value 1/11 is not special"): smaller fractions purge more often
  (higher peace-time cost, lower bad accumulation); larger fractions
  risk the 3κ bound.
* **GoodJEst threshold 5/12** -- interval boundaries at
  ``|S△S'| ≥ (5/12)|S'|`` (derived from the epoch constant 1/2 and the
  1/6 bad bound; Section 13.3 discusses raising it).
* **window width 1/J̃** -- the entrance-cost lookback.  Scaling it by a
  factor w trades the flood's quadratic bite against peace-time joiner
  costs.

``run_ablations`` sweeps each knob in isolation at a fixed attack rate
and reports cost + max bad fraction, so the defaults can be judged
against their neighbours.  Run:

    python -m repro.experiments.ablations [--quick] [--jobs N]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List

from repro.analysis.plotting import format_table
from repro.churn.datasets import NETWORKS
from repro.core.ergo import Ergo, ErgoConfig
from repro.experiments import runtime
from repro.experiments.config import scaled_n0
from repro.experiments.parallel import ADVERSARIES, map_report, parse_jobs
from repro.experiments.report import results_path
from repro.experiments.runner import run_point
from repro.resilience import atomic_write_text


@dataclass
class AblationConfig:
    network: str = "gnutella"
    attack_rate: float = float(2**14)
    horizon: float = 4_000.0
    seed: int = 2021
    n0_scale: float = 1.0
    purge_fractions: List[float] = field(
        default_factory=lambda: [1 / 22, 1 / 11, 1 / 6, 1 / 4]
    )
    goodjest_thresholds: List[float] = field(
        default_factory=lambda: [1 / 4, 5 / 12, 1 / 2]
    )
    window_scales: List[float] = field(default_factory=lambda: [0.25, 1.0, 4.0])

    @classmethod
    def quick(cls) -> "AblationConfig":
        return cls(
            horizon=400.0,
            n0_scale=0.1,
            purge_fractions=[1 / 11, 1 / 4],
            goodjest_thresholds=[5 / 12],
            window_scales=[1.0, 4.0],
        )


@dataclass
class AblationRow:
    knob: str
    value: float
    good_spend_rate: float
    max_bad_fraction: float
    purges: float

    @property
    def defid_ok(self) -> bool:
        return self.max_bad_fraction < 1 / 6


class _ScaledWindowErgo(Ergo):
    """Ergo with the entrance window scaled by a constant factor."""

    def __init__(self, config: ErgoConfig, window_scale: float) -> None:
        super().__init__(config)
        self._window_scale = float(window_scale)

    def _window_width(self) -> float:
        return min(
            super()._window_width() * self._window_scale,
            self.config.max_window_width,
        )


def _build_defense(knob: str, value: float) -> Ergo:
    """Ergo with one design constant swapped out (worker-side)."""
    if knob == "purge_fraction":
        return Ergo(ErgoConfig(purge_fraction=value))
    if knob == "goodjest_threshold":
        return Ergo(ErgoConfig(goodjest_threshold=value))
    if knob == "window_scale":
        return _ScaledWindowErgo(ErgoConfig(), value)
    raise ValueError(f"unknown ablation knob: {knob!r}")


def measure_knob(knob: str, value: float, config: AblationConfig) -> AblationRow:
    """Simulate one knob setting (module-level so it pickles for --jobs)."""
    network = NETWORKS[config.network]
    point = run_point(
        lambda: _build_defense(knob, value),
        network,
        config.attack_rate,
        horizon=config.horizon,
        seed=config.seed,
        n0=scaled_n0(network.n0, config.n0_scale),
        adversary_factory=ADVERSARIES["greedy"],
    )
    return AblationRow(
        knob=knob,
        value=value,
        good_spend_rate=point.good_spend_rate,
        max_bad_fraction=point.max_bad_fraction,
        purges=point.counters.get("purges", 0),
    )


def run_ablations_report(config: AblationConfig, jobs: int = 1, policy=None):
    tasks = [
        (knob, value, config)
        for knob, values in (
            ("purge_fraction", config.purge_fractions),
            ("goodjest_threshold", config.goodjest_thresholds),
            ("window_scale", config.window_scales),
        )
        for value in values
    ]
    return map_report(measure_knob, tasks, jobs=jobs, star=True, policy=policy)


def run_ablations(
    config: AblationConfig, jobs: int = 1, policy=None
) -> List[AblationRow]:
    return run_ablations_report(config, jobs=jobs, policy=policy).rows


def render(rows: List[AblationRow], config: AblationConfig) -> str:
    headers = ["knob", "value", "A", "max_bad", "purges", "defid_ok"]
    data = [
        [
            r.knob,
            r.value,
            r.good_spend_rate,
            r.max_bad_fraction,
            r.purges,
            "yes" if r.defid_ok else "NO",
        ]
        for r in rows
    ]
    title = (
        f"Ablations over Ergo's constants "
        f"({config.network}, T={config.attack_rate:.0f})"
    )
    return "\n".join([title, "=" * len(title), "", format_table(headers, data)])


def main(argv: List[str] = None) -> List[AblationRow]:
    args = list(argv if argv is not None else sys.argv[1:])
    config = AblationConfig.quick() if "--quick" in args else AblationConfig()
    policy = runtime.cli_policy(args, name="ablations")
    with runtime.exit_on_interrupt():
        report = run_ablations_report(config, jobs=parse_jobs(args), policy=policy)
    text = render(report.completed, config)
    atomic_write_text(results_path("ablations.txt"), text + "\n")
    print(text)
    if runtime.print_failures(report):
        raise SystemExit(1)
    return report.completed


if __name__ == "__main__":
    main()
