"""Figure 9: GoodJEst's estimate/true join-rate ratio.

Setup (Section 10.2): each network starts with 10,000 IDs (9212 for
Bitcoin) and runs for 100,000 timesteps; a Sybil population *persists*
at fraction f ∈ {1/1536, 1/384, 1/96, 1/24, 1/6}; additionally an attack
at T = 10,000 injects IDs at the rate it can afford under entrance
pricing.  For every GoodJEst interval we record the ratio of the
estimate to the actual good join rate over that interval.

Reproduction target: "When T = 0, our estimate is always within range
(0.08, 1.2) of the actual good join rate.  Moreover, even when
T = 10,000, our estimate is always within range (0.08, 4)."

Run: ``python -m repro.experiments.figure9 [--quick] [--jobs N]``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List

from repro.adversary.strategies import PersistentFractionAdversary
from repro.analysis.plotting import format_table
from repro.churn.datasets import NETWORKS
from repro.experiments import runtime
from repro.experiments.config import Figure9Config, scaled_n0
from repro.experiments.estimation import EstimationHarness
from repro.experiments.parallel import map_report, parse_jobs
from repro.experiments.report import results_path
from repro.resilience import atomic_write_text
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.rng import RngRegistry


@dataclass
class RatioRow:
    """Ratio statistics for one (network, fraction, T) cell."""

    network: str
    bad_fraction: float
    t_rate: float
    intervals: int
    min_ratio: float
    median_ratio: float
    max_ratio: float


def run_cell(
    network_name: str,
    bad_fraction: float,
    t_rate: float,
    config: Figure9Config,
) -> RatioRow:
    network = NETWORKS[network_name]
    n0 = scaled_n0(network.n0, config.n0_scale)
    rngs = RngRegistry(seed=config.seed)
    # Fresh (non-equilibrium) sessions at t=0 match the paper's setup of
    # initializing each network with 10,000 IDs and simulating forward.
    scenario = network.scenario(
        horizon=config.horizon,
        rng=rngs.stream(f"churn.{network_name}"),
        n0=n0,
        equilibrium=False,
    )
    # Theorem 2's precondition (bad fraction < 1/6) is enforced by the
    # harness: attack joins churn through but the standing Sybil count
    # stays pinned at the cell's persistent fraction.
    harness = EstimationHarness(bad_fraction_cap=bad_fraction)
    adversary = PersistentFractionAdversary(
        fraction=bad_fraction,
        spend_rate=t_rate if t_rate > 0 else None,
    )
    sim = Simulation(
        SimulationConfig(horizon=config.horizon, seed=config.seed),
        harness,
        scenario.events,
        adversary=adversary,
        rngs=rngs,
        initial_members=scenario.initial,
    )
    sim.run()
    ratios = sorted(
        sample.ratio for sample in harness.ratios if sample.true_rate > 0
    )
    if not ratios:
        return RatioRow(
            network=network_name,
            bad_fraction=bad_fraction,
            t_rate=t_rate,
            intervals=0,
            min_ratio=float("nan"),
            median_ratio=float("nan"),
            max_ratio=float("nan"),
        )
    return RatioRow(
        network=network_name,
        bad_fraction=bad_fraction,
        t_rate=t_rate,
        intervals=len(ratios),
        min_ratio=ratios[0],
        median_ratio=ratios[len(ratios) // 2],
        max_ratio=ratios[-1],
    )


def run_report(config: Figure9Config, jobs: int = 1, policy=None):
    cells = [
        (network_name, fraction, t_rate, config)
        for network_name in config.networks
        for t_rate in config.attack_rates
        for fraction in config.bad_fractions
    ]
    return map_report(run_cell, cells, jobs=jobs, star=True, policy=policy)


def run(config: Figure9Config, jobs: int = 1, policy=None) -> List[RatioRow]:
    return run_report(config, jobs=jobs, policy=policy).rows


def render(rows: List[RatioRow]) -> str:
    headers = ["network", "bad_frac", "T", "intervals", "min", "median", "max"]
    data = [
        [
            r.network,
            r.bad_fraction,
            r.t_rate,
            r.intervals,
            r.min_ratio,
            r.median_ratio,
            r.max_ratio,
        ]
        for r in rows
    ]
    title = "Figure 9: GoodJEst estimated/true good join rate"
    return "\n".join([title, "=" * len(title), "", format_table(headers, data)])


def main(argv: List[str] = None) -> List[RatioRow]:
    args = list(argv if argv is not None else sys.argv[1:])
    config = Figure9Config.quick() if "--quick" in args else Figure9Config()
    policy = runtime.cli_policy(args, name="figure9")
    with runtime.exit_on_interrupt():
        report = run_report(config, jobs=parse_jobs(args), policy=policy)
    text = render(report.completed)
    atomic_write_text(results_path("figure9.txt"), text + "\n")
    print(text)
    if runtime.print_failures(report):
        raise SystemExit(1)
    return report.completed


if __name__ == "__main__":
    main()
