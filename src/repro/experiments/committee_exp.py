"""Lemma 18 / Theorem 4: committee invariants under churn and attack.

Runs :class:`~repro.committee.decentralized.DecentralizedErgo` against
the greedy flooder and verifies, over every iteration's elected
committee:

* a good majority always holds (required for SMR),
* the 7/8 good fraction of Lemma 18 holds,
* committee size stays Θ(log n₀).

Run: ``python -m repro.experiments.committee_exp [--quick]``.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import List

from repro.adversary.strategies import GreedyJoinAdversary
from repro.analysis.plotting import format_table
from repro.churn.datasets import NETWORKS
from repro.committee.decentralized import DecentralizedErgo
from repro.experiments.config import CommitteeConfig, scaled_n0
from repro.experiments.report import results_path
from repro.resilience import atomic_write_text
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.rng import RngRegistry


@dataclass
class CommitteeReport:
    elections: int
    min_good_fraction: float
    all_good_majority: bool
    all_meet_lemma18: bool
    size_min: int
    size_max: int
    expected_size: float
    good_spend_rate: float
    max_bad_fraction: float


def run(config: CommitteeConfig) -> CommitteeReport:
    network = NETWORKS[config.network]
    n0 = scaled_n0(network.n0, config.n0_scale)
    rngs = RngRegistry(seed=config.seed)
    scenario = network.scenario(
        horizon=config.horizon, rng=rngs.stream("churn"), n0=n0
    )
    defense = DecentralizedErgo(committee_constant=config.committee_constant)
    adversary = (
        GreedyJoinAdversary(rate=config.attack_rate)
        if config.attack_rate > 0
        else None
    )
    sim = Simulation(
        SimulationConfig(horizon=config.horizon, seed=config.seed),
        defense,
        scenario.events,
        adversary=adversary,
        rngs=rngs,
        initial_members=scenario.initial,
    )
    result = sim.run()
    history = defense.committee_history
    fractions = [r.committee.good_fraction for r in history]
    sizes = [r.committee.size for r in history]
    population = n0 if n0 is not None else network.n0
    return CommitteeReport(
        elections=len(history),
        min_good_fraction=min(fractions),
        all_good_majority=defense.all_committees_good_majority(),
        all_meet_lemma18=defense.all_committees_meet_lemma18(),
        size_min=min(sizes),
        size_max=max(sizes),
        expected_size=config.committee_constant * math.log(population),
        good_spend_rate=result.good_spend_rate,
        max_bad_fraction=result.max_bad_fraction,
    )


def render(report: CommitteeReport) -> str:
    headers = ["metric", "value"]
    data = [
        ["elections", report.elections],
        ["min good fraction", report.min_good_fraction],
        ["all good majority", "yes" if report.all_good_majority else "NO"],
        ["all >= 7/8 good (Lemma 18)", "yes" if report.all_meet_lemma18 else "NO"],
        ["committee size range", f"{report.size_min}..{report.size_max}"],
        ["C*log(n0)", report.expected_size],
        ["good spend rate", report.good_spend_rate],
        ["max bad fraction", report.max_bad_fraction],
    ]
    title = "Theorem 4 / Lemma 18: decentralized Ergo committee invariants"
    return "\n".join([title, "=" * len(title), "", format_table(headers, data)])


def main(argv: List[str] = None) -> CommitteeReport:
    args = argv if argv is not None else sys.argv[1:]
    config = CommitteeConfig.quick() if "--quick" in args else CommitteeConfig()
    report = run(config)
    text = render(report)
    atomic_write_text(results_path("committee.txt"), text + "\n")
    print(text)
    return report


if __name__ == "__main__":
    main()
