"""Figure 8: good spend rate A vs adversary spend rate T.

Setup (Section 10.1): κ = 1/18, T ∈ {2^0 ... 2^20}, each point simulated
for 10,000 seconds; the adversary only burns resources to add IDs; REMP
provisioned for T_max = 10^7; SybilControl's curve is cut off once it can
no longer keep the bad fraction below 1/6.

Expected shape (the reproduction target): REMP flat at (1−κ)T_max/κ ≈
1.7·10^8; CCom and SybilControl ≈ linear in T; Ergo ≈ √T, beating CCom
by ~2 orders of magnitude at T = 2^20; ERGO-SF below Ergo by another
~1-1.5 orders.

Run: ``python -m repro.experiments.figure8 [--quick] [--jobs N]``.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.baselines.ccom import CCom
from repro.baselines.remp import Remp
from repro.baselines.sybilcontrol import SybilControl
from repro.core.ergo import Ergo, ErgoConfig
from repro.core.heuristics import ergo_sf
from repro.core.protocol import Defense
from repro.experiments import runtime
from repro.experiments.config import Figure8Config
from repro.experiments.parallel import parse_jobs
from repro.experiments.report import save_figure
from repro.experiments.runner import SweepResult, sweep_report


def defense_factories(config: Figure8Config) -> Dict[str, Callable[[], Defense]]:
    """The five algorithms Figure 8 compares."""
    kappa = config.kappa
    return {
        "ERGO": lambda: Ergo(ErgoConfig(kappa=kappa)),
        "CCOM": lambda: CCom(ErgoConfig(kappa=kappa)),
        "SybilControl": lambda: SybilControl(),
        "REMP": lambda: Remp(t_max=config.remp_t_max, kappa=kappa),
        "ERGO-SF": lambda: ergo_sf(
            config.sf_accuracy, combined=False, kappa=kappa
        ),
    }


def run_report(config: Figure8Config, jobs: int = 1, policy=None):
    t_rates = [float(2**e) for e in config.t_exponents]
    return sweep_report(
        defense_factories(config),
        networks=config.networks,
        t_rates=t_rates,
        horizon=config.horizon,
        seed=config.seed,
        n0_scale=config.n0_scale,
        jobs=jobs,
        factory_provider=defense_factories,
        provider_arg=config,
        policy=policy,
    )


def run(config: Figure8Config, jobs: int = 1, policy=None) -> List[SweepResult]:
    return run_report(config, jobs=jobs, policy=policy).rows


def main(argv: List[str] = None) -> List[SweepResult]:
    args = list(argv if argv is not None else sys.argv[1:])
    config = Figure8Config.quick() if "--quick" in args else Figure8Config()
    policy = runtime.cli_policy(args, name="figure8")
    with runtime.exit_on_interrupt():
        report = run_report(config, jobs=parse_jobs(args), policy=policy)
    text = save_figure(
        report.completed,
        config.networks,
        name="figure8",
        title="Figure 8: good spend rate (A) vs adversarial spend rate (T)",
    )
    print(text)
    if runtime.print_failures(report):
        raise SystemExit(1)
    return report.completed


if __name__ == "__main__":
    main()
