"""Figure 10: algorithmic cost vs adversarial cost for Ergo's heuristics.

Setup identical to Figure 8 (Section 10.3); algorithms compared:

* ERGO (vanilla),
* ERGO-CH1 = Heuristics 1 + 2,
* ERGO-CH2 = Heuristics 1 + 2 + 3,
* ERGO-SF(92), ERGO-SF(98) = Heuristics 1 + 2 + 3 + 4 with classifier
  accuracies 0.92 and 0.98.

Expected shape: the SF variants dominate at large T (up to ~3 orders of
magnitude below the baselines' costs); CH1/CH2 give smaller, dataset-
dependent gains, most visible at small T on low-churn networks.

Run: ``python -m repro.experiments.figure10 [--quick] [--jobs N]``.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.core.ergo import Ergo, ErgoConfig
from repro.core.heuristics import ergo_ch1, ergo_ch2, ergo_sf
from repro.core.protocol import Defense
from repro.experiments.config import Figure10Config
from repro.experiments.parallel import parse_jobs
from repro.experiments.report import save_figure
from repro.experiments.runner import SweepResult, sweep


def defense_factories(config: Figure10Config) -> Dict[str, Callable[[], Defense]]:
    kappa = config.kappa
    return {
        "ERGO": lambda: Ergo(ErgoConfig(kappa=kappa)),
        "ERGO-CH1": lambda: ergo_ch1(kappa=kappa),
        "ERGO-CH2": lambda: ergo_ch2(kappa=kappa),
        "ERGO-SF(92)": lambda: ergo_sf(0.92, combined=True, kappa=kappa),
        "ERGO-SF(98)": lambda: ergo_sf(0.98, combined=True, kappa=kappa),
    }


def run(config: Figure10Config, jobs: int = 1) -> List[SweepResult]:
    t_rates = [float(2**e) for e in config.t_exponents]
    return sweep(
        defense_factories(config),
        networks=config.networks,
        t_rates=t_rates,
        horizon=config.horizon,
        seed=config.seed,
        n0_scale=config.n0_scale,
        jobs=jobs,
        factory_provider=defense_factories,
        provider_arg=config,
    )


def main(argv: List[str] = None) -> List[SweepResult]:
    args = argv if argv is not None else sys.argv[1:]
    config = Figure10Config.quick() if "--quick" in args else Figure10Config()
    rows = run(config, jobs=parse_jobs(args))
    text = save_figure(
        rows,
        config.networks,
        name="figure10",
        title="Figure 10: algorithmic cost vs adversarial cost (heuristics)",
    )
    print(text)
    return rows


if __name__ == "__main__":
    main()
