"""Figure 10: algorithmic cost vs adversarial cost for Ergo's heuristics.

Setup identical to Figure 8 (Section 10.3); algorithms compared:

* ERGO (vanilla),
* ERGO-CH1 = Heuristics 1 + 2,
* ERGO-CH2 = Heuristics 1 + 2 + 3,
* ERGO-SF(92), ERGO-SF(98) = Heuristics 1 + 2 + 3 + 4 with classifier
  accuracies 0.92 and 0.98.

Expected shape: the SF variants dominate at large T (up to ~3 orders of
magnitude below the baselines' costs); CH1/CH2 give smaller, dataset-
dependent gains, most visible at small T on low-churn networks.

Run: ``python -m repro.experiments.figure10 [--quick] [--jobs N]``.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.core.ergo import Ergo, ErgoConfig
from repro.core.heuristics import ergo_ch1, ergo_ch2, ergo_sf
from repro.core.protocol import Defense
from repro.experiments import runtime
from repro.experiments.config import Figure10Config
from repro.experiments.parallel import parse_jobs
from repro.experiments.report import save_figure
from repro.experiments.runner import SweepResult, sweep_report


def defense_factories(config: Figure10Config) -> Dict[str, Callable[[], Defense]]:
    kappa = config.kappa
    return {
        "ERGO": lambda: Ergo(ErgoConfig(kappa=kappa)),
        "ERGO-CH1": lambda: ergo_ch1(kappa=kappa),
        "ERGO-CH2": lambda: ergo_ch2(kappa=kappa),
        "ERGO-SF(92)": lambda: ergo_sf(0.92, combined=True, kappa=kappa),
        "ERGO-SF(98)": lambda: ergo_sf(0.98, combined=True, kappa=kappa),
    }


def run_report(config: Figure10Config, jobs: int = 1, policy=None):
    t_rates = [float(2**e) for e in config.t_exponents]
    return sweep_report(
        defense_factories(config),
        networks=config.networks,
        t_rates=t_rates,
        horizon=config.horizon,
        seed=config.seed,
        n0_scale=config.n0_scale,
        jobs=jobs,
        factory_provider=defense_factories,
        provider_arg=config,
        policy=policy,
    )


def run(config: Figure10Config, jobs: int = 1, policy=None) -> List[SweepResult]:
    return run_report(config, jobs=jobs, policy=policy).rows


def main(argv: List[str] = None) -> List[SweepResult]:
    args = list(argv if argv is not None else sys.argv[1:])
    config = Figure10Config.quick() if "--quick" in args else Figure10Config()
    policy = runtime.cli_policy(args, name="figure10")
    with runtime.exit_on_interrupt():
        report = run_report(config, jobs=parse_jobs(args), policy=policy)
    text = save_figure(
        report.completed,
        config.networks,
        name="figure10",
        title="Figure 10: algorithmic cost vs adversarial cost (heuristics)",
    )
    print(text)
    if runtime.print_failures(report):
        raise SystemExit(1)
    return report.completed


if __name__ == "__main__":
    main()
