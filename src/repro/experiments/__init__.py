"""Experiment harnesses regenerating every evaluation figure.

* :mod:`repro.experiments.figure8` -- good spend rate A vs adversary
  spend rate T for ERGO, CCOM, SybilControl, REMP, ERGO-SF over the four
  networks (Figure 8).
* :mod:`repro.experiments.figure9` -- GoodJEst estimate/true join-rate
  ratio vs persistent bad fraction, with and without attack (Figure 9).
* :mod:`repro.experiments.figure10` -- Ergo heuristics: ERGO, ERGO-CH1,
  ERGO-CH2, ERGO-SF(92), ERGO-SF(98) (Figure 10).
* :mod:`repro.experiments.lowerbound` -- Theorem 3's Ω(√(TJ)+J) bound
  vs measured spend of B1-B3 algorithms (Section 11).
* :mod:`repro.experiments.committee_exp` -- Lemma 18's committee
  invariants under churn and attack (Section 12).

Each module has a ``run(config)`` entry point returning structured rows
plus a ``main()`` that prints tables/ASCII plots and writes CSVs under
``results/``.  ``python -m repro.experiments.figureN`` regenerates a
figure; pass ``--quick`` for a scaled-down sweep.
"""

from repro.experiments.config import (
    Figure8Config,
    Figure9Config,
    Figure10Config,
    LowerBoundConfig,
)
from repro.experiments.runner import SweepResult, run_point

__all__ = [
    "Figure8Config",
    "Figure9Config",
    "Figure10Config",
    "LowerBoundConfig",
    "SweepResult",
    "run_point",
]
