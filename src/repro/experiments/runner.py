"""Shared sweep machinery for the figure experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.adversary.base import Adversary
from repro.adversary.strategies import GreedyJoinAdversary, MaintenanceAdversary
from repro.churn.datasets import NETWORKS, NetworkModel
from repro.core.protocol import Defense
from repro.experiments.config import scaled_n0
from repro.sim.engine import Simulation, SimulationConfig, SimulationResult
from repro.sim.rng import RngRegistry

#: Defenses with recurring per-ID costs get the maintenance adversary
#: (flood-then-thrash is strictly worse for the attacker there); purge
#: defenses get the greedy flooder, the paper's attack model.


def adversary_for(defense: Defense, t_rate: float) -> Optional[Adversary]:
    """The strongest implemented attack for a defense at spend rate T."""
    if t_rate <= 0:
        return None
    if hasattr(defense, "recurring_cost_rate_per_id"):
        return MaintenanceAdversary(rate=t_rate)
    return GreedyJoinAdversary(rate=t_rate)


@dataclass
class SweepResult:
    """One (network, defense, T) measurement."""

    network: str
    defense: str
    t_rate: float
    good_spend_rate: float
    adversary_spend_rate: float
    max_bad_fraction: float
    final_size: int
    #: the run's MetricSet counters (purges, queue traffic, ...) --
    #: participates in equality, so "identical rows" checks between
    #: serial and parallel sweeps compare event traffic too
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def maintains_defid(self) -> bool:
        """Did the run keep the bad fraction below 1/6?"""
        return self.max_bad_fraction < 1.0 / 6.0


def run_point(
    defense_factory: Callable[[], Defense],
    network: NetworkModel,
    t_rate: float,
    horizon: float,
    seed: int,
    n0: Optional[int] = None,
    adversary_factory: Optional[Callable[[float], Adversary]] = None,
) -> SweepResult:
    """Simulate one defense on one network at one attack rate."""
    rngs = RngRegistry(seed=seed)
    scenario = network.scenario(
        horizon=horizon, rng=rngs.stream(f"churn.{network.name}"), n0=n0
    )
    defense = defense_factory()
    if adversary_factory is not None and t_rate > 0:
        adversary = adversary_factory(t_rate)
    else:
        adversary = adversary_for(defense, t_rate)
    sim = Simulation(
        SimulationConfig(horizon=horizon, seed=seed),
        defense,
        scenario.events,
        adversary=adversary,
        rngs=rngs,
        initial_members=scenario.initial,
    )
    result: SimulationResult = sim.run()
    return SweepResult(
        network=network.name,
        defense=defense.name,
        t_rate=t_rate,
        good_spend_rate=result.good_spend_rate,
        adversary_spend_rate=result.adversary_spend_rate,
        max_bad_fraction=result.max_bad_fraction,
        final_size=result.final_system_size,
        counters=dict(result.counters),
    )


def sweep(
    defense_factories: Dict[str, Callable[[], Defense]],
    networks: List[str],
    t_rates: List[float],
    horizon: float,
    seed: int,
    n0_scale: float = 1.0,
    jobs: int = 1,
    factory_provider: Optional[Callable] = None,
    provider_arg=None,
    policy=None,
) -> List[SweepResult]:
    """Cartesian sweep over networks × defenses × attack rates.

    Per-point seeds are derived deterministically from ``seed`` and the
    point's coordinates, so the same call produces bit-identical rows
    regardless of ``jobs``.  With ``jobs != 1`` the points run across a
    process pool; workers rebuild the factories either by unpickling
    ``defense_factories`` itself (fine when its values are plain
    classes) or -- when the factories are closures -- by calling
    ``factory_provider(provider_arg)``, both of which must then be
    picklable (e.g. ``figure8.defense_factories`` and its config).

    ``policy`` (an :class:`~repro.experiments.runtime.ExecutionPolicy`)
    selects the fault-tolerance behaviour: retries, per-point
    timeouts, checkpoint/resume, fault injection.
    """
    return sweep_report(
        defense_factories,
        networks=networks,
        t_rates=t_rates,
        horizon=horizon,
        seed=seed,
        n0_scale=n0_scale,
        jobs=jobs,
        factory_provider=factory_provider,
        provider_arg=provider_arg,
        policy=policy,
    ).rows


def sweep_report(
    defense_factories: Dict[str, Callable[[], Defense]],
    networks: List[str],
    t_rates: List[float],
    horizon: float,
    seed: int,
    n0_scale: float = 1.0,
    jobs: int = 1,
    factory_provider: Optional[Callable] = None,
    provider_arg=None,
    policy=None,
):
    """Like :func:`sweep`, returning the runtime's full ``RunReport``
    (structured failure rows, retry/rebuild counts, checkpointing)."""
    from repro.experiments import parallel

    specs = parallel.build_sweep_specs(
        networks=networks,
        defenses=list(defense_factories),
        t_rates=t_rates,
        horizon=horizon,
        seed=seed,
        n0_scale=n0_scale,
    )
    if factory_provider is None:
        factory_provider = parallel.factories_from_dict
        provider_arg = defense_factories
    return parallel.execute_report(
        specs, factory_provider, provider_arg, jobs=jobs, policy=policy
    )
