"""Shared sweep machinery for the figure experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.adversary.base import Adversary
from repro.adversary.strategies import GreedyJoinAdversary, MaintenanceAdversary
from repro.churn.datasets import NETWORKS, NetworkModel
from repro.core.protocol import Defense
from repro.experiments.config import scaled_n0
from repro.sim.engine import Simulation, SimulationConfig, SimulationResult
from repro.sim.rng import RngRegistry

#: Defenses with recurring per-ID costs get the maintenance adversary
#: (flood-then-thrash is strictly worse for the attacker there); purge
#: defenses get the greedy flooder, the paper's attack model.


def adversary_for(defense: Defense, t_rate: float) -> Optional[Adversary]:
    """The strongest implemented attack for a defense at spend rate T."""
    if t_rate <= 0:
        return None
    if hasattr(defense, "recurring_cost_rate_per_id"):
        return MaintenanceAdversary(rate=t_rate)
    return GreedyJoinAdversary(rate=t_rate)


@dataclass
class SweepResult:
    """One (network, defense, T) measurement."""

    network: str
    defense: str
    t_rate: float
    good_spend_rate: float
    adversary_spend_rate: float
    max_bad_fraction: float
    final_size: int

    @property
    def maintains_defid(self) -> bool:
        """Did the run keep the bad fraction below 1/6?"""
        return self.max_bad_fraction < 1.0 / 6.0


def run_point(
    defense_factory: Callable[[], Defense],
    network: NetworkModel,
    t_rate: float,
    horizon: float,
    seed: int,
    n0: Optional[int] = None,
    adversary_factory: Optional[Callable[[float], Adversary]] = None,
) -> SweepResult:
    """Simulate one defense on one network at one attack rate."""
    rngs = RngRegistry(seed=seed)
    scenario = network.scenario(
        horizon=horizon, rng=rngs.stream(f"churn.{network.name}"), n0=n0
    )
    defense = defense_factory()
    if adversary_factory is not None and t_rate > 0:
        adversary = adversary_factory(t_rate)
    else:
        adversary = adversary_for(defense, t_rate)
    sim = Simulation(
        SimulationConfig(horizon=horizon, seed=seed),
        defense,
        scenario.events,
        adversary=adversary,
        rngs=rngs,
        initial_members=scenario.initial,
    )
    result: SimulationResult = sim.run()
    return SweepResult(
        network=network.name,
        defense=defense.name,
        t_rate=t_rate,
        good_spend_rate=result.good_spend_rate,
        adversary_spend_rate=result.adversary_spend_rate,
        max_bad_fraction=result.max_bad_fraction,
        final_size=result.final_system_size,
    )


def sweep(
    defense_factories: Dict[str, Callable[[], Defense]],
    networks: List[str],
    t_rates: List[float],
    horizon: float,
    seed: int,
    n0_scale: float = 1.0,
) -> List[SweepResult]:
    """Cartesian sweep over networks × defenses × attack rates."""
    rows: List[SweepResult] = []
    for network_name in networks:
        network = NETWORKS[network_name]
        n0 = scaled_n0(network.n0, n0_scale)
        for label, factory in defense_factories.items():
            for t_rate in t_rates:
                row = run_point(
                    factory,
                    network,
                    t_rate,
                    horizon=horizon,
                    seed=seed,
                    n0=n0,
                )
                row.defense = label
                rows.append(row)
    return rows
