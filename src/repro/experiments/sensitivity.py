"""Seed sensitivity: are the figures' error bars really negligible?

The paper reports "we omit error bars since they are negligible"
(Section 10.1).  This experiment re-runs representative Figure-8 points
across independent seeds and reports the spread (max/min ratio and the
relative standard deviation of A), validating that claim for the
reproduction.  Run:

    python -m repro.experiments.sensitivity [--quick]
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.analysis.plotting import format_table
from repro.analysis.stats import max_ratio_spread
from repro.baselines.ccom import CCom
from repro.churn.datasets import NETWORKS
from repro.core.ergo import Ergo
from repro.experiments.config import scaled_n0
from repro.experiments.report import results_path
from repro.experiments.runner import run_point
from repro.resilience import atomic_write_text


@dataclass
class SensitivityConfig:
    network: str = "gnutella"
    t_rates: List[float] = field(default_factory=lambda: [2.0**8, 2.0**16])
    seeds: List[int] = field(default_factory=lambda: [11, 22, 33, 44, 55])
    horizon: float = 4_000.0
    n0_scale: float = 1.0

    @classmethod
    def quick(cls) -> "SensitivityConfig":
        return cls(seeds=[11, 22, 33], horizon=400.0, n0_scale=0.1)


@dataclass
class SensitivityRow:
    defense: str
    t_rate: float
    runs: int
    mean_a: float
    rel_std: float
    spread: float  # max/min

    @property
    def negligible(self) -> bool:
        """The paper's claim, quantified: under 10% relative std."""
        return self.rel_std < 0.10


def run(config: SensitivityConfig) -> List[SensitivityRow]:
    network = NETWORKS[config.network]
    n0 = scaled_n0(network.n0, config.n0_scale)
    factories: Dict[str, Callable] = {"ERGO": Ergo, "CCOM": CCom}
    rows: List[SensitivityRow] = []
    for label, factory in factories.items():
        for t_rate in config.t_rates:
            rates = []
            for seed in config.seeds:
                point = run_point(
                    factory,
                    network,
                    t_rate,
                    horizon=config.horizon,
                    seed=seed,
                    n0=n0,
                )
                rates.append(point.good_spend_rate)
            mean = sum(rates) / len(rates)
            variance = sum((r - mean) ** 2 for r in rates) / len(rates)
            rows.append(
                SensitivityRow(
                    defense=label,
                    t_rate=t_rate,
                    runs=len(rates),
                    mean_a=mean,
                    rel_std=math.sqrt(variance) / mean if mean > 0 else 0.0,
                    spread=max_ratio_spread(rates),
                )
            )
    return rows


def render(rows: List[SensitivityRow]) -> str:
    headers = ["defense", "T", "runs", "mean A", "rel std", "max/min", "negligible"]
    data = [
        [
            r.defense,
            r.t_rate,
            r.runs,
            r.mean_a,
            r.rel_std,
            r.spread,
            "yes" if r.negligible else "NO",
        ]
        for r in rows
    ]
    title = "Seed sensitivity of the spend-rate measurements"
    return "\n".join([title, "=" * len(title), "", format_table(headers, data)])


def main(argv: List[str] = None) -> List[SensitivityRow]:
    args = argv if argv is not None else sys.argv[1:]
    config = SensitivityConfig.quick() if "--quick" in args else SensitivityConfig()
    rows = run(config)
    text = render(rows)
    atomic_write_text(results_path("sensitivity.txt"), text + "\n")
    print(text)
    return rows


if __name__ == "__main__":
    main()
