"""Rendering and persistence for experiment outputs."""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.analysis.plotting import ascii_loglog_plot, format_table, series_to_csv
from repro.experiments.runner import SweepResult
from repro.resilience import atomic_write_text

#: Default output directory (created on demand).
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "results")


def results_path(filename: str, results_dir: Optional[str] = None) -> str:
    directory = results_dir if results_dir is not None else RESULTS_DIR
    directory = os.path.abspath(directory)
    os.makedirs(directory, exist_ok=True)
    return os.path.join(directory, filename)


def rows_to_table(rows: List[SweepResult]) -> str:
    """The standard A-vs-T results table."""
    headers = ["network", "defense", "T", "A", "A/T", "max_bad", "defid_ok"]
    data = []
    for row in rows:
        ratio = row.good_spend_rate / row.t_rate if row.t_rate > 0 else float("nan")
        data.append(
            [
                row.network,
                row.defense,
                row.t_rate,
                row.good_spend_rate,
                ratio,
                row.max_bad_fraction,
                "yes" if row.maintains_defid else "NO",
            ]
        )
    return format_table(headers, data)


def rows_to_series(
    rows: List[SweepResult], network: str, cutoff_invalid: bool = True
) -> Dict[str, List[tuple]]:
    """Per-defense (T, A) series for one network.

    ``cutoff_invalid`` drops points where the defense failed to keep the
    bad fraction under 1/6 -- this is how Figure 8 truncates the
    SybilControl curve ("we cut off the plot of SybilControl when the
    algorithm can no longer ensure that the fraction of bad IDs is less
    than 1/6").
    """
    series: Dict[str, List[tuple]] = {}
    for row in rows:
        if row.network != network:
            continue
        if cutoff_invalid and not row.maintains_defid:
            continue
        series.setdefault(row.defense, []).append((row.t_rate, row.good_spend_rate))
    for pts in series.values():
        pts.sort()
    return series


def render_figure(
    rows: List[SweepResult],
    networks: List[str],
    title: str,
) -> str:
    """Tables + per-network ASCII log-log plots."""
    chunks = [title, "=" * len(title), "", rows_to_table(rows), ""]
    for network in networks:
        series = rows_to_series(rows, network)
        if not series:
            continue
        chunks.append(
            ascii_loglog_plot(
                series,
                title=f"{title} -- {network}",
                xlabel="adversary spend rate T",
                ylabel="good spend rate A",
            )
        )
    return "\n".join(chunks)


def save_figure(
    rows: List[SweepResult],
    networks: List[str],
    name: str,
    title: str,
    results_dir: Optional[str] = None,
) -> str:
    """Write the rendered text and the CSV; return the rendered text.

    Both files are written atomically (temp + rename), so a sweep
    killed mid-save never leaves a torn ``results/`` artifact behind.
    """
    text = render_figure(rows, networks, title)
    atomic_write_text(results_path(f"{name}.txt", results_dir), text + "\n")
    all_series: Dict[str, List[tuple]] = {}
    for network in networks:
        for defense, pts in rows_to_series(rows, network, cutoff_invalid=False).items():
            all_series[f"{network}/{defense}"] = pts
    csv_text = series_to_csv(all_series, x_name="T")
    atomic_write_text(results_path(f"{name}.csv", results_dir), csv_text)
    return text
