"""Process-parallel sweep execution.

The paper's headline figures are Cartesian sweeps (networks x defenses x
21 attack rates, 10,000 simulated seconds each).  Every point is an
independent simulation, so the sweep layer is embarrassingly parallel:
this module fans picklable :class:`PointSpec` descriptions out over the
fault-tolerant runtime (:mod:`repro.experiments.runtime` -- per-point
futures on a ``ProcessPoolExecutor`` with crash recovery, retry/backoff,
per-point timeouts, and checkpoint/resume) and collects
:class:`~repro.experiments.runner.SweepResult` rows back **in
submission order**, so a parallel sweep is row-for-row identical to a
serial one.

Design constraints:

* **Picklability.**  Defense factories are usually closures over a
  config (not picklable), so workers rebuild them: a *factory provider*
  -- a module-level callable such as ``figure8.defense_factories`` --
  is pickled by reference together with its (dataclass) argument, and
  each worker calls it to materialize the ``{label: factory}`` dict.
* **Determinism.**  Each point's seed is derived from the experiment
  seed and the point's coordinates via SHA-256 (:func:`derive_seed`),
  never from worker identity or scheduling order.  ``jobs=1`` runs the
  exact same specs serially in the same order, producing bit-identical
  rows.
* **Serial fallback.**  ``jobs=1`` (the library default) never touches
  multiprocessing, so tests and nested callers pay zero overhead.

``--jobs N`` on the experiment CLIs routes here; the CLI default is
``os.cpu_count()`` (:func:`resolve_jobs`).
"""

from __future__ import annotations

import hashlib
import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.adversary.strategies import GreedyJoinAdversary, LowerBoundAdversary
from repro.churn.datasets import NETWORKS
from repro.experiments.config import scaled_n0
from repro.experiments.runner import SweepResult, run_point

#: Named adversary factories a :class:`PointSpec` can reference (the
#: spec must stay picklable, so it carries a key instead of a callable).
#: ``None`` in the spec means "strongest implemented attack for the
#: defense" (:func:`repro.experiments.runner.adversary_for`).
ADVERSARIES: Dict[str, Callable[[float], Adversary]] = {
    "greedy": lambda t: GreedyJoinAdversary(rate=t),
    "lower-bound": lambda t: LowerBoundAdversary(rate=t),
}


@dataclass(frozen=True)
class PointSpec:
    """One picklable (network, defense, T) sweep point."""

    network: str
    defense: str
    t_rate: float
    seed: int
    horizon: float
    n0: Optional[int] = None
    #: key into :data:`ADVERSARIES`; ``None`` = defense-appropriate default
    adversary: Optional[str] = None


def derive_seed(base_seed: int, *coords) -> int:
    """A per-point seed, stable across processes and Python versions.

    Hashes the experiment seed together with the point coordinates
    (network, defense, T, ...) so that every sweep point gets an
    independent RNG stream, yet re-running the sweep -- serially or in
    any parallel schedule -- reproduces it exactly.
    """
    text = ":".join([str(int(base_seed))] + [str(c) for c in coords])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request (``None``/``0`` = all cores)."""
    if jobs is None or jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return int(jobs)


def parse_jobs(args: Sequence[str]) -> int:
    """Extract ``--jobs N`` / ``--jobs=N`` from CLI args (default: all cores)."""
    args = list(args)
    for i, arg in enumerate(args):
        if arg == "--jobs":
            if i + 1 >= len(args):
                raise SystemExit("--jobs requires a value")
            value = args[i + 1]
        elif arg.startswith("--jobs="):
            value = arg.split("=", 1)[1]
        else:
            continue
        try:
            return resolve_jobs(int(value))
        except ValueError:
            raise SystemExit(f"--jobs expects an integer, got {value!r}")
    return resolve_jobs(None)


def factories_from_dict(factories: Dict[str, Callable]) -> Dict[str, Callable]:
    """Provider for callers that already hold a picklable factory dict."""
    return factories


def run_spec(
    spec: PointSpec,
    factory_provider: Callable,
    provider_arg=None,
) -> SweepResult:
    """Simulate one sweep point (this is the worker-side entry point)."""
    factories = (
        factory_provider(provider_arg)
        if provider_arg is not None
        else factory_provider()
    )
    adversary_factory = ADVERSARIES[spec.adversary] if spec.adversary else None
    row = run_point(
        factories[spec.defense],
        NETWORKS[spec.network],
        spec.t_rate,
        horizon=spec.horizon,
        seed=spec.seed,
        n0=spec.n0,
        adversary_factory=adversary_factory,
    )
    row.defense = spec.defense
    return row


def build_sweep_specs(
    networks: Sequence[str],
    defenses: Sequence[str],
    t_rates: Sequence[float],
    horizon: float,
    seed: int,
    n0_scale: float = 1.0,
    adversary: Optional[str] = None,
) -> List[PointSpec]:
    """The Cartesian product the figure sweeps run, as picklable specs."""
    specs: List[PointSpec] = []
    for network_name in networks:
        n0 = scaled_n0(NETWORKS[network_name].n0, n0_scale)
        for label in defenses:
            for t_rate in t_rates:
                specs.append(
                    PointSpec(
                        network=network_name,
                        defense=label,
                        t_rate=float(t_rate),
                        seed=derive_seed(seed, network_name, label, float(t_rate)),
                        horizon=horizon,
                        n0=n0,
                        adversary=adversary,
                    )
                )
    return specs


def execute(
    specs: Sequence[PointSpec],
    factory_provider: Callable,
    provider_arg=None,
    jobs: int = 1,
    policy=None,
) -> List[SweepResult]:
    """Run every spec, in order, optionally across worker processes."""
    return execute_report(
        specs, factory_provider, provider_arg, jobs=jobs, policy=policy
    ).rows


def execute_report(
    specs: Sequence[PointSpec],
    factory_provider: Callable,
    provider_arg=None,
    jobs: int = 1,
    policy=None,
):
    """Like :func:`execute`, returning the runtime's full ``RunReport``
    (failure rows, retry/rebuild counts, checkpoint accounting)."""
    tasks = [(spec, factory_provider, provider_arg) for spec in specs]
    return map_report(run_spec, tasks, jobs=jobs, star=True, policy=policy)


def default_chunksize(n_items: int, jobs: int) -> int:
    """Points per IPC round-trip under the *legacy* chunked submission.

    The fault-tolerant runtime submits one future per point -- the
    unit of retry, timeout, and checkpointing -- so this sizing rule no
    longer drives submission; it is kept for callers that batch items
    themselves before handing them to :func:`parallel_map`.
    """
    return max(1, math.ceil(n_items / (jobs * 4)))


def parallel_map(
    fn: Callable,
    items: Sequence,
    jobs: int = 1,
    star: bool = False,
    chunksize: Optional[int] = None,
    policy=None,
) -> List:
    """Order-preserving (optionally process-parallel) map.

    For experiment harnesses whose per-point result is not a
    :class:`SweepResult` (figure 9 cells, ablations).  ``fn`` must be a
    module-level callable and every item picklable; ``star=True``
    unpacks each item as ``fn(*item)``.

    Execution is delegated to the fault-tolerant runtime
    (:mod:`repro.experiments.runtime`): one future per point, pool
    rebuild on worker crash, deterministic retry/backoff, and -- when
    ``policy`` asks for them -- per-point timeouts and checkpoint/
    resume.  ``chunksize`` is accepted for backwards compatibility but
    no longer affects submission (per-point futures are the retry and
    checkpoint unit).
    """
    del chunksize  # legacy knob: the runtime submits per point
    return map_report(fn, items, jobs=jobs, star=star, policy=policy).rows


def map_report(
    fn: Callable,
    items: Sequence,
    jobs: int = 1,
    star: bool = False,
    policy=None,
    on_row=None,
    on_snapshot=None,
):
    """:func:`parallel_map` returning the runtime's full ``RunReport``.

    ``on_row(index, row)`` is forwarded to the runtime: it fires on the
    coordinator as each row lands (including resumed rows), the hook
    incremental persistence rides on.  ``on_snapshot(index, snapshot)``
    enables intra-point telemetry (``fn`` must then accept an
    ``emit_snapshot`` keyword); see
    :func:`repro.experiments.runtime.run_tasks`.
    """
    from repro.experiments import runtime

    jobs = min(resolve_jobs(jobs), max(1, len(items)))
    return runtime.run_tasks(
        fn, items, jobs=jobs, star=star, policy=policy, on_row=on_row,
        on_snapshot=on_snapshot,
    )
