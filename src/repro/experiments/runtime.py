"""Fault-tolerant execution runtime for sweeps.

The figure sweeps and the scenario catalog are hours-long Cartesian
products of independent points; before this module, one worker crash
(``BrokenProcessPool``), one hung simulation, or one Ctrl-C lost the
whole run with nothing persisted.  :func:`run_tasks` wraps the
deterministic executor in four recovery layers:

* **Pool rebuild.**  Per-point future submission (never ``pool.map``)
  means a dead worker breaks only the executor, not the bookkeeping:
  the pool is rebuilt and in-flight points are requeued.  A point that
  was in flight across a pool break is charged one attempt (the
  coordinator cannot tell the crasher from its neighbours -- the
  "suspicion" scheme), so a deterministically crashing point exhausts
  its retry budget instead of wedging the sweep forever.
* **Retry with deterministic backoff.**  Failed points retry up to
  ``max_retries`` times with capped exponential backoff whose jitter
  is SHA-256-derived from the point's coordinate digest
  (:func:`repro.resilience.backoff_delay`) -- re-running an injected
  fault schedule reproduces the retry timeline exactly.
* **Per-point wall-clock timeouts.**  With ``point_timeout`` set, an
  attempt that overruns is charged and its worker killed (the whole
  pool is torn down and rebuilt -- ``ProcessPoolExecutor`` cannot kill
  one worker); other in-flight points are requeued *uncharged*, and
  any that finished in the meantime are harvested, so a hang never
  costs a neighbour its result.
* **Checkpoint/resume.**  Every completed row is journaled to a
  per-run checkpoint file, rewritten atomically (temp + rename) so a
  kill at any instant leaves a loadable checkpoint.  ``resume=True``
  skips finished points; because per-point seeds are derived from
  coordinates, a killed-then-resumed sweep produces rows
  byte-identical to an uninterrupted one.  The checkpoint is keyed to
  a fingerprint of the task list, so resuming a *different* sweep
  fails loudly instead of splicing foreign rows.

Determinism: rows are keyed by submission index and reassembled in
submission order, so scheduling, retries, rebuilds, and resumes are
all invisible in the output.  Failures that survive the retry budget
become structured :class:`FailureRow` records (``on_failure="collect"``)
or re-raise the terminal exception (``"raise"``, the library default).

``KeyboardInterrupt`` flushes the checkpoint, cancels outstanding
futures, and surfaces as :class:`SweepInterrupted` (a
``KeyboardInterrupt`` subclass) carrying the checkpoint path, so CLIs
print a resume command instead of a stack trace.

Fault injection (:mod:`repro.faults`) hooks the worker entry point:
every recovery path above is exercised in CI by spec strings such as
``crash@3;hang@2:30``, with zero wall-clock nondeterminism.
"""

from __future__ import annotations

import base64
import hashlib
import os
import pickle
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import faults
from repro.resilience import BackoffPolicy, atomic_write_text, backoff_delay

#: Pickle protocol pinned for checkpoint rows and task fingerprints
#: (stable across the supported CPython versions).
PICKLE_PROTOCOL = 4

CHECKPOINT_VERSION = 1


class CheckpointMismatch(RuntimeError):
    """A checkpoint written by a different sweep than the one resuming."""


class PointTimeout(RuntimeError):
    """A point's attempt exceeded the configured wall-clock timeout."""


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C during a sweep, after a graceful shutdown.

    Subclasses ``KeyboardInterrupt`` so callers that do not know about
    the runtime still treat it as an interrupt; CLIs catch it to print
    the resume command (:meth:`summary`) instead of a traceback.
    """

    def __init__(self, checkpoint: Optional[str], done: int, total: int) -> None:
        self.checkpoint = checkpoint
        self.done = done
        self.total = total
        super().__init__(self.summary())

    def summary(self) -> str:
        if self.checkpoint:
            return (
                f"interrupted: {self.done}/{self.total} points checkpointed "
                f"at {self.checkpoint}; re-run the same command with "
                f"--resume to continue"
            )
        return (
            f"interrupted: {self.done}/{self.total} points completed "
            f"(no checkpoint configured; re-run starts from scratch)"
        )


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a sweep behaves under failure.

    The default policy (used whenever a caller passes ``policy=None``)
    retries twice with sub-second backoff, enforces no timeout, writes
    no checkpoint, and re-raises a point's terminal exception --
    library callers see the old executor's semantics plus crash
    resilience.  The CLIs build a policy from ``--resume``,
    ``--max-retries``, ``--point-timeout`` and ``--fault-spec``
    (:func:`cli_policy`) with ``on_failure="collect"`` so a bad point
    becomes a structured failure row instead of aborting the sweep.
    """

    #: retries after the first attempt (total tries = max_retries + 1)
    max_retries: int = 2
    #: per-attempt wall-clock limit in seconds (None = unlimited;
    #: enforced only when worker processes are in play, i.e. jobs > 1)
    point_timeout: Optional[float] = None
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    #: per-run checkpoint file (None = no journaling)
    checkpoint: Optional[str] = None
    #: load the checkpoint and skip already-completed points
    resume: bool = False
    #: fault spec consulted by workers (None falls back to
    #: ``$REPRO_FAULT_SPEC``); see :mod:`repro.faults`
    fault_spec: Optional[str] = None
    #: "raise": re-raise a point's terminal error (library default);
    #: "collect": record a FailureRow and keep sweeping (CLI default)
    on_failure: str = "raise"
    #: run every point with span-level cost attribution
    #: (:mod:`repro.profiling`): sweep entry points that honor this
    #: (``run_catalog``) attach a ``"profile"`` breakdown to each row.
    #: Metrics stay byte-identical either way.
    profile: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ValueError("point_timeout must be positive seconds")
        if self.on_failure not in ("raise", "collect"):
            raise ValueError("on_failure must be 'raise' or 'collect'")

    def resolved_fault_spec(self) -> Optional[str]:
        spec = self.fault_spec if self.fault_spec else faults.env_fault_spec()
        if spec:
            faults.parse_fault_spec(spec)  # fail fast on the coordinator
        return spec


@dataclass(frozen=True)
class FailureRow:
    """One point that exhausted its retry budget."""

    index: int
    point: str
    attempts: int
    error: str
    duration_s: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "point": self.point,
            "attempts": self.attempts,
            "error": self.error,
            "duration_s": self.duration_s,
        }


@dataclass
class RunReport:
    """Everything :func:`run_tasks` knows when the sweep ends."""

    #: one slot per item, in submission order; ``None`` where a point
    #: failed permanently (only possible with ``on_failure="collect"``)
    rows: List[Any]
    failures: List[FailureRow] = field(default_factory=list)
    #: rows loaded from the checkpoint instead of recomputed
    resumed: int = 0
    #: attempts beyond each point's first (sum over points)
    retries: int = 0
    #: process pools torn down and rebuilt (crash or timeout)
    pool_rebuilds: int = 0
    checkpoint_path: Optional[str] = None
    #: wall-clock seconds spent journaling rows to the checkpoint
    checkpoint_flush_s: float = 0.0

    @property
    def completed(self) -> List[Any]:
        """Rows that exist (failed points dropped, order preserved)."""
        return [row for row in self.rows if row is not None]


# ----------------------------------------------------------------------
# task identity
# ----------------------------------------------------------------------
def _item_digest(item: Any) -> str:
    """A stable coordinate digest for one task item.

    Pickle bytes are the primary identity (stable for the dataclass /
    tuple / scalar items the sweeps use); unpicklable items -- only
    possible on the serial path -- fall back to ``repr``.
    """
    try:
        payload = pickle.dumps(item, protocol=PICKLE_PROTOCOL)
    except Exception:  # lint: allow[broad-except] -- arbitrary __reduce__ can raise anything; repr fallback is always safe
        payload = repr(item).encode("utf-8", "replace")
    return hashlib.sha256(payload).hexdigest()


def _point_label(item: Any, star: bool) -> str:
    """A short human-readable name for a point (failure rows, logs)."""
    # Star-called items are argument tuples; the first argument is the
    # point spec in every sweep here, and the trailing provider/config
    # arguments just repeat per-sweep constants.
    subject = item[0] if star and isinstance(item, tuple) and item else item
    text = repr(subject)
    return text if len(text) <= 120 else text[:117] + "..."


def fingerprint_tasks(fn: Callable, items: Sequence, star: bool,
                      digests: Sequence[str]) -> str:
    """Identity of a task list, for checkpoint compatibility checks."""
    acc = hashlib.sha256()
    acc.update(f"{getattr(fn, '__module__', '?')}."
               f"{getattr(fn, '__qualname__', repr(fn))}".encode())
    acc.update(b"*" if star else b".")
    acc.update(str(len(items)).encode())
    for digest in digests:
        acc.update(digest.encode())
    return acc.hexdigest()


# ----------------------------------------------------------------------
# checkpoint journal
# ----------------------------------------------------------------------
class Checkpoint:
    """An atomically-rewritten journal of completed rows.

    The file is a single JSON document -- header (version, task-list
    fingerprint, total points) plus a ``rows`` map from point index to
    the base64 of the row's pickle -- rewritten through
    :func:`repro.resilience.atomic_write_text` after every harvest, so
    a kill at any instant leaves either the previous or the next
    complete journal, never a torn one.  Pickling the rows (rather
    than JSON-ing them) makes resume loss-free: a resumed row is the
    *same value* the worker returned, so resumed output is
    byte-identical to an uninterrupted run.
    """

    def __init__(self, path: Union[str, Path], fingerprint: str,
                 total: int) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.total = total
        self._encoded: Dict[int, str] = {}
        self._dirty = False
        self.flush_seconds = 0.0

    def load_resume(self) -> Dict[int, Any]:
        """Rows from an existing checkpoint (empty when starting fresh).

        Raises :class:`CheckpointMismatch` when the file belongs to a
        different task list -- resuming must never splice rows from
        another sweep.
        """
        import json

        if not self.path.exists():
            return {}
        with open(self.path) as handle:
            doc = json.load(handle)
        if doc.get("version") != CHECKPOINT_VERSION:
            raise CheckpointMismatch(
                f"checkpoint {self.path} has version {doc.get('version')!r}, "
                f"expected {CHECKPOINT_VERSION}; delete it to start fresh"
            )
        if doc.get("fingerprint") != self.fingerprint or (
            doc.get("total") != self.total
        ):
            raise CheckpointMismatch(
                f"checkpoint {self.path} was written by a different sweep "
                f"(task list changed); delete it or run without --resume"
            )
        rows: Dict[int, Any] = {}
        for key, blob in doc.get("rows", {}).items():
            index = int(key)
            self._encoded[index] = blob
            rows[index] = pickle.loads(base64.b64decode(blob))
        return rows

    def record(self, index: int, row: Any) -> None:
        start = time.perf_counter()
        blob = base64.b64encode(
            pickle.dumps(row, protocol=PICKLE_PROTOCOL)
        ).decode("ascii")
        self._encoded[index] = blob
        self._dirty = True
        self.flush_seconds += time.perf_counter() - start

    def flush(self, force: bool = False) -> None:
        import json

        if not self._dirty and not force:
            return
        start = time.perf_counter()
        doc = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "total": self.total,
            "rows": {str(i): self._encoded[i] for i in sorted(self._encoded)},
        }
        atomic_write_text(self.path, json.dumps(doc))
        self._dirty = False
        self.flush_seconds += time.perf_counter() - start

    def remove(self) -> None:
        self.path.unlink(missing_ok=True)


def checkpoint_dir() -> str:
    """Where checkpoint journals live.

    ``$REPRO_CHECKPOINT_DIR`` when set (mirroring ``$REPRO_TRACE_DIR``
    for the trace cache -- the service points this at its data
    directory so per-job journals never land in the CWD), otherwise
    ``results/checkpoints/``.  Created on demand.
    """
    env = os.environ.get("REPRO_CHECKPOINT_DIR")
    if env:
        directory = os.path.abspath(env)
    else:
        from repro.experiments.report import results_path

        directory = os.path.dirname(results_path(
            os.path.join("checkpoints", "_")
        ))
    os.makedirs(directory, exist_ok=True)
    return directory


def default_checkpoint_path(name: str) -> str:
    """``<checkpoint_dir()>/<name>.ckpt`` (the CLI convention)."""
    return os.path.join(checkpoint_dir(), f"{name}.ckpt")


# ----------------------------------------------------------------------
# worker entry
# ----------------------------------------------------------------------
@dataclass
class SnapshotBundle:
    """A worker-side result carrying its point's telemetry snapshots.

    Process-pool workers cannot call the coordinator's ``on_snapshot``
    directly, so they collect snapshots and ship them over the existing
    result channel alongside the row; :meth:`_SweepState.harvest`
    unwraps the bundle, delivering the snapshots *before* the row (a
    row's arrival means the point is done) and journaling only the bare
    row -- checkpoints stay byte-identical to snapshot-free runs.
    """

    row: Any
    snapshots: List[Any] = field(default_factory=list)


def _run_task(fn: Callable, item: Any, star: bool, index: int, attempt: int,
              fault_spec: Optional[str], digest: str,
              snapshots=None):
    """Execute one point in a worker (module-level, so it pickles).

    ``snapshots`` selects the telemetry mode: ``None`` calls ``fn``
    exactly as before; ``"collect"`` (the process-pool mode) passes a
    list-appending ``emit_snapshot`` kwarg and wraps the result in a
    :class:`SnapshotBundle`; a callable (the in-process serial mode) is
    passed through as ``emit_snapshot`` so snapshots reach the
    coordinator live, while the point is still running.
    """
    faults.inject(fault_spec, index, digest, attempt)
    if snapshots is None:
        return fn(*item) if star else fn(item)
    if snapshots == "collect":
        bag: List[Any] = []
        row = (
            fn(*item, emit_snapshot=bag.append) if star
            else fn(item, emit_snapshot=bag.append)
        )
        return SnapshotBundle(row=row, snapshots=bag)
    row = (
        fn(*item, emit_snapshot=snapshots) if star
        else fn(item, emit_snapshot=snapshots)
    )
    return row


# ----------------------------------------------------------------------
# the runtime
# ----------------------------------------------------------------------
class _SweepState:
    """Mutable coordinator bookkeeping shared by the loop helpers."""

    def __init__(self, fn, items, star, policy, jobs, on_row=None,
                 on_snapshot=None):
        self.fn = fn
        self.items = items
        self.star = star
        self.policy = policy
        self.jobs = jobs
        self.on_row = on_row
        self.on_snapshot = on_snapshot
        self.digests = [_item_digest(item) for item in items]
        self.fault_spec = policy.resolved_fault_spec()
        self.report = RunReport(rows=[None] * len(items))
        self.attempts: Dict[int, int] = {}
        #: monotonic time each pending index becomes submittable
        self.eligible: Dict[int, float] = {}
        self.pending: List[int] = []
        self.checkpoint: Optional[Checkpoint] = None

    def tries(self, index: int) -> int:
        """Attempts charged so far, i.e. the next attempt is tries+1."""
        return self.attempts.get(index, 0)

    def harvest(self, index: int, row: Any) -> None:
        if isinstance(row, SnapshotBundle):
            if self.on_snapshot is not None:
                for snap in row.snapshots:
                    self.on_snapshot(index, snap)
            row = row.row
        self.report.rows[index] = row
        if self.checkpoint is not None:
            self.checkpoint.record(index, row)
        if self.on_row is not None:
            self.on_row(index, row)

    def charge(self, index: int, error: BaseException, error_text: str,
               duration: float) -> None:
        """One failed attempt: schedule a retry or fail permanently."""
        self.attempts[index] = self.tries(index) + 1
        if self.attempts[index] > self.policy.max_retries:
            self.fail(index, error, error_text, duration)
            return
        self.report.retries += 1
        delay = backoff_delay(
            self.policy.backoff, self.digests[index], self.attempts[index]
        )
        self.eligible[index] = time.monotonic() + delay
        self.pending.append(index)

    def fail(self, index: int, error: BaseException, error_text: str,
             duration: float) -> None:
        if self.policy.on_failure == "raise":
            raise error
        self.report.failures.append(
            FailureRow(
                index=index,
                point=_point_label(self.items[index], self.star),
                attempts=self.attempts[index],
                error=error_text,
                duration_s=round(duration, 3),
            )
        )

    def requeue(self, index: int) -> None:
        """Put an index back without charging it (lost to a pool kill)."""
        self.eligible[index] = 0.0
        self.pending.append(index)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, escalating to SIGKILL for stuck workers."""
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in procs:
        proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)


def _drain_in_flight(
    state: _SweepState,
    in_flight: Dict[Future, Tuple[int, float]],
    charged: Set[int],
    error: BaseException,
    error_text: str,
) -> None:
    """Classify every in-flight future after a pool kill/break.

    Futures that actually finished are harvested (a pool break must
    never discard a computed row); indices in ``charged`` are billed an
    attempt; the rest requeue uncharged.
    """
    now = time.monotonic()
    for fut, (index, started) in in_flight.items():
        if fut.done() and not fut.cancelled() and fut.exception() is None:
            state.harvest(index, fut.result())
        elif index in charged:
            state.charge(index, error, error_text, now - started)
        else:
            state.requeue(index)
    in_flight.clear()


def _parallel_loop(state: _SweepState) -> None:
    policy = state.policy
    pool = ProcessPoolExecutor(max_workers=state.jobs)
    in_flight: Dict[Future, Tuple[int, float]] = {}
    if policy.point_timeout is None:
        tick = 0.25
    else:
        tick = max(0.01, min(0.25, policy.point_timeout / 4.0))
    try:
        while state.pending or in_flight:
            now = time.monotonic()
            # Submit eligible points, lowest index first, one per free
            # worker.  Capping in-flight at ``jobs`` keeps submit time
            # ~= start time, which is what makes the wall-clock timeout
            # measure *execution*, not queueing.
            state.pending.sort()
            rebuilt = False
            for index in list(state.pending):
                if len(in_flight) >= state.jobs:
                    break
                if state.eligible.get(index, 0.0) > now:
                    continue
                try:
                    fut = pool.submit(
                        _run_task, state.fn, state.items[index], state.star,
                        index, state.tries(index) + 1, state.fault_spec,
                        state.digests[index],
                        "collect" if state.on_snapshot is not None else None,
                    )
                except BrokenProcessPool as exc:
                    # The pool died between harvests; rebuild and let
                    # the drain below charge the in-flight points.
                    state.report.pool_rebuilds += 1
                    _drain_in_flight(
                        state, in_flight, {i for i, _ in in_flight.values()},
                        exc, "worker crashed (process pool broken)",
                    )
                    _kill_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=state.jobs)
                    rebuilt = True
                    break
                state.pending.remove(index)
                in_flight[fut] = (index, time.monotonic())
            if rebuilt:
                continue

            if not in_flight:
                # Everyone left is backing off: sleep to the earliest
                # eligibility instead of spinning.
                wake = min(state.eligible[i] for i in state.pending)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue

            done, _ = wait(
                list(in_flight), timeout=tick, return_when=FIRST_COMPLETED
            )
            broken: Optional[BaseException] = None
            for fut in done:
                index, started = in_flight.pop(fut)
                try:
                    row = fut.result()
                except BrokenProcessPool as exc:
                    in_flight[fut] = (index, started)  # handle as a unit
                    broken = exc
                    break
                except KeyboardInterrupt:
                    raise
                except BaseException as exc:  # lint: allow[broad-except] -- worker faults (incl. SystemExit) become structured failure rows
                    state.charge(
                        index, exc, f"{type(exc).__name__}: {exc}",
                        time.monotonic() - started,
                    )
                else:
                    state.harvest(index, row)

            if broken is not None:
                # One dead worker fails *every* in-flight future; the
                # culprit is unknowable, so each unfinished point is
                # charged one attempt (bounded suspicion), finished
                # ones are harvested, and the pool is rebuilt.
                state.report.pool_rebuilds += 1
                _drain_in_flight(
                    state, in_flight, {i for i, _ in in_flight.values()},
                    broken, "worker crashed (process pool broken)",
                )
                _kill_pool(pool)
                pool = ProcessPoolExecutor(max_workers=state.jobs)
                continue

            if state.checkpoint is not None:
                state.checkpoint.flush()

            if policy.point_timeout is not None:
                now = time.monotonic()
                expired = {
                    index
                    for fut, (index, started) in in_flight.items()
                    if not fut.done() and now - started >= policy.point_timeout
                }
                if expired:
                    # ProcessPoolExecutor cannot kill one worker, so a
                    # stuck point costs the whole pool; unexpired
                    # neighbours requeue uncharged.
                    state.report.pool_rebuilds += 1
                    timeout_exc = PointTimeout(
                        f"point exceeded --point-timeout "
                        f"{policy.point_timeout:g}s"
                    )
                    _drain_in_flight(
                        state, in_flight, expired, timeout_exc,
                        f"timed out after {policy.point_timeout:g}s",
                    )
                    _kill_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=state.jobs)
    finally:
        _kill_pool(pool)


def _serial_loop(state: _SweepState) -> None:
    policy = state.policy
    on_snapshot = state.on_snapshot
    for index in list(state.pending):
        state.pending.remove(index)
        if on_snapshot is None:
            emit = None
        else:
            # In-process: snapshots reach the coordinator live, while
            # the point is still running (this is what feeds the
            # service's per-job stream and the CLI progress line).
            emit = lambda snap, _i=index: on_snapshot(_i, snap)  # noqa: E731
        while True:
            attempt = state.tries(index) + 1
            started = time.perf_counter()
            try:
                row = _run_task(
                    state.fn, state.items[index], state.star, index, attempt,
                    state.fault_spec, state.digests[index], emit,
                )
            except KeyboardInterrupt:
                raise
            except BaseException as exc:  # lint: allow[broad-except] -- injected faults raise SystemExit-grade errors; charge() owns the budget
                duration = time.perf_counter() - started
                before = len(state.report.failures)
                state.charge(
                    index, exc, f"{type(exc).__name__}: {exc}", duration
                )
                if len(state.report.failures) > before:
                    break  # collected a permanent failure; next point
                state.pending.remove(index)  # charge() requeued it
                delay = state.eligible[index] - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            else:
                state.harvest(index, row)
                if state.checkpoint is not None:
                    state.checkpoint.flush()
                break


@contextmanager
def _sigterm_as_interrupt():
    """Treat SIGTERM like Ctrl-C for the duration of a sweep.

    ``kill <pid>`` (and the service's drain path) must never strand a
    half-written checkpoint journal: the handler raises
    ``KeyboardInterrupt``, which the sweep's existing interrupt path
    turns into a flushed journal plus a :class:`SweepInterrupted`
    carrying the ``--resume`` hint.  Signal handlers can only be
    installed from the main thread (the service runs sweeps from
    supervisor worker threads and owns SIGTERM itself), so anywhere
    else this is a no-op.  The previous handler is restored on exit.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum, frame):
        raise KeyboardInterrupt

    previous = signal.getsignal(signal.SIGTERM)
    signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def run_tasks(
    fn: Callable,
    items: Sequence,
    *,
    jobs: int = 1,
    star: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    on_row: Optional[Callable[[int, Any], None]] = None,
    on_snapshot: Optional[Callable[[int, Any], None]] = None,
) -> RunReport:
    """Run every item through ``fn`` under the fault-tolerance policy.

    Returns a :class:`RunReport` whose ``rows`` are in submission
    order regardless of scheduling, retries, pool rebuilds, or resume.
    ``jobs <= 1`` (or a single item) runs serially in-process: retry,
    checkpoint, resume, and fault injection all still apply, but
    ``point_timeout`` needs worker processes and is not enforced (an
    injected ``crash`` there exits the *calling* process -- which is
    exactly what the kill-mid-sweep tests use it for).

    ``on_row(index, row)`` is invoked on the coordinator as each row
    lands -- once per index, including rows restored by ``resume`` --
    so callers (the simulation service's sqlite store, live progress
    reporting) can persist results incrementally instead of waiting
    for the report.

    ``on_snapshot(index, snapshot)`` enables intra-point telemetry.
    When set, ``fn`` must accept an ``emit_snapshot`` keyword (a
    callable it hands to the engine's snapshot hook).  On the serial
    path snapshots are delivered *live*, while the point is running;
    on the process-pool path workers collect them and ship them with
    the row over the result channel, so they arrive -- in emission
    order, before ``on_row`` for that index -- when the point
    completes.  Rows restored by ``resume`` re-deliver no snapshots,
    and journaled rows are byte-identical to a snapshot-free run.
    """
    policy = policy if policy is not None else ExecutionPolicy()
    state = _SweepState(
        fn, list(items), star, policy, max(1, int(jobs)), on_row=on_row,
        on_snapshot=on_snapshot,
    )

    if policy.checkpoint is not None:
        state.checkpoint = Checkpoint(
            policy.checkpoint,
            fingerprint_tasks(fn, state.items, star, state.digests),
            total=len(state.items),
        )
        state.report.checkpoint_path = str(state.checkpoint.path)
        if policy.resume:
            for index, row in state.checkpoint.load_resume().items():
                state.report.rows[index] = row
                state.report.resumed += 1
                if on_row is not None:
                    on_row(index, row)
        else:
            state.checkpoint.remove()  # a fresh run replaces stale journals

    state.pending = [
        i for i in range(len(state.items)) if state.report.rows[i] is None
    ]
    state.eligible = {i: 0.0 for i in state.pending}

    try:
        if state.pending:
            with _sigterm_as_interrupt():
                if state.jobs == 1 or len(state.pending) == 1:
                    _serial_loop(state)
                else:
                    _parallel_loop(state)
    except KeyboardInterrupt:
        if state.checkpoint is not None:
            state.checkpoint.flush()
        done = sum(1 for row in state.report.rows if row is not None)
        raise SweepInterrupted(
            state.report.checkpoint_path, done, len(state.items)
        ) from None
    finally:
        if state.checkpoint is not None:
            state.checkpoint.flush()
            state.report.checkpoint_flush_s = state.checkpoint.flush_seconds

    if state.checkpoint is not None and not state.report.failures:
        # A fully-successful run needs no journal; failures keep it so
        # a --resume re-run retries only the failed points.
        state.checkpoint.remove()
    return state.report


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def cli_policy(
    args: List[str],
    name: str,
    on_failure: str = "collect",
) -> ExecutionPolicy:
    """Build a policy from the shared CLI flags (popped from ``args``).

    Flags: ``--resume``, ``--max-retries N``, ``--point-timeout S``,
    ``--fault-spec SPEC``, ``--no-checkpoint``.  The checkpoint
    defaults to ``results/checkpoints/<name>.ckpt``.
    """
    from repro.cliutil import pop_option

    resume = "--resume" in args
    while "--resume" in args:
        args.remove("--resume")
    no_checkpoint = "--no-checkpoint" in args
    while "--no-checkpoint" in args:
        args.remove("--no-checkpoint")
    max_retries = pop_option(args, "--max-retries")
    point_timeout = pop_option(args, "--point-timeout")
    fault_spec = pop_option(args, "--fault-spec")
    try:
        if fault_spec:
            faults.parse_fault_spec(fault_spec)  # reject typos before running
        return ExecutionPolicy(
            max_retries=int(max_retries) if max_retries is not None else 2,
            point_timeout=(
                float(point_timeout) if point_timeout is not None else None
            ),
            checkpoint=None if no_checkpoint else default_checkpoint_path(name),
            resume=resume,
            fault_spec=fault_spec,
            on_failure=on_failure,
        )
    except (ValueError, faults.FaultSpecError) as exc:
        raise SystemExit(str(exc))


@contextmanager
def exit_on_interrupt():
    """CLI guard: Ctrl-C prints the resume command, not a traceback."""
    try:
        yield
    except SweepInterrupted as exc:
        print(f"\n{exc.summary()}")
        raise SystemExit(130) from None


def render_failures(failures: Sequence[FailureRow]) -> str:
    """The structured failure table the CLIs print (never a traceback)."""
    from repro.analysis.plotting import format_table

    rows = [
        [f.index, f.point, f.attempts, f.error, f.duration_s]
        for f in failures
    ]
    return format_table(
        ["#", "point", "attempts", "error", "last_attempt_s"], rows
    )


def print_failures(report: RunReport) -> bool:
    """Print the failure summary; ``True`` when any point failed (the
    figure mains turn that into exit status 1)."""
    if not report.failures:
        return False
    print(
        f"\n{len(report.failures)} point(s) failed after retries "
        f"(completed rows are kept"
        + (
            f"; checkpoint retained at {report.checkpoint_path} -- "
            f"re-run with --resume to retry only the failures)"
            if report.checkpoint_path
            else ")"
        )
    )
    print(render_failures(report.failures))
    return True
