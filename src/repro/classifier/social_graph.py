"""Synthetic social graphs for graph-based Sybil classification.

Graph-based defenses (SybilGuard, SybilRank, SybilFuse, ...) exploit the
structural assumption that the benign region is fast-mixing and Sybil
nodes attach to it through a limited number of *attack edges*.  This
module synthesizes such graphs: a benign region and a Sybil region, each
a small-world/preferential-attachment graph, bridged by a configurable
number of attack edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

import networkx as nx
import numpy as np


@dataclass
class SocialGraph:
    """A labeled synthetic social network."""

    graph: nx.Graph
    benign: Set[int]
    sybil: Set[int]
    attack_edges: int

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    def labels(self) -> dict:
        """Node -> True (benign) / False (sybil)."""
        return {node: (node in self.benign) for node in self.graph.nodes}


def synthesize_social_graph(
    benign_size: int,
    sybil_size: int,
    attack_edges: int,
    rng: np.random.Generator,
    mean_degree: int = 8,
) -> SocialGraph:
    """Benign + Sybil regions bridged by ``attack_edges`` random edges.

    Both regions are Barabási-Albert graphs (heavy-tailed degrees, fast
    mixing), matching the synthetic setups used to evaluate SybilFuse
    [41].  Sybil nodes are relabeled to follow the benign nodes.
    """
    if benign_size < 4 or sybil_size < 4:
        raise ValueError("regions must have at least 4 nodes each")
    if attack_edges < 1:
        raise ValueError("need at least one attack edge to connect regions")
    m = max(1, mean_degree // 2)
    seed_a = int(rng.integers(0, 2**31 - 1))
    seed_b = int(rng.integers(0, 2**31 - 1))
    benign_graph = nx.barabasi_albert_graph(benign_size, m, seed=seed_a)
    sybil_graph = nx.barabasi_albert_graph(sybil_size, m, seed=seed_b)
    graph = nx.disjoint_union(benign_graph, sybil_graph)
    benign_nodes = set(range(benign_size))
    sybil_nodes = set(range(benign_size, benign_size + sybil_size))
    added = 0
    while added < attack_edges:
        u = int(rng.integers(0, benign_size))
        v = int(rng.integers(benign_size, benign_size + sybil_size))
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return SocialGraph(
        graph=graph,
        benign=benign_nodes,
        sybil=sybil_nodes,
        attack_edges=attack_edges,
    )


def trusted_seeds(
    social: SocialGraph, count: int, rng: np.random.Generator
) -> List[int]:
    """A uniformly random sample of benign nodes to act as trust seeds."""
    benign = sorted(social.benign)
    if count > len(benign):
        raise ValueError(f"cannot pick {count} seeds from {len(benign)} benign nodes")
    picks = rng.choice(len(benign), size=count, replace=False)
    return [benign[int(i)] for i in picks]
