"""Scalar-accuracy classifier (the paper's experimental model).

"We assume a classification accuracy of 0.98, which is the average
accuracy reported in [41] for experiments run over both synthetic and
real-world data." (Section 10.1.)  ERGO-SF(92) uses 0.92 (Section 10.3).
"""

from __future__ import annotations

import numpy as np

from repro.classifier.base import Classifier


class BernoulliClassifier(Classifier):
    """Classifies correctly with a fixed probability, independently."""

    def __init__(self, accuracy: float) -> None:
        if not 0.0 < accuracy <= 1.0:
            raise ValueError(f"accuracy must be in (0, 1]: {accuracy}")
        self.accuracy = float(accuracy)

    def classify_good(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.accuracy)

    @property
    def bad_admit_probability(self) -> float:
        return 1.0 - self.accuracy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BernoulliClassifier(accuracy={self.accuracy})"
