"""A SybilFuse-style graph classifier [41].

SybilFuse combines *local* per-node trust scores with *global* structure
via weighted score propagation.  This reproduction implements the same
pipeline shape:

1. **Local priors.**  Trust seeds (known benign nodes) get prior 0.9;
   everyone else 0.5, perturbed by a weak degree feature (Sybil regions
   synthesized here have the same degree law, so the feature is noisy --
   intentionally: the global propagation must do the work).
2. **Edge weights.**  ``w(u,v) = (p_u + p_v)/2``, so trust flows
   reluctantly through low-prior endpoints.
3. **Propagation.**  O(log n) rounds of weighted power iteration from
   the seeds (early-terminated random walks à la SybilRank), followed by
   degree normalization.
4. **Threshold.**  Nodes scoring below a quantile threshold are labeled
   Sybil.  The quantile equals the benign fraction, i.e. the operator's
   estimate of attack scale.

The resulting *measured* confusion matrix drives the
:class:`GraphClassifier` adapter so Ergo can consume a real classifier
through the same interface as the Bernoulli model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.classifier.base import Classifier
from repro.classifier.social_graph import SocialGraph, trusted_seeds


@dataclass
class SybilFuseScores:
    """Propagated scores and the measured confusion matrix."""

    scores: Dict[int, float]
    threshold: float
    predicted_benign: set
    true_positive_rate: float  # benign classified benign
    false_positive_rate: float  # sybil classified benign

    @property
    def accuracy(self) -> float:
        """Balanced accuracy over both classes."""
        return 0.5 * (self.true_positive_rate + (1.0 - self.false_positive_rate))


def run_sybilfuse(
    social: SocialGraph,
    rng: np.random.Generator,
    seed_count: int = 20,
    rounds: int | None = None,
) -> SybilFuseScores:
    """Execute the local-prior + propagation + threshold pipeline."""
    graph = social.graph
    n = graph.number_of_nodes()
    nodes = list(graph.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    seeds = trusted_seeds(social, seed_count, rng)

    # Step 1: local priors.
    priors = np.full(n, 0.5)
    degrees = np.array([graph.degree[node] for node in nodes], dtype=float)
    mean_degree = degrees.mean()
    # Weak local feature: mildly distrust extreme degrees.
    priors += 0.05 * np.tanh((degrees - mean_degree) / (mean_degree + 1.0))
    for seed in seeds:
        priors[index[seed]] = 0.9

    # Step 2: edge weights from endpoint priors.
    # Step 3: weighted power iteration from the seeds.
    trust = np.zeros(n)
    for seed in seeds:
        trust[index[seed]] = 1.0 / len(seeds)
    if rounds is None:
        rounds = max(4, int(math.ceil(math.log2(n))))
    weights: Dict[int, List] = {}
    for node in nodes:
        i = index[node]
        neighbor_idx = []
        neighbor_w = []
        for neighbor in graph.neighbors(node):
            j = index[neighbor]
            neighbor_idx.append(j)
            neighbor_w.append(0.5 * (priors[i] + priors[j]))
        total = sum(neighbor_w)
        if total > 0:
            neighbor_w = [w / total for w in neighbor_w]
        weights[i] = (neighbor_idx, np.array(neighbor_w))
    for _round in range(rounds):
        nxt = np.zeros(n)
        for i in range(n):
            neighbor_idx, neighbor_w = weights[i]
            if len(neighbor_idx) == 0:
                nxt[i] += trust[i]
                continue
            share = trust[i] * neighbor_w
            for k, j in enumerate(neighbor_idx):
                nxt[j] += share[k]
        trust = nxt

    # Step 4: degree-normalize and threshold at the benign quantile.
    normalized = trust / np.maximum(degrees, 1.0)
    benign_fraction = len(social.benign) / n
    threshold = float(np.quantile(normalized, 1.0 - benign_fraction))
    predicted_benign = {
        nodes[i] for i in range(n) if normalized[i] >= threshold
    }

    benign_correct = len(predicted_benign & social.benign)
    sybil_wrong = len(predicted_benign & social.sybil)
    tpr = benign_correct / max(len(social.benign), 1)
    fpr = sybil_wrong / max(len(social.sybil), 1)
    return SybilFuseScores(
        scores={nodes[i]: float(normalized[i]) for i in range(n)},
        threshold=threshold,
        predicted_benign=predicted_benign,
        true_positive_rate=tpr,
        false_positive_rate=fpr,
    )


class GraphClassifier(Classifier):
    """Adapts measured SybilFuse rates to Ergo's classifier interface.

    Each join decision draws from the measured confusion matrix: a good
    joiner is admitted with the measured true-positive rate, a Sybil
    joiner with the measured false-positive rate.  (Joining IDs are new,
    so each classification is an independent draw -- exactly the paper's
    Bernoulli treatment, but with rates produced by the executable
    pipeline rather than assumed.)
    """

    def __init__(self, scores: SybilFuseScores) -> None:
        self._scores = scores

    @classmethod
    def from_synthetic(
        cls,
        rng: np.random.Generator,
        benign_size: int = 1000,
        sybil_size: int = 400,
        attack_edges: int = 40,
        seed_count: int = 20,
    ) -> "GraphClassifier":
        from repro.classifier.social_graph import synthesize_social_graph

        social = synthesize_social_graph(benign_size, sybil_size, attack_edges, rng)
        return cls(run_sybilfuse(social, rng, seed_count=seed_count))

    def classify_good(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self._scores.true_positive_rate)

    @property
    def bad_admit_probability(self) -> float:
        return self._scores.false_positive_rate

    @property
    def measured_accuracy(self) -> float:
        return self._scores.accuracy
