"""The classifier interface consumed by Ergo (Heuristic 4)."""

from __future__ import annotations

import abc

import numpy as np


class Classifier(abc.ABC):
    """Classifies joining IDs as good (admit) or Sybil (refuse).

    Ergo consults the classifier *after* the joiner pays its entrance
    challenge: a refused Sybil still costs the adversary its fee, which
    is what lets the classifier cut good-ID costs (fewer Sybils inside
    means fewer purges and less entrance-cost congestion) without
    weakening the RB-based guarantee.
    """

    @abc.abstractmethod
    def classify_good(self, rng: np.random.Generator) -> bool:
        """True iff a *good* joiner is (correctly) classified good."""

    @property
    @abc.abstractmethod
    def bad_admit_probability(self) -> float:
        """P(a Sybil joiner is misclassified as good and admitted)."""

    def admit_bad_batch(self, count: int, rng: np.random.Generator) -> int:
        """How many of ``count`` Sybil join attempts slip through."""
        if count < 0:
            raise ValueError(f"negative count: {count}")
        if count == 0:
            return 0
        return int(rng.binomial(count, self.bad_admit_probability))
