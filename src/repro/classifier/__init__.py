"""Sybil classifiers (Section 6 and the ERGO-SF heuristic of Section 10).

Classification alone cannot solve DefID -- "a classifier that is wrong
with even a small probability ... still allows the adversary to obtain a
bad majority over a large number of attempted join events" -- but gating
Ergo's admissions with a classifier reduces costs by up to three orders
of magnitude (Figures 8 and 10) while Ergo's purges preserve the
worst-case guarantee.

* :mod:`repro.classifier.bernoulli` -- the scalar-accuracy model the
  paper's experiments plug in (SybilFuse's reported 0.98 / 0.92).
* :mod:`repro.classifier.social_graph` -- synthetic social networks
  (benign region + Sybil region joined by limited attack edges).
* :mod:`repro.classifier.sybilfuse` -- an executable SybilFuse-style
  pipeline: local priors, weighted trust propagation, thresholding; it
  exposes the same interface with a *measured* confusion matrix.
"""

from repro.classifier.base import Classifier
from repro.classifier.bernoulli import BernoulliClassifier
from repro.classifier.social_graph import SocialGraph, synthesize_social_graph
from repro.classifier.sybilfuse import GraphClassifier, SybilFuseScores, run_sybilfuse

__all__ = [
    "BernoulliClassifier",
    "Classifier",
    "GraphClassifier",
    "SocialGraph",
    "SybilFuseScores",
    "run_sybilfuse",
    "synthesize_social_graph",
]
