"""Span-based cost attribution for the simulation engine.

The engine's hot loop interleaves half a dozen subsystems -- the churn
pump, the zero-heap block fast path, heap scheduling, defense hooks,
membership mutation, sampling, snapshot emission -- and BENCH_scale.json
can only say what the *whole* run cost.  This module attributes that
wall clock: a :class:`SpanProfiler` wraps the loop's stable seams once
per ``run()`` call and accumulates per-span wall time, call counts and
event counts into a flat :class:`ProfileReport`.

Disabled-path contract (the bar the snapshot hook set): when
``SimulationConfig.profile`` is ``None`` the engine binds the *raw*
callables and pays nothing new per iteration -- the loop's only
recurring conditional work remains the snapshot hook's two float
compares.  All wrapping happens in one setup branch before the loop.

Determinism contract: wrappers time and count, and never touch the
wrapped call's arguments, return value, or any RNG stream, so the
simulated trajectory (and the final metrics JSON) is byte-identical
with the profiler on or off.  The wall clock feeds only the profile
report, never a metric.

Span identity is the call *path* ("engine.run;engine.handle.GoodJoin;
defense.Ergo.join"), so a span invoked under two different parents is
accounted separately under each and child totals never exceed their
parent's -- the additivity invariant the tests assert.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

#: Path separator between parent and child span names.
SEP = ";"

#: Accepted :attr:`ProfilePolicy.granularity` values.  ``"default"``
#: instruments everything, including the per-operation heap spans and
#: the defense's internal pricing/membership seams; ``"coarse"`` keeps
#: only the batch-level seams (handlers, batch hooks, sampling,
#: snapshots) for a cheaper enabled-mode run.
GRANULARITIES = ("coarse", "default")


@dataclass(frozen=True)
class ProfilePolicy:
    """How much of the engine to instrument (validated at creation)."""

    granularity: str = "default"

    def __post_init__(self) -> None:
        if self.granularity not in GRANULARITIES:
            known = ", ".join(GRANULARITIES)
            raise ValueError(
                f"unknown profile granularity {self.granularity!r}; "
                f"choose from: {known}"
            )


class ProfileRow(NamedTuple):
    """One span's accumulated cost (flat, JSON-friendly)."""

    path: str      #: full call path, ``SEP``-joined span names
    span: str      #: leaf span name (last path segment)
    parent: str    #: parent path ("" for top-level spans)
    calls: int     #: times the span was entered
    events: int    #: domain events it processed (batch rows, ops)
    total_s: float  #: inclusive wall seconds
    self_s: float   #: exclusive wall seconds (total minus children)


class ProfileReport(NamedTuple):
    """A finished attribution: flat rows plus the covered wall."""

    rows: Tuple[ProfileRow, ...]
    wall_s: float

    def as_dict(self) -> Dict:
        """JSON-ready form (rows in deterministic path order)."""
        return {
            "wall_s": self.wall_s,
            "spans": [dict(row._asdict()) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "ProfileReport":
        rows = tuple(
            ProfileRow(
                path=span["path"],
                span=span["span"],
                parent=span["parent"],
                calls=int(span["calls"]),
                events=int(span["events"]),
                total_s=float(span["total_s"]),
                self_s=float(span["self_s"]),
            )
            for span in doc.get("spans", ())
        )
        return cls(rows=rows, wall_s=float(doc.get("wall_s", 0.0)))

    @classmethod
    def merged(cls, docs: Iterable[Dict]) -> "ProfileReport":
        """Sum several ``as_dict`` reports by span path (sweep rollup)."""
        acc: Dict[str, List] = {}
        for doc in docs:
            for span in doc.get("spans", ()):
                node = acc.get(span["path"])
                if node is None:
                    acc[span["path"]] = [
                        span["span"],
                        span["parent"],
                        int(span["calls"]),
                        int(span["events"]),
                        float(span["total_s"]),
                        float(span["self_s"]),
                    ]
                else:
                    node[2] += int(span["calls"])
                    node[3] += int(span["events"])
                    node[4] += float(span["total_s"])
                    node[5] += float(span["self_s"])
        rows = tuple(
            ProfileRow(path, *values)
            for path, values in sorted(acc.items())
        )
        wall = sum(row.total_s for row in rows if not row.parent)
        return cls(rows=rows, wall_s=wall)

    def coverage(self) -> float:
        """Fraction of the wall the self-times account for (0..1)."""
        if self.wall_s <= 0:
            return 0.0
        return sum(row.self_s for row in self.rows) / self.wall_s

    def by_span(self) -> Dict[str, Tuple[float, float]]:
        """Leaf-name rollup: span -> (summed total_s, summed self_s)."""
        out: Dict[str, Tuple[float, float]] = {}
        for row in self.rows:
            total, self_time = out.get(row.span, (0.0, 0.0))
            out[row.span] = (total + row.total_s, self_time + row.self_s)
        return out

    def table(self, top: Optional[int] = None) -> str:
        """Self-time table, hottest span first."""
        rows = sorted(self.rows, key=lambda r: (-r.self_s, r.path))
        if top is not None:
            rows = rows[:top]
        lines = [
            f"{'self s':>10}  {'self %':>6}  {'total s':>10}  "
            f"{'calls':>10}  {'events':>10}  span"
        ]
        wall = self.wall_s
        for row in rows:
            pct = 100.0 * row.self_s / wall if wall > 0 else 0.0
            label = row.span if not row.parent else (
                row.parent.rsplit(SEP, 1)[-1] + " > " + row.span
            )
            lines.append(
                f"{row.self_s:>10.4f}  {pct:>6.1f}  {row.total_s:>10.4f}  "
                f"{row.calls:>10}  {row.events:>10}  {label}"
            )
        lines.append(
            f"{len(self.rows)} spans cover "
            f"{100.0 * self.coverage():.1f}% of {wall:.4f} s wall"
        )
        return "\n".join(lines)


#: The engine's heap-primitive spans: everything the zero-heap block
#: fast path exists to avoid.  Used by :func:`span_shares` and the
#: scale benchmarks' attribution columns.
HEAP_SPANS = frozenset(
    ("engine.heap_push", "engine.heap_pop", "engine.heap_drain",
     "engine.churn_pump")
)


def span_shares(profile: Dict) -> Dict[str, float]:
    """Top-3 attribution buckets of one profile, as % of its wall.

    Self-time based, so the buckets never double-count nested spans:
    heap primitives (:data:`HEAP_SPANS`), defense work (hooks +
    membership mutation + pricing), and per-event handler dispatch.
    The scale benchmarks put these next to ``wall_s`` in their
    regression-tracked rows so the perf trend can say *where* a
    wall-time regression went, not just that it happened.
    """
    wall = float(profile.get("wall_s") or 0.0)
    if wall <= 0:
        return {}
    heap = defense = dispatch = 0.0
    for row in profile["spans"]:
        span = row["span"]
        if span in HEAP_SPANS:
            heap += row["self_s"]
        elif span.startswith(("defense.", "membership.")):
            defense += row["self_s"]
        elif span.startswith("engine.handle."):
            dispatch += row["self_s"]
    return {
        "span_heap_pct": round(100.0 * heap / wall, 2),
        "span_defense_pct": round(100.0 * defense / wall, 2),
        "span_dispatch_pct": round(100.0 * dispatch / wall, 2),
    }


class SpanProfiler:
    """Accumulates wall time per call path via wrapped seams.

    Nodes live in a flat dict keyed by path; a small explicit stack
    tracks the current path so a child's time is (a) accounted under
    the parent it actually ran under and (b) subtracted from that
    parent's self-time.  Wrapping is idempotent per object (see
    :meth:`instrument_defense`) and purely observational.
    """

    def __init__(
        self,
        policy: Optional[ProfilePolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.policy = policy if policy is not None else ProfilePolicy()
        if clock is None:
            # Wall clock feeds only the profile report, never a metric
            # (the engine's determinism A/B tests prove it).
            clock = time.perf_counter  # lint: allow[R001] -- profiler wall-clock telemetry, never read into metrics
        self._clk = clock
        #: path -> [total_s, calls, events, child_s]
        self._acc: Dict[str, List] = {}
        #: frames: [path, child_s] (wrappers) or [path, child_s, start]
        #: (explicit begin/end)
        self._stack: List[List] = []
        self._instrumented: set = set()

    # ------------------------------------------------------------------
    # accounting primitives
    # ------------------------------------------------------------------
    @property
    def deep(self) -> bool:
        """Default granularity: per-op heap + defense-internal spans."""
        return self.policy.granularity == "default"

    def _node(self, path: str) -> List:
        node = self._acc.get(path)
        if node is None:
            node = self._acc[path] = [0.0, 0, 0, 0.0]
        return node

    def begin(self, name: str) -> None:
        """Open a span explicitly (the engine's root ``engine.run``)."""
        stack = self._stack
        pkey = stack[-1][0] if stack else ""
        path = pkey + SEP + name if pkey else name
        stack.append([path, 0.0, self._clk()])

    def end(self) -> None:
        """Close the innermost explicitly opened span."""
        frame = self._stack.pop()
        dt = self._clk() - frame[2]
        node = self._node(frame[0])
        node[0] += dt
        node[1] += 1
        node[3] += frame[1]
        if self._stack:
            self._stack[-1][1] += dt

    def wrap(self, name: str, fn: Callable) -> Callable:
        """Time every call to ``fn`` as a span named ``name``."""
        clk = self._clk
        stack = self._stack
        acc = self._acc
        paths: Dict[str, List] = {}  # parent path -> cached node

        def timed(*args, **kwargs):
            parent = stack[-1] if stack else None
            pkey = parent[0] if parent is not None else ""
            node = paths.get(pkey)
            if node is None:
                path = pkey + SEP + name if pkey else name
                node = acc.get(path)
                if node is None:
                    node = acc[path] = [0.0, 0, 0, 0.0]
                paths[pkey] = node
                frame_path = path
            else:
                frame_path = pkey + SEP + name if pkey else name
            frame = [frame_path, 0.0]
            stack.append(frame)
            t0 = clk()
            try:
                return fn(*args, **kwargs)
            finally:
                dt = clk() - t0
                stack.pop()
                node[0] += dt
                node[1] += 1
                node[2] += 1
                node[3] += frame[1]
                if parent is not None:
                    parent[1] += dt

        return timed

    def wrap_batch(self, name: str, fn: Callable) -> Callable:
        """Like :meth:`wrap`, counting ``len(args[0])`` rows as events."""
        clk = self._clk
        stack = self._stack
        acc = self._acc
        paths: Dict[str, List] = {}

        def timed(*args, **kwargs):
            parent = stack[-1] if stack else None
            pkey = parent[0] if parent is not None else ""
            node = paths.get(pkey)
            path = pkey + SEP + name if pkey else name
            if node is None:
                node = acc.get(path)
                if node is None:
                    node = acc[path] = [0.0, 0, 0, 0.0]
                paths[pkey] = node
            frame = [path, 0.0]
            stack.append(frame)
            t0 = clk()
            try:
                return fn(*args, **kwargs)
            finally:
                dt = clk() - t0
                stack.pop()
                node[0] += dt
                node[1] += 1
                if args and hasattr(args[0], "__len__"):
                    node[2] += len(args[0])
                else:
                    node[2] += 1
                node[3] += frame[1]
                if parent is not None:
                    parent[1] += dt

        return timed

    def wrap_leaf(self, name: str, fn: Callable) -> Callable:
        """Time a childless hot-path callable (heap ops): no stack push.

        The wrapped callable must never invoke another wrapped seam --
        heapq primitives qualify.  Skipping the stack push keeps the
        enabled-mode cost of a per-operation span to two clock reads.
        """
        clk = self._clk
        stack = self._stack
        acc = self._acc
        paths: Dict[str, List] = {}

        def timed(*args):
            parent = stack[-1] if stack else None
            pkey = parent[0] if parent is not None else ""
            node = paths.get(pkey)
            if node is None:
                path = pkey + SEP + name if pkey else name
                node = acc.get(path)
                if node is None:
                    node = acc[path] = [0.0, 0, 0, 0.0]
                paths[pkey] = node
            t0 = clk()
            try:
                return fn(*args)
            finally:
                dt = clk() - t0
                node[0] += dt
                node[1] += 1
                node[2] += 1
                if parent is not None:
                    parent[1] += dt

        return timed

    # ------------------------------------------------------------------
    # defense instrumentation
    # ------------------------------------------------------------------
    def instrument_defense(self, defense) -> None:
        """Shadow a defense's hook methods with timed instance attrs.

        Idempotent per object (``run()`` may be re-entered on the same
        simulation).  Everything is duck-typed: hooks a defense lacks
        are skipped, so Null and the baselines instrument as well as
        Ergo.  At default granularity the defense's internal seams --
        membership batch mutators and Ergo's pricing/estimation/purge --
        are shadowed too, nesting under whichever hook invoked them.
        """
        if id(defense) in self._instrumented:
            return
        self._instrumented.add(id(defense))
        dname = type(defense).__name__
        self._shadow(
            defense, "process_good_join_batch",
            f"defense.{dname}.join_batch", batch=True,
        )
        self._shadow(
            defense, "process_good_departure_batch",
            f"defense.{dname}.departure_batch", batch=True,
        )
        self._shadow(defense, "on_tick", f"defense.{dname}.on_tick")
        self._shadow(
            defense, "process_bad_join_batch", f"defense.{dname}.bad_joins"
        )
        self._shadow(
            defense, "process_bad_departure_batch",
            f"defense.{dname}.bad_departures",
        )
        if not self.deep:
            return
        self._shadow(defense, "process_good_join", f"defense.{dname}.join")
        self._shadow(
            defense, "process_good_departure", f"defense.{dname}.departure"
        )
        self._shadow(
            defense, "quote_entrance_cost", f"defense.{dname}.price"
        )
        self._shadow(defense, "estimate", f"defense.{dname}.estimate")
        self._shadow(defense, "_execute_purge", f"defense.{dname}.purge")
        window = getattr(defense, "_window", None)
        if window is not None:
            self._shadow(
                window, "quote_record_run",
                f"defense.{dname}.price_batch", batch=True,
            )
        population = getattr(defense, "population", None)
        membership = getattr(population, "good", None)
        if membership is not None:
            self._shadow(
                membership, "add_batch", "membership.add_batch", batch=True
            )
            self._shadow(
                membership, "remove_batch",
                "membership.remove_batch", batch=True,
            )
            self._shadow(membership, "add", "membership.add")
            self._shadow(membership, "remove", "membership.remove")
            self._shadow(membership, "discard", "membership.discard")

    def _shadow(self, obj, attr: str, span: str, batch: bool = False) -> None:
        fn = getattr(obj, attr, None)
        if fn is None or not callable(fn):
            return
        wrapped = self.wrap_batch(span, fn) if batch else self.wrap(span, fn)
        try:
            setattr(obj, attr, wrapped)
        except AttributeError:
            # __slots__ without the attr: leave the seam uninstrumented.
            pass

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> ProfileReport:
        """Snapshot the accumulated spans as a :class:`ProfileReport`.

        Explicit frames left open by an exception inside ``run()`` are
        closed here so partial profiles still satisfy additivity.
        """
        while self._stack:
            frame = self._stack[-1]
            if len(frame) < 3:
                self._stack.pop()
                continue
            self.end()
        rows = []
        for path in sorted(self._acc):
            total, calls, events, child = self._acc[path]
            head, _, span = path.rpartition(SEP)
            self_s = total - child
            if self_s < 0.0:
                self_s = 0.0
            rows.append(
                ProfileRow(
                    path=path,
                    span=span if span else path,
                    parent=head,
                    calls=calls,
                    events=events,
                    total_s=total,
                    self_s=self_s,
                )
            )
        wall = sum(row.total_s for row in rows if not row.parent)
        return ProfileReport(rows=tuple(rows), wall_s=wall)
