"""``python -m repro profile`` -- where the time goes, per span.

Usage::

    python -m repro profile <scenario> [options]

Runs one catalog scenario under one defense with span-level cost
attribution enabled (see :mod:`repro.profiling`) and prints a
self-time table: engine dispatch, heap operations, defense hooks,
pricing and membership mutation, each attributed to its call path.

Options:
    --defense NAME   defense to profile (case-insensitive; default ERGO)
    --seed N         run seed (default 2021; per-point derivation
                     matches ``scenarios run``)
    --t-rate T       override the scenario's adversary spend rate
    --n0-scale X     scale initial populations (default 1.0)
    --quick          preset: --n0-scale 0.25 (the CI smoke scale)
    --coarse         batch-level spans only (skip per-event and heap
                     primitive attribution)
    --top N          print only the N hottest spans (default: all)
    --json PATH      write the full report (``ProfileReport.as_dict``)
    --speedscope PATH
                     write a flamegraph importable at
                     https://www.speedscope.app (validated after write)
    --check          additionally run the same point *unprofiled* and
                     fail (exit 1) unless the metrics rows are
                     byte-identical -- the profiler's zero-interference
                     contract, checked end to end

Profiling never changes metrics: the engine binds timed wrappers at
run() setup only, so the simulated system sees the exact same calls in
the exact same order.  ``--check`` proves it on the spot.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from repro.cliutil import pop_option as _pop_option
from repro.experiments.parallel import derive_seed
from repro.profiling.core import ProfilePolicy, ProfileReport
from repro.profiling.speedscope import to_speedscope, validate_speedscope
from repro.resilience import atomic_write_text
from repro.scenarios.run import (
    SCENARIO_DEFENSES,
    ScenarioPointSpec,
    resolve_t_rate,
    run_spec_point,
)

#: ``--quick`` population scale (mirrors ``scenarios run --quick``).
QUICK_N0_SCALE = 0.25


def resolve_defense(name: str) -> str:
    """Map a case-insensitive defense name to its report spelling."""
    by_fold = {d.lower(): d for d in SCENARIO_DEFENSES}
    try:
        return by_fold[name.lower()]
    except KeyError:
        raise SystemExit(
            f"unknown defense {name!r}; "
            f"choose from: {', '.join(SCENARIO_DEFENSES)}"
        )


def profile_point(
    scenario: str,
    defense: str,
    seed: int = 2021,
    t_rate: Optional[float] = None,
    n0_scale: float = 1.0,
    granularity: str = "default",
) -> dict:
    """Run one profiled (scenario, defense) point; returns the row.

    The row is the same flat metrics dict ``scenarios run`` reports,
    plus a ``"profile"`` breakdown.  Seeds derive exactly like the
    sweep's, so a profiled point reproduces the sweep's numbers.
    """
    from repro.scenarios.catalog import get_scenario

    spec = get_scenario(scenario)
    rate = resolve_t_rate(spec, t_rate)
    point = ScenarioPointSpec(
        scenario=scenario,
        defense=defense,
        seed=derive_seed(seed, scenario, defense, rate),
        t_rate=rate,
        n0_scale=n0_scale,
    )
    return run_spec_point(
        spec, point, profile=ProfilePolicy(granularity=granularity)
    )


def check_identical(row: dict) -> List[str]:
    """Re-run the point unprofiled; report metric divergences (none
    expected -- the zero-interference contract)."""
    from repro.scenarios.catalog import get_scenario

    spec = get_scenario(row["scenario"])
    point = ScenarioPointSpec(
        scenario=row["scenario"],
        defense=row["defense"],
        seed=row["seed"],
        t_rate=row["t_rate"],
        n0_scale=row["n0_scale"],
    )
    plain = run_spec_point(spec, point)
    profiled = {k: v for k, v in row.items() if k != "profile"}
    problems = []
    if json.dumps(profiled, sort_keys=True) != json.dumps(
        plain, sort_keys=True
    ):
        for key in sorted(set(profiled) | set(plain)):
            if profiled.get(key) != plain.get(key):
                problems.append(
                    f"metric {key!r} diverges under profiling: "
                    f"{profiled.get(key)!r} != {plain.get(key)!r}"
                )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    defense_opt = _pop_option(args, "--defense")
    seed_opt = _pop_option(args, "--seed")
    t_rate_opt = _pop_option(args, "--t-rate")
    n0_scale_opt = _pop_option(args, "--n0-scale")
    top_opt = _pop_option(args, "--top")
    json_path = _pop_option(args, "--json")
    speedscope_path = _pop_option(args, "--speedscope")
    quick = "--quick" in args
    args = [a for a in args if a != "--quick"]
    coarse = "--coarse" in args
    args = [a for a in args if a != "--coarse"]
    check = "--check" in args
    args = [a for a in args if a != "--check"]
    names = [a for a in args if not a.startswith("--")]
    unknown_flags = [a for a in args if a.startswith("--")]
    if unknown_flags:
        raise SystemExit(f"unknown option(s): {', '.join(unknown_flags)}")
    if len(names) != 1:
        raise SystemExit(
            "profile takes exactly one scenario "
            "(see 'python -m repro scenarios list')"
        )
    from repro.scenarios.catalog import get_scenario

    try:
        get_scenario(names[0])  # fail fast, with the known-names message
    except KeyError as exc:
        raise SystemExit(exc.args[0])
    defense = resolve_defense(defense_opt or "ERGO")
    n0_scale = float(n0_scale_opt) if n0_scale_opt else (
        QUICK_N0_SCALE if quick else 1.0
    )
    row = profile_point(
        names[0],
        defense,
        seed=int(seed_opt) if seed_opt else 2021,
        t_rate=float(t_rate_opt) if t_rate_opt else None,
        n0_scale=n0_scale,
        granularity="coarse" if coarse else "default",
    )
    report = ProfileReport.from_dict(row["profile"])
    if not report.rows:
        print("error: profiled run produced no spans", file=sys.stderr)
        return 1
    print(f"{names[0]} / {defense}  seed={row['seed']}  "
          f"t_rate={row['t_rate']:g}  n0_scale={row['n0_scale']:g}")
    print()
    print(report.table(top=int(top_opt) if top_opt else None))
    if json_path:
        atomic_write_text(
            json_path,
            json.dumps(row, indent=2, sort_keys=True) + "\n",
        )
        print(f"\nreport JSON: {json_path}")
    if speedscope_path:
        doc = to_speedscope(report, name=f"{names[0]}/{defense}")
        problems = validate_speedscope(doc)
        if problems:
            for problem in problems:
                print(f"speedscope export invalid: {problem}",
                      file=sys.stderr)
            return 1
        atomic_write_text(
            speedscope_path, json.dumps(doc, sort_keys=True) + "\n"
        )
        print(f"speedscope profile: {speedscope_path} "
              f"(open at https://www.speedscope.app)")
    if check:
        problems = check_identical(row)
        if problems:
            for problem in problems:
                print(f"check failed: {problem}", file=sys.stderr)
            return 1
        print("\ncheck: metrics byte-identical with profiling off")
    return 0


if __name__ == "__main__":
    sys.exit(main())
