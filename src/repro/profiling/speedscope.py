"""Speedscope (flamegraph) export for :class:`ProfileReport`.

Speedscope's *evented* format is a stream of open/close frame events
over a shared frame table (https://www.speedscope.app/file-format-schema.json).
A :class:`~repro.profiling.core.ProfileReport` is an aggregate, not a
trace, so the exporter synthesizes one deterministic timeline: each
span occupies one contiguous interval of its inclusive total, its
children laid out back-to-back from its start.  The gap left after the
children is exactly the span's self-time, which is what the flamegraph
renders as the frame's own width.

:func:`validate_speedscope` re-checks the structural invariants the
viewer relies on (balanced, properly nested events with monotone
timestamps and in-range frame indices); the CLI runs it on everything
it writes and the test suite runs it on everything the CLI can emit.
"""

from __future__ import annotations

from typing import Dict, List

from repro.profiling.core import SEP, ProfileReport

SCHEMA_URL = "https://www.speedscope.app/file-format-schema.json"


def to_speedscope(report: ProfileReport, name: str = "repro") -> Dict:
    """Render a report as a speedscope evented-profile document."""
    children: Dict[str, List] = {}
    by_path = {}
    for row in report.rows:
        by_path[row.path] = row
        children.setdefault(row.parent, []).append(row.path)
    frames: List[Dict] = []
    frame_index: Dict[str, int] = {}

    def frame_for(span: str) -> int:
        idx = frame_index.get(span)
        if idx is None:
            idx = frame_index[span] = len(frames)
            frames.append({"name": span})
        return idx

    events: List[Dict] = []
    end_value = 0.0

    def place(path: str, start: float) -> float:
        row = by_path[path]
        idx = frame_for(row.span)
        events.append({"type": "O", "frame": idx, "at": start})
        cursor = start
        for child in children.get(path, ()):
            cursor = place(child, cursor)
        end = start + row.total_s
        if cursor > end:
            # Float drift: children summed a hair past the parent's
            # inclusive total; stretch the parent so nesting stays valid.
            end = cursor
        events.append({"type": "C", "frame": idx, "at": end})
        return end

    cursor = 0.0
    for path in children.get("", ()):
        cursor = place(path, cursor)
    end_value = cursor
    profile = {
        "type": "evented",
        "name": name,
        "unit": "seconds",
        "startValue": 0.0,
        "endValue": end_value,
        "events": events,
    }
    return {
        "$schema": SCHEMA_URL,
        "shared": {"frames": frames},
        "profiles": [profile],
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro-profiler",
    }


def validate_speedscope(doc: Dict) -> List[str]:
    """Structural checks on an exported document; [] means valid."""
    problems: List[str] = []
    if doc.get("$schema") != SCHEMA_URL:
        problems.append(f"$schema is not {SCHEMA_URL!r}")
    frames = doc.get("shared", {}).get("frames")
    if not isinstance(frames, list) or not all(
        isinstance(f, dict) and isinstance(f.get("name"), str) for f in frames
    ):
        problems.append("shared.frames must be a list of {name: str}")
        frames = []
    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        problems.append("profiles must be a non-empty list")
        return problems
    for p_index, profile in enumerate(profiles):
        where = f"profiles[{p_index}]"
        if profile.get("type") != "evented":
            problems.append(f"{where}.type must be 'evented'")
            continue
        events = profile.get("events")
        if not isinstance(events, list):
            problems.append(f"{where}.events must be a list")
            continue
        stack: List[int] = []
        last_at = float(profile.get("startValue", 0.0))
        for e_index, event in enumerate(events):
            at = event.get("at")
            kind = event.get("type")
            frame = event.get("frame")
            spot = f"{where}.events[{e_index}]"
            if not isinstance(frame, int) or not 0 <= frame < len(frames):
                problems.append(f"{spot}: frame index {frame!r} out of range")
                continue
            if not isinstance(at, (int, float)) or at < last_at:
                problems.append(
                    f"{spot}: timestamp {at!r} not monotone (last {last_at})"
                )
                continue
            last_at = float(at)
            if kind == "O":
                stack.append(frame)
            elif kind == "C":
                if not stack or stack.pop() != frame:
                    problems.append(
                        f"{spot}: close of frame {frame} does not match "
                        f"the innermost open frame"
                    )
            else:
                problems.append(f"{spot}: unknown event type {kind!r}")
        if stack:
            problems.append(f"{where}: {len(stack)} frame(s) left open")
        end_value = profile.get("endValue")
        if not isinstance(end_value, (int, float)) or end_value < last_at:
            problems.append(
                f"{where}.endValue {end_value!r} precedes the last event"
            )
    return problems
