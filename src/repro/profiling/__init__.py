"""Cost attribution for the engine: spans, reports, flamegraph export.

Public surface:

* :class:`ProfilePolicy` -- the ``SimulationConfig.profile`` knob.
* :class:`SpanProfiler` -- the accumulator the engine drives.
* :class:`ProfileReport` / :class:`ProfileRow` -- flat results.
* :func:`to_speedscope` / :func:`validate_speedscope` -- flamegraph
  export (https://www.speedscope.app).

The CLI entry (``python -m repro profile``) lives in
:mod:`repro.profiling.cli` and is intentionally not imported here: it
pulls in the scenario catalog, which imports the engine, which imports
this package.
"""

from repro.profiling.core import (
    GRANULARITIES,
    HEAP_SPANS,
    ProfilePolicy,
    ProfileReport,
    ProfileRow,
    SpanProfiler,
    span_shares,
)
from repro.profiling.speedscope import to_speedscope, validate_speedscope

__all__ = [
    "GRANULARITIES",
    "HEAP_SPANS",
    "ProfilePolicy",
    "ProfileReport",
    "ProfileRow",
    "SpanProfiler",
    "span_shares",
    "to_speedscope",
    "validate_speedscope",
]
