"""CCom: purge-based defense with flat entrance costs [98].

"It is the same as Ergo, except the hardness of the RB challenge
assigned to joining IDs is always 1.  Thus, CCom does not need knowledge
of the good join rate and, therefore, has no estimation component like
GoodJEst." (Section 10.1.)

Reusing Ergo's iteration/purge machinery, CCom overrides the entrance
cost to a constant 1 and batches adversarial joins with flat-cost
arithmetic.  Against a flood, every Sybil join costs the adversary only
1 but still advances the iteration counter, so purges (each costing all
good IDs 1) fire at a rate linear in T -- the O(T + J) spend rate that
Figure 8 shows growing ~100x faster than Ergo at T = 2^20.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.ergo import Ergo, ErgoConfig


class CCom(Ergo):
    """Ergo minus adaptive pricing: every joiner pays exactly 1."""

    name = "CCOM"

    def __init__(self, config: Optional[ErgoConfig] = None) -> None:
        super().__init__(config)

    def quote_entrance_cost(self) -> float:
        return 1.0

    def _batch_pricing(self):
        """Flat 1-hard joins: the vectorized batch skips window quotes."""
        return 1.0

    def process_good_join(self, ident: Optional[str] = None) -> Optional[str]:
        unique = self.ids.issue(ident if ident is not None else "g")
        self.accountant.charge_good(unique, 1.0, category="entrance")
        self.population.good_join(unique, self.now)
        self._note_events(joins=1)
        return unique

    def process_bad_join_batch(self, budget: float) -> Tuple[int, float]:
        attempted_total = 0
        cost_total = 0.0
        remaining = float(budget)
        while True:
            affordable = int(remaining)  # flat cost of 1 per join
            batch = min(affordable, self._events_until_purge())
            if batch <= 0:
                break
            cost = float(batch)
            self.accountant.charge_adversary(cost, category="entrance")
            remaining -= cost
            attempted_total += batch
            cost_total += cost
            self.population.bad_join(batch, self.now)
            self._note_events(joins=batch)
        return attempted_total, cost_total
