"""Baseline resource-burning Sybil defenses (Section 10.1).

* :class:`~repro.baselines.ccom.CCom` -- Ergo with flat entrance cost 1
  and no estimation component [98].
* :class:`~repro.baselines.sybilcontrol.SybilControl` -- join challenge
  plus uncoordinated periodic neighbor tests every 0.5 s [67].
* :class:`~repro.baselines.remp.Remp` -- join challenge plus recurring
  per-ID challenges sized so that ``A = (1−κ)·T_max/κ`` (Equation 4 of
  [99] / Equation 13 of the paper).
"""

from repro.baselines.ccom import CCom
from repro.baselines.remp import Remp
from repro.baselines.sybilcontrol import SybilControl

__all__ = ["CCom", "Remp", "SybilControl"]
