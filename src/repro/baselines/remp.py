"""REMP: recurring challenges sized against a worst-case attacker [99].

"Each ID solves an RB challenge to join.  Additionally, each ID must
solve RB challenges every W seconds.  We use Equation (4) from [99] to
compute the spend rate per ID as L/W = T_max/(κN) ... The total good
spend rate is A_REMP = (1−κ)·T_max/κ to guarantee that the fraction of
bad IDs is less than half." (Section 10.1, Equation 13.)

The defining property -- and weakness -- of REMP is that its cost is
provisioned for the *maximum anticipated* attack T_max, not the actual
attack: its Figure-8 curve is flat at ``(1−κ)T_max/κ ≈ 1.7×10⁸`` for
``T_max = 10⁷, κ = 1/18`` regardless of T.  The guarantee only holds for
attacks up to T_max ("REMP-10⁷ only ensures a minority of bad IDs for up
to T = 10⁷").
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.protocol import Defense


class Remp(Defense):
    """Join challenge + recurring per-ID challenges every W seconds."""

    name = "REMP"

    def __init__(
        self,
        t_max: float = 1.0e7,
        kappa: float = 1.0 / 18.0,
        period: float = 1.0,
    ) -> None:
        super().__init__()
        if t_max <= 0:
            raise ValueError(f"t_max must be positive: {t_max}")
        if not 0 < kappa < 1:
            raise ValueError(f"kappa must be in (0,1): {kappa}")
        if period <= 0:
            raise ValueError(f"period must be positive: {period}")
        self.t_max = float(t_max)
        self.kappa = float(kappa)
        self.period = float(period)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def after_bootstrap(self, count: int) -> None:
        self.sim.call_after(self.period, self._recurring_cycle, label="remp")

    def recurring_cost_rate_per_id(self) -> float:
        """L/W = T_max/(κN) with N the current system size (Eq. 13)."""
        size = max(self.population.size, 1)
        return self.t_max / (self.kappa * size)

    # ------------------------------------------------------------------
    # joins and departures
    # ------------------------------------------------------------------
    def quote_entrance_cost(self) -> float:
        return 1.0

    def process_good_join(self, ident: Optional[str] = None) -> Optional[str]:
        unique = self.ids.issue(ident if ident is not None else "g")
        self.accountant.charge_good(unique, 1.0, category="entrance")
        self.population.good_join(unique, self.now)
        return unique

    def process_good_departure(self, ident: Optional[str] = None) -> Optional[str]:
        victim = self._select_departing_good(ident)
        if victim is None:
            return None
        self.population.good_depart(victim)
        return victim

    def process_good_join_batch(self, times, idents=None) -> list:
        """Batched joins: flat 1-hard charge (recurring costs are a
        scheduled callback, so join runs have no other bookkeeping)."""
        return self._flat_cost_join_batch(times, idents, 1.0)

    #: Departures are select + remove with no bookkeeping.
    process_good_departure_batch = Defense._removal_departure_batch

    def process_bad_join_batch(self, budget: float) -> Tuple[int, float]:
        batch = int(budget)  # flat cost of 1 per join
        if batch <= 0:
            return 0, 0.0
        cost = float(batch)
        self.accountant.charge_adversary(cost, category="entrance")
        self.population.bad_join(batch, self.now)
        self._observe_fraction()
        return batch, cost

    # ------------------------------------------------------------------
    # the recurring challenge cycle
    # ------------------------------------------------------------------
    def _recurring_cycle(self, now: float) -> None:
        self._observe_fraction()
        per_id = self.recurring_cost_rate_per_id() * self.period
        good_n = self.population.good_count
        self.accountant.charge_good_bulk(good_n, per_id, category="recurring")
        bad_n = self.population.bad_count
        if bad_n > 0:
            funded = 0
            if self._adversary is not None:
                funded = self._adversary.fund_maintenance(bad_n, per_id, now)
                funded = max(0, min(funded, bad_n))
            if funded > 0:
                self.accountant.charge_adversary(funded * per_id, category="recurring")
            self.population.bad.evict_oldest(bad_n - funded)
        self.sim.call_after(self.period, self._recurring_cycle, label="remp")
