"""SybilControl: decentralized periodic challenge testing [67].

"Each ID solves an RB challenge to join.  Additionally, each ID tests
its neighbors with an RB challenge every 0.5 seconds, removing from its
list of neighbors those IDs that fail to provide a solution within a
fixed time period.  These tests are not coordinated between IDs."
(Section 10.1.)

Cost model: per test period, each ID must solve ``tests_per_period``
challenges (one aggregate challenge from its neighborhood by default).
Good IDs always pay; Sybil IDs survive only if the adversary funds
their recurring fees (:meth:`repro.adversary.base.Adversary.fund_maintenance`),
so the adversary's spend rate T sustains a standing Sybil population of
about ``T · period / tests_per_period``.

SybilControl never purges globally, so nothing bounds the bad fraction
once T is large relative to the good population: the experiment harness
cuts the curve off when the observed bad fraction reaches 1/6, matching
Figure 8's truncated SybilControl series.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.protocol import Defense


class SybilControl(Defense):
    """Join challenge + uncoordinated periodic neighbor tests."""

    name = "SybilControl"

    def __init__(
        self,
        test_period: float = 0.5,
        tests_per_period: float = 1.0,
    ) -> None:
        super().__init__()
        if test_period <= 0:
            raise ValueError(f"test period must be positive: {test_period}")
        self.test_period = float(test_period)
        self.tests_per_period = float(tests_per_period)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def after_bootstrap(self, count: int) -> None:
        self.sim.call_after(self.test_period, self._test_cycle, label="sc-test")

    def recurring_cost_rate_per_id(self) -> float:
        """Per-second recurring cost each standing ID must burn."""
        return self.tests_per_period / self.test_period

    # ------------------------------------------------------------------
    # joins and departures
    # ------------------------------------------------------------------
    def quote_entrance_cost(self) -> float:
        return 1.0

    def process_good_join(self, ident: Optional[str] = None) -> Optional[str]:
        unique = self.ids.issue(ident if ident is not None else "g")
        self.accountant.charge_good(unique, 1.0, category="entrance")
        self.population.good_join(unique, self.now)
        return unique

    def process_good_departure(self, ident: Optional[str] = None) -> Optional[str]:
        victim = self._select_departing_good(ident)
        if victim is None:
            return None
        self.population.good_depart(victim)
        return victim

    def process_good_join_batch(self, times, idents=None) -> list:
        """Batched joins: flat 1-hard charge, no per-row clock traffic.

        Joins carry no iteration machinery here (the test cycle is a
        scheduled callback), so the shared flat-cost loop applies.
        """
        return self._flat_cost_join_batch(times, idents, 1.0)

    #: Departures are select + remove with no bookkeeping.
    process_good_departure_batch = Defense._removal_departure_batch

    def process_bad_join_batch(self, budget: float) -> Tuple[int, float]:
        batch = int(budget)  # flat cost of 1 per join
        if batch <= 0:
            return 0, 0.0
        cost = float(batch)
        self.accountant.charge_adversary(cost, category="entrance")
        self.population.bad_join(batch, self.now)
        self._observe_fraction()
        return batch, cost

    # ------------------------------------------------------------------
    # the periodic test cycle
    # ------------------------------------------------------------------
    def _test_cycle(self, now: float) -> None:
        # The peak bad fraction occurs just before unfunded Sybils are
        # dropped; record it so the harness can apply the 1/6 cutoff.
        self._observe_fraction()
        good_n = self.population.good_count
        self.accountant.charge_good_bulk(
            good_n, self.tests_per_period, category="recurring"
        )
        bad_n = self.population.bad_count
        if bad_n > 0:
            funded = 0
            if self._adversary is not None:
                funded = self._adversary.fund_maintenance(
                    bad_n, self.tests_per_period, now
                )
                funded = max(0, min(funded, bad_n))
            if funded > 0:
                self.accountant.charge_adversary(
                    funded * self.tests_per_period, category="recurring"
                )
            self.population.bad.evict_oldest(bad_n - funded)
        self.sim.call_after(self.test_period, self._test_cycle, label="sc-test")
