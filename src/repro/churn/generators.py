"""Good-churn event generators.

Two families:

* **Measurement-style generators** (:func:`poisson_join_blocks`,
  :func:`modulated_join_blocks`): joins arrive by a (possibly
  inhomogeneous) Poisson process and each joiner carries a session
  duration sampled from a network's session distribution.  Departures
  happen when sessions expire -- the engine schedules them.  This is how
  the paper simulates BitTorrent, Ethereum and Gnutella (Section 10).

* **Exactly-smooth synthetic traces** (:func:`smooth_trace`): events are
  laid out to satisfy α,β-smoothness *by construction*, with a planned
  sequence of epoch rates.  Used by property tests that compare
  GoodJEst's estimate against the Theorem-2 envelope for known (α, β).

The measurement-style generators are **block-mode**: they precompute
churn as struct-of-arrays :class:`~repro.sim.blocks.ChurnBlock` batches
(``times`` via one vectorized cumulative sum of exponential gaps per
block, ``sessions`` via one vectorized distribution draw) instead of
yielding one ``Event`` object per ID.  The historical per-event
iterators (:func:`poisson_join_stream`, :func:`modulated_join_stream`)
are kept as thin adapters over the blocks, so per-event call sites keep
working; the engine consumes the blocks directly through its zero-heap
fast path.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.churn.sessions import SessionDistribution, sample_session_array
from repro.sim.blocks import JOIN, ChurnBlock, events_from_blocks
from repro.sim.events import Event, GoodDeparture, GoodJoin

#: Rows per generated block.  Big enough to amortize the vectorized RNG
#: draws and the per-block Python overhead, small enough that lazily
#: consumed sources stay lazy (a horizon cutoff wastes at most one
#: block of draws).
DEFAULT_BLOCK_SIZE = 4096


def poisson_join_blocks(
    rate: float,
    session_dist: SessionDistribution,
    rng: np.random.Generator,
    horizon: Optional[float] = None,
    start: float = 0.0,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[ChurnBlock]:
    """Homogeneous Poisson joins at ``rate`` per second, as churn blocks.

    Each block draws ``block_size`` exponential inter-arrival gaps and
    the matching session durations in two vectorized calls; arrival
    times are the running cumulative sum.  With ``horizon=None`` the
    stream is unbounded (consume lazily!).
    """
    if rate <= 0:
        return
    if block_size <= 0:
        raise ValueError(f"block size must be positive: {block_size}")
    scale = 1.0 / rate
    now = start
    kinds = np.zeros(block_size, dtype=np.uint8)
    while True:
        gaps = rng.exponential(scale, size=block_size)
        times = now + np.cumsum(gaps)
        if horizon is not None:
            keep = int(np.searchsorted(times, horizon, side="right"))
            if keep == 0:
                return
            if keep < block_size:
                yield ChurnBlock(
                    times[:keep],
                    kinds[:keep],
                    sessions=sample_session_array(session_dist, rng, keep),
                )
                return
        sessions = sample_session_array(session_dist, rng, block_size)
        yield ChurnBlock(times, kinds, sessions=sessions)
        now = float(times[-1])


def poisson_join_stream(
    rate: float,
    session_dist: SessionDistribution,
    rng: np.random.Generator,
    horizon: Optional[float] = None,
    start: float = 0.0,
) -> Iterator[GoodJoin]:
    """Per-event adapter over :func:`poisson_join_blocks`."""
    return events_from_blocks(
        poisson_join_blocks(
            rate, session_dist, rng, horizon=horizon, start=start
        )
    )


def modulated_join_blocks(
    rate_fn: Callable[[float], float],
    max_rate: float,
    session_dist: SessionDistribution,
    rng: np.random.Generator,
    horizon: float,
    start: float = 0.0,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[ChurnBlock]:
    """Inhomogeneous Poisson joins via thinning, as churn blocks.

    ``rate_fn(t)`` must never exceed ``max_rate``; candidate arrivals are
    generated at ``max_rate`` (vectorized per block) and kept with
    probability ``rate_fn(t)/max_rate``.  ``rate_fn`` itself is an
    arbitrary Python callable, so it is evaluated per candidate; the RNG
    draws (gaps, acceptance uniforms, sessions) are all vectorized.
    """
    if max_rate <= 0:
        raise ValueError(f"max_rate must be positive: {max_rate}")
    if block_size <= 0:
        raise ValueError(f"block size must be positive: {block_size}")
    scale = 1.0 / max_rate
    bound = max_rate + 1e-9
    now = start
    while True:
        gaps = rng.exponential(scale, size=block_size)
        times = now + np.cumsum(gaps)
        accept = rng.random(block_size)
        keep = int(np.searchsorted(times, horizon, side="right"))
        done = keep < block_size
        kept_times: List[float] = []
        for i in range(keep):
            t = float(times[i])
            rate = rate_fn(t)
            if rate < 0 or rate > bound:
                raise ValueError(f"rate_fn({t}) = {rate} outside [0, {max_rate}]")
            if accept[i] < rate / max_rate:
                kept_times.append(t)
        if kept_times:
            n = len(kept_times)
            yield ChurnBlock(
                kept_times,
                np.full(n, JOIN, dtype=np.uint8),
                sessions=sample_session_array(session_dist, rng, n),
            )
        if done:
            return
        now = float(times[-1])


def modulated_join_stream(
    rate_fn: Callable[[float], float],
    max_rate: float,
    session_dist: SessionDistribution,
    rng: np.random.Generator,
    horizon: float,
    start: float = 0.0,
) -> Iterator[GoodJoin]:
    """Per-event adapter over :func:`modulated_join_blocks`."""
    return events_from_blocks(
        modulated_join_blocks(
            rate_fn, max_rate, session_dist, rng, horizon, start=start
        )
    )


def diurnal_rate(base_rate: float, amplitude: float, period: float = 86_400.0):
    """A day-night modulated rate: ``base·(1 + amplitude·sin(2πt/period))``."""
    if not 0 <= amplitude < 1:
        raise ValueError(f"amplitude must be in [0, 1): {amplitude}")

    def rate_fn(t: float) -> float:
        return base_rate * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period))

    return rate_fn


def smooth_trace(
    n0: int,
    epoch_rates: Sequence[float],
    rng: np.random.Generator,
    beta: float = 1.0,
    keep_size_constant: bool = True,
) -> List[Event]:
    """An exactly α,β-smooth trace with planned epoch rates.

    Construction: the system holds ``n0`` good IDs.  For epoch *i* with
    rate ``ρ_i``, joins are spaced ``1/ρ_i`` apart (β = 1) or jittered
    within their slot by up to a factor β (β > 1, which keeps counts
    within the Definition-1 window).  Each join is paired with a
    departure of the *oldest* present ID, so the size stays constant and
    the good-set symmetric difference advances by exactly 2 per pair --
    which makes each planned epoch complete exactly where intended
    (after ``n0/4 + 1`` pairs the difference strictly exceeds ``n0/2``).

    The effective α of the trace is ``max_i ρ_{i+1}/ρ_i`` (and its
    inverse); callers pick ``epoch_rates`` accordingly.

    Returns a flat, time-ordered event list.  Departures reference
    explicit idents; joins carry idents ``e{epoch}-j{index}``.  Pack it
    with :func:`repro.sim.blocks.blocks_from_events` to feed the
    engine's batched fast path.
    """
    if n0 < 4:
        raise ValueError(f"n0 too small for a smooth trace: {n0}")
    if beta < 1.0:
        raise ValueError(f"beta must be >= 1: {beta}")
    events: List[Event] = []
    population: List[str] = [f"init-{i}" for i in range(n0)]
    now = 0.0
    for epoch_index, rate in enumerate(epoch_rates):
        if rate <= 0:
            raise ValueError(f"epoch rate must be positive: {rate}")
        # n0/4 + 1 join+departure pairs advance the good symmetric
        # difference to strictly more than n0/2, ending the epoch.
        pairs = max(n0 // 4 + 1, 2)
        slot = 1.0 / rate
        for pair_index in range(pairs):
            base = now + pair_index * slot
            if beta > 1.0:
                jitter = slot * (1.0 - 1.0 / beta)
                offset = float(rng.uniform(0.0, jitter))
            else:
                offset = 0.0
            join_time = base + offset
            ident = f"e{epoch_index}-j{pair_index}"
            events.append(GoodJoin(time=join_time, ident=ident))
            population.append(ident)
            if keep_size_constant:
                # Oldest-first departures guarantee every pair moves the
                # symmetric difference by 2 (the victim is always a
                # snapshot member while the epoch lasts).
                victim = population.pop(0)
                events.append(GoodDeparture(time=join_time + slot * 0.25, ident=victim))
        now += pairs * slot
    events.sort(key=lambda e: e.time)
    return events
