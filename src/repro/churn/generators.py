"""Good-churn event generators.

Two families:

* **Measurement-style generators** (:func:`poisson_join_stream`,
  :func:`modulated_join_stream`): joins arrive by a (possibly
  inhomogeneous) Poisson process and each joiner carries a session
  duration sampled from a network's session distribution.  Departures
  happen when sessions expire -- the engine schedules them.  This is how
  the paper simulates BitTorrent, Ethereum and Gnutella (Section 10).

* **Exactly-smooth synthetic traces** (:func:`smooth_trace`): events are
  laid out to satisfy α,β-smoothness *by construction*, with a planned
  sequence of epoch rates.  Used by property tests that compare
  GoodJEst's estimate against the Theorem-2 envelope for known (α, β).
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.churn.sessions import SessionDistribution
from repro.sim.events import Event, GoodDeparture, GoodJoin


def poisson_join_stream(
    rate: float,
    session_dist: SessionDistribution,
    rng: np.random.Generator,
    horizon: Optional[float] = None,
    start: float = 0.0,
) -> Iterator[GoodJoin]:
    """Homogeneous Poisson joins at ``rate`` per second, with sessions."""
    if rate <= 0:
        return
    now = start
    while True:
        now += float(rng.exponential(1.0 / rate))
        if horizon is not None and now > horizon:
            return
        yield GoodJoin(time=now, session=session_dist.sample(rng))


def modulated_join_stream(
    rate_fn: Callable[[float], float],
    max_rate: float,
    session_dist: SessionDistribution,
    rng: np.random.Generator,
    horizon: float,
    start: float = 0.0,
) -> Iterator[GoodJoin]:
    """Inhomogeneous Poisson joins via thinning (e.g. diurnal patterns).

    ``rate_fn(t)`` must never exceed ``max_rate``; candidate arrivals are
    generated at ``max_rate`` and kept with probability
    ``rate_fn(t)/max_rate``.
    """
    if max_rate <= 0:
        raise ValueError(f"max_rate must be positive: {max_rate}")
    now = start
    while True:
        now += float(rng.exponential(1.0 / max_rate))
        if now > horizon:
            return
        rate = rate_fn(now)
        if rate < 0 or rate > max_rate + 1e-9:
            raise ValueError(f"rate_fn({now}) = {rate} outside [0, {max_rate}]")
        if rng.random() < rate / max_rate:
            yield GoodJoin(time=now, session=session_dist.sample(rng))


def diurnal_rate(base_rate: float, amplitude: float, period: float = 86_400.0):
    """A day-night modulated rate: ``base·(1 + amplitude·sin(2πt/period))``."""
    if not 0 <= amplitude < 1:
        raise ValueError(f"amplitude must be in [0, 1): {amplitude}")

    def rate_fn(t: float) -> float:
        return base_rate * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period))

    return rate_fn


def smooth_trace(
    n0: int,
    epoch_rates: Sequence[float],
    rng: np.random.Generator,
    beta: float = 1.0,
    keep_size_constant: bool = True,
) -> List[Event]:
    """An exactly α,β-smooth trace with planned epoch rates.

    Construction: the system holds ``n0`` good IDs.  For epoch *i* with
    rate ``ρ_i``, joins are spaced ``1/ρ_i`` apart (β = 1) or jittered
    within their slot by up to a factor β (β > 1, which keeps counts
    within the Definition-1 window).  Each join is paired with a
    departure of the *oldest* present ID, so the size stays constant and
    the good-set symmetric difference advances by exactly 2 per pair --
    which makes each planned epoch complete exactly where intended
    (after ``n0/4 + 1`` pairs the difference strictly exceeds ``n0/2``).

    The effective α of the trace is ``max_i ρ_{i+1}/ρ_i`` (and its
    inverse); callers pick ``epoch_rates`` accordingly.

    Returns a flat, time-ordered event list.  Departures reference
    explicit idents; joins carry idents ``e{epoch}-j{index}``.
    """
    if n0 < 4:
        raise ValueError(f"n0 too small for a smooth trace: {n0}")
    if beta < 1.0:
        raise ValueError(f"beta must be >= 1: {beta}")
    events: List[Event] = []
    population: List[str] = [f"init-{i}" for i in range(n0)]
    now = 0.0
    for epoch_index, rate in enumerate(epoch_rates):
        if rate <= 0:
            raise ValueError(f"epoch rate must be positive: {rate}")
        # n0/4 + 1 join+departure pairs advance the good symmetric
        # difference to strictly more than n0/2, ending the epoch.
        pairs = max(n0 // 4 + 1, 2)
        slot = 1.0 / rate
        for pair_index in range(pairs):
            base = now + pair_index * slot
            if beta > 1.0:
                jitter = slot * (1.0 - 1.0 / beta)
                offset = float(rng.uniform(0.0, jitter))
            else:
                offset = 0.0
            join_time = base + offset
            ident = f"e{epoch_index}-j{pair_index}"
            events.append(GoodJoin(time=join_time, ident=ident))
            population.append(ident)
            if keep_size_constant:
                # Oldest-first departures guarantee every pair moves the
                # symmetric difference by 2 (the victim is always a
                # snapshot member while the epoch lasts).
                victim = population.pop(0)
                events.append(GoodDeparture(time=join_time + slot * 0.25, ident=victim))
        now += pairs * slot
    events.sort(key=lambda e: e.time)
    return events
