"""Measuring α and β of a trace (Definition 1).

The ABC model's parameters are a priori unknown; these utilities compute
the smallest (α, β) a given trace satisfies, so experiments can report
effective smoothness and tests can verify that generated traces respect
the parameters they were built with.

* α: the maximum ratio between consecutive epochs' join rates (and its
  inverse), over all completed epochs.
* β: for each probed duration ℓ inside an epoch with rate ρ, Definition
  1 demands ``⌊ℓρ/β⌋ ≤ joins ≤ ⌈βℓρ⌉`` and ``departures ≤ ⌈βℓρ⌉``; the
  measured β is the smallest value satisfying all probes.  Probing every
  (start, length) pair is quadratic, so we scan a configurable set of
  window lengths with sliding windows -- exact for those lengths, a
  lower bound on the true β overall.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.churn.epochs import Epoch
from repro.sim.events import Event, GoodDeparture, GoodJoin


@dataclass(frozen=True)
class SmoothnessEstimate:
    """Measured (α, β) for a trace."""

    alpha: float
    beta: float
    epochs: int


def measure_alpha(epochs: Sequence[Epoch]) -> float:
    """Smallest α such that consecutive epoch rates are α-smooth."""
    alpha = 1.0
    previous: Optional[float] = None
    for epoch in epochs:
        rate = epoch.join_rate
        if rate is None or rate <= 0:
            continue
        if previous is not None and previous > 0:
            ratio = rate / previous
            alpha = max(alpha, ratio, 1.0 / ratio)
        previous = rate
    return alpha


def _beta_for_count(count: int, expected: float, departures: bool) -> float:
    """Smallest β making one window's count legal under Definition 1."""
    if expected <= 0:
        return 1.0
    beta = 1.0
    # Upper constraint: count ≤ ⌈β·expected⌉  ⇒  β ≥ (count − 1)/expected
    # (using the ceiling's slack of strictly less than 1).
    if count > math.ceil(expected):
        beta = max(beta, (count - 1) / expected)
    if departures:
        return beta
    # Lower constraint: count ≥ ⌊expected/β⌋  ⇒  β ≥ expected/(count + 1).
    if count < math.floor(expected):
        beta = max(beta, expected / (count + 1))
    return beta


def measure_beta(
    events: Sequence[Event],
    epochs: Sequence[Epoch],
    window_lengths: Optional[Sequence[float]] = None,
) -> float:
    """Smallest β satisfying Definition 1 for the probed window lengths."""
    join_times = sorted(e.time for e in events if isinstance(e, GoodJoin))
    depart_times = sorted(e.time for e in events if isinstance(e, GoodDeparture))
    beta = 1.0
    for epoch in epochs:
        rate = epoch.join_rate
        if rate is None or rate <= 0 or epoch.end is None:
            continue
        duration = epoch.end - epoch.start
        lengths = window_lengths
        if lengths is None:
            lengths = [duration / 8, duration / 4, duration / 2, duration]
        for length in lengths:
            if length <= 0 or length > duration:
                continue
            beta = max(
                beta,
                _scan_windows(join_times, epoch, length, rate, departures=False),
                _scan_windows(depart_times, epoch, length, rate, departures=True),
            )
    return beta


def _scan_windows(
    times: List[float], epoch: Epoch, length: float, rate: float, departures: bool
) -> float:
    """Slide a window of ``length`` across the epoch; worst-case β."""
    expected = length * rate
    beta = 1.0
    start = epoch.start
    step = max(length / 4.0, 1e-9)
    while start + length <= epoch.end + 1e-12:
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_right(times, start + length)
        beta = max(beta, _beta_for_count(hi - lo, expected, departures))
        start += step
    return beta


def estimate_smoothness(
    events: Sequence[Event],
    epochs: Sequence[Epoch],
    window_lengths: Optional[Sequence[float]] = None,
) -> SmoothnessEstimate:
    """Measured (α, β) over a trace's completed epochs."""
    return SmoothnessEstimate(
        alpha=measure_alpha(epochs),
        beta=measure_beta(events, epochs, window_lengths),
        epochs=len(epochs),
    )


def verify_smoothness(
    events: Sequence[Event],
    epochs: Sequence[Epoch],
    alpha: float,
    beta: float,
    tolerance: float = 1e-9,
) -> bool:
    """Does the trace satisfy Definition 1 for the declared (α, β)?"""
    measured = estimate_smoothness(events, epochs)
    return measured.alpha <= alpha + tolerance and measured.beta <= beta + tolerance
