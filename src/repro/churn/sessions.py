"""Session-time distributions and equilibrium residual sampling.

Real churn studies characterize systems by their session-time
distributions: Weibull fits for KAD, Bitcoin, Ethereum and BitTorrent;
exponential for Gnutella (Section 4.2 and Section 10).  This module
provides those distributions plus *equilibrium residual* sampling: when
a simulation starts with a population already in steady state, the
remaining lifetime of an initial member follows the equilibrium (excess
life) distribution ``F_e(x) = (1/μ)·∫₀ˣ S(u) du`` (renewal theory), not
the session distribution itself.  We invert ``F_e`` numerically on a
quantile grid, which works uniformly for every distribution here.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np


class SessionDistribution(Protocol):
    """Anything that can sample session lengths and report its shape.

    Distributions may additionally provide ``sample_array(rng, n)`` for
    vectorized draws; block-mode churn generators use
    :func:`sample_session_array`, which falls back to an n-draw loop for
    distributions that only implement :meth:`sample`.
    """

    def sample(self, rng: np.random.Generator) -> float:
        """One session duration, in seconds."""
        ...

    def mean(self) -> float:
        """Mean session duration, in seconds."""
        ...

    def survival(self, x: float) -> float:
        """P(session > x)."""
        ...


def sample_session_array(
    dist, rng: np.random.Generator, n: int
) -> np.ndarray:
    """``n`` vectorized session draws, looping only when unavoidable."""
    if n < 0:
        raise ValueError(f"negative sample count: {n}")
    sample_array = getattr(dist, "sample_array", None)
    if sample_array is not None:
        return sample_array(rng, n)
    return np.asarray([dist.sample(rng) for _ in range(n)], dtype=np.float64)


class WeibullSessions:
    """Weibull(shape k, scale λ) sessions, in seconds.

    Used for BitTorrent (k=0.59, λ=41 min; Stutzbach & Rejaie [12]),
    Ethereum (k=0.52, λ=9.8 h; Kim et al. [96]), and the synthetic
    Bitcoin trace (Weibull fits per Imtiaz et al. [53]).
    """

    def __init__(self, shape: float, scale_seconds: float) -> None:
        if shape <= 0 or scale_seconds <= 0:
            raise ValueError(f"invalid Weibull parameters: {shape}, {scale_seconds}")
        self.shape = float(shape)
        self.scale = float(scale_seconds)

    def sample(self, rng: np.random.Generator) -> float:
        return self.scale * float(rng.weibull(self.shape))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def survival(self, x: float) -> float:
        if x <= 0:
            return 1.0
        return math.exp(-((x / self.scale) ** self.shape))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeibullSessions(shape={self.shape}, scale={self.scale:.1f}s)"


class ExponentialSessions:
    """Exponential sessions (Gnutella: mean 2.3 h [97])."""

    def __init__(self, mean_seconds: float) -> None:
        if mean_seconds <= 0:
            raise ValueError(f"invalid exponential mean: {mean_seconds}")
        self._mean = float(mean_seconds)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self._mean, size=n)

    def mean(self) -> float:
        return self._mean

    def survival(self, x: float) -> float:
        if x <= 0:
            return 1.0
        return math.exp(-x / self._mean)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExponentialSessions(mean={self._mean:.1f}s)"


class LogNormalSessions:
    """Log-normal sessions (observed in some file-sharing studies [52])."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive: {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def survival(self, x: float) -> float:
        if x <= 0:
            return 1.0
        z = (math.log(x) - self.mu) / self.sigma
        return 0.5 * math.erfc(z / math.sqrt(2.0))


class EquilibriumResidualSampler:
    """Samples residual lifetimes from the equilibrium distribution.

    Builds ``F_e(x) = (1/μ)·∫₀ˣ S(u) du`` on a log-spaced grid out to the
    far tail and inverts it by interpolation.  Exact enough that a
    steady-state initial population neither surges nor starves the
    departure process (verified by tests against the exponential case,
    where the equilibrium distribution equals the session distribution).
    """

    GRID_POINTS = 4096
    TAIL_QUANTILE = 1.0 - 1.0e-7

    def __init__(self, sessions: SessionDistribution) -> None:
        self._sessions = sessions
        mean = sessions.mean()
        upper = self._tail_bound()
        # Dense near zero (heavy mass for shape < 1 Weibulls), log-spaced.
        grid = np.concatenate(
            [[0.0], np.geomspace(upper * 1e-9, upper, self.GRID_POINTS)]
        )
        survival = np.array([sessions.survival(x) for x in grid])
        cumulative = np.concatenate(
            [[0.0], np.cumsum(np.diff(grid) * 0.5 * (survival[1:] + survival[:-1]))]
        )
        self._grid = grid
        self._cdf = cumulative / mean
        # Normalize tail truncation error so inversion covers [0, 1).
        self._cdf_max = float(self._cdf[-1])

    def _tail_bound(self) -> float:
        """An x with ``P(session > x)`` below the tail quantile's mass."""
        x = self._sessions.mean()
        target = 1.0 - self.TAIL_QUANTILE
        while self._sessions.survival(x) > target:
            x *= 2.0
            if x > 1e15:  # pragma: no cover - pathological distribution
                break
        return x

    def sample(self, rng: np.random.Generator) -> float:
        u = float(rng.random()) * self._cdf_max
        return float(np.interp(u, self._cdf, self._grid))
