"""Epoch detection (Section 2.1.2).

"Time is partitioned into epochs whose boundaries occur when the
symmetric difference between the sets of good IDs at the start and the
end of the epoch exceeds 1/2 times the number of good IDs at the
start."  Protocols never *use* epoch boundaries (they are an analysis
device), but the experiments need them to compute true per-epoch join
rates ρ_i -- the denominator of Figure 9's estimate/true ratio -- and
the smoothness measurements need them to compute α and β.

Two implementations:

* :class:`EpochTracker` -- online, driven by join/departure callbacks
  (attachable to a defense's population view).
* :func:`find_epochs` -- offline, over a materialized good-churn trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.churn.abc_model import EPOCH_THRESHOLD
from repro.sim.events import Event, GoodDeparture, GoodJoin


@dataclass(frozen=True)
class Epoch:
    """One completed (or in-progress) epoch."""

    index: int
    start: float
    end: Optional[float]
    joins: int
    start_size: int

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def join_rate(self) -> Optional[float]:
        """ρ_i: good joins divided by epoch length (Section 2.1.2)."""
        duration = self.duration
        if duration is None or duration <= 0:
            return None
        return self.joins / duration


class EpochTracker:
    """Online epoch detection over the good-ID set."""

    def __init__(self, threshold: float = EPOCH_THRESHOLD) -> None:
        self._threshold = float(threshold)
        self._snapshot: Set[str] = set()
        self._present: Set[str] = set()
        self._departed_from_snapshot = 0
        self._joined_since_snapshot: Set[str] = set()
        self._epoch_start = 0.0
        self._epoch_joins = 0
        self._completed: List[Epoch] = []

    def start(self, good_ids: List[str], now: float) -> None:
        self._present = set(good_ids)
        self._begin_epoch(now)

    def _begin_epoch(self, now: float) -> None:
        self._snapshot = set(self._present)
        self._departed_from_snapshot = 0
        self._joined_since_snapshot = set()
        self._epoch_start = now
        self._epoch_joins = 0

    def on_join(self, ident: str, now: float) -> None:
        self._present.add(ident)
        self._joined_since_snapshot.add(ident)
        self._epoch_joins += 1
        self._maybe_roll(now)

    def on_depart(self, ident: str, now: float) -> None:
        if ident not in self._present:
            return
        self._present.discard(ident)
        if ident in self._joined_since_snapshot:
            self._joined_since_snapshot.discard(ident)
        elif ident in self._snapshot:
            self._snapshot.discard(ident)
            self._departed_from_snapshot += 1
        self._maybe_roll(now)

    def _sym_diff(self) -> int:
        return len(self._joined_since_snapshot) + self._departed_from_snapshot

    def _maybe_roll(self, now: float) -> None:
        start_size = len(self._snapshot) + self._departed_from_snapshot
        if start_size == 0:
            return
        if self._sym_diff() <= self._threshold * start_size:
            return
        self._completed.append(
            Epoch(
                index=len(self._completed),
                start=self._epoch_start,
                end=now,
                joins=self._epoch_joins,
                start_size=start_size,
            )
        )
        self._begin_epoch(now)

    @property
    def completed(self) -> List[Epoch]:
        return list(self._completed)

    def current_epoch_rate(self, now: float) -> Optional[float]:
        """Join rate of the in-progress epoch so far (None if too fresh)."""
        elapsed = now - self._epoch_start
        if elapsed <= 0:
            return None
        return self._epoch_joins / elapsed


def find_epochs(
    events: List[Event],
    initial_good: List[str],
    start_time: float = 0.0,
) -> List[Epoch]:
    """Offline epoch detection over a materialized trace.

    Departures with ``ident=None`` are not supported here (offline
    analysis needs deterministic victims); generate traces with explicit
    idents for epoch analysis.
    """
    tracker = EpochTracker()
    tracker.start(initial_good, start_time)
    counter = 0
    for event in events:
        if isinstance(event, GoodJoin):
            counter += 1
            ident = event.ident if event.ident is not None else f"anon-{counter}"
            tracker.on_join(ident, event.time)
        elif isinstance(event, GoodDeparture):
            if event.ident is None:
                raise ValueError("offline epoch analysis needs explicit idents")
            tracker.on_depart(event.ident, event.time)
    return tracker.completed
