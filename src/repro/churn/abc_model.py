"""The ABC (α,β-churn) model: Definition 1 and parameter bounds.

Good churn is specified by two a-priori-unknown parameters:

* **α-smoothness**: the good join rate between two consecutive epochs
  differs by at most an α-factor: ``ρ_{i-1}/α ≤ ρ_i ≤ α·ρ_{i-1}``.
* **β-smoothness**: over any ℓ consecutive seconds within epoch *i*, the
  number of good joins lies in ``[⌊ℓρ_i/β⌋, ⌈βℓρ_i⌉]`` and the number of
  good departures is at most ``⌈βℓρ_i⌉``.

α captures how fast the rate changes *across* epochs (even α = 2 allows
exponential growth/decay over many epochs); β captures burstiness
*within* an epoch.

The guarantees additionally require (Section 2.1.2, discussed in 9.3):

* ``n₀ ≥ max(6000, (720(γ+1))^{4/3}, (41β)²)``,
* at most an ε-fraction of good IDs departs per round, ε < 1/12,
* a system lifetime of ``n₀^γ`` join/departure events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Epochs end when the good-set symmetric difference reaches half the
#: good population at the epoch start (Section 2.1.2).
EPOCH_THRESHOLD = 0.5

#: Upper bound on the per-round good departure fraction.
EPSILON_BOUND = 1.0 / 12.0


def minimum_n0(gamma: float, beta: float) -> int:
    """The smallest n₀ for which Theorems 1 and 2 hold.

    ``n₀ ≥ max{6000, (720(γ+1))^{4/3}, (41β)²}`` (Section 2.1.2).
    """
    if gamma <= 0:
        raise ValueError(f"gamma must be positive: {gamma}")
    if beta < 1:
        raise ValueError(f"beta must be >= 1: {beta}")
    return max(
        6000,
        math.ceil((720.0 * (gamma + 1.0)) ** (4.0 / 3.0)),
        math.ceil((41.0 * beta) ** 2),
    )


@dataclass(frozen=True)
class AbcParameters:
    """A declared (α, β) pair, with validity checks.

    Definition 1 requires α ≥ 1 and β ≥ 1.
    """

    alpha: float = 1.0
    beta: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1: {self.alpha}")
        if self.beta < 1.0:
            raise ValueError(f"beta must be >= 1: {self.beta}")

    def allows_rate_change(self, previous_rate: float, next_rate: float) -> bool:
        """α-smoothness check between two consecutive epoch rates."""
        if previous_rate <= 0 or next_rate <= 0:
            return False
        ratio = next_rate / previous_rate
        return 1.0 / self.alpha - 1e-12 <= ratio <= self.alpha + 1e-12

    def join_bounds(self, duration: float, rate: float) -> tuple[int, int]:
        """The β-smoothness join-count window ``[⌊ℓρ/β⌋, ⌈βℓρ⌉]``."""
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        low = math.floor(duration * rate / self.beta)
        high = math.ceil(self.beta * duration * rate)
        return low, high

    def departure_bound(self, duration: float, rate: float) -> int:
        """The β-smoothness departure ceiling ``⌈βℓρ⌉``."""
        return math.ceil(self.beta * duration * rate)
