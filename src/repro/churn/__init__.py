"""Churn substrate: the ABC model and the evaluation networks.

* :mod:`repro.churn.abc_model` -- Definition 1 (α- and β-smoothness)
  and the model's parameter bounds (n₀, ε, γ).
* :mod:`repro.churn.epochs` -- epoch detection via the symmetric
  difference of good-ID sets (Section 2.1.2).
* :mod:`repro.churn.sessions` -- session-time distributions (Weibull,
  exponential, log-normal) with equilibrium residual sampling for
  steady-state initial populations.
* :mod:`repro.churn.generators` -- Poisson and inhomogeneous-Poisson
  join processes, plus exactly α,β-smooth synthetic traces.
* :mod:`repro.churn.datasets` -- the four evaluation networks (Bitcoin,
  BitTorrent, Ethereum, Gnutella) from Section 10.
* :mod:`repro.churn.traces` -- materialized traces, statistics, CSV I/O.
"""

from repro.churn.abc_model import AbcParameters, minimum_n0
from repro.churn.datasets import (
    NETWORKS,
    NetworkModel,
    bitcoin,
    bittorrent,
    ethereum,
    gnutella,
)
from repro.churn.epochs import Epoch, EpochTracker, find_epochs
from repro.churn.generators import (
    modulated_join_blocks,
    modulated_join_stream,
    poisson_join_blocks,
    poisson_join_stream,
    smooth_trace,
)
from repro.sim.blocks import ChurnBlock, blocks_from_events, events_from_blocks
from repro.churn.sessions import (
    EquilibriumResidualSampler,
    ExponentialSessions,
    LogNormalSessions,
    WeibullSessions,
)
from repro.churn.traces import ChurnScenario, InitialMember, TraceStats, trace_stats

__all__ = [
    "AbcParameters",
    "ChurnBlock",
    "ChurnScenario",
    "Epoch",
    "EpochTracker",
    "EquilibriumResidualSampler",
    "ExponentialSessions",
    "InitialMember",
    "LogNormalSessions",
    "NETWORKS",
    "NetworkModel",
    "TraceStats",
    "WeibullSessions",
    "bitcoin",
    "bittorrent",
    "blocks_from_events",
    "ethereum",
    "events_from_blocks",
    "find_epochs",
    "gnutella",
    "minimum_n0",
    "modulated_join_blocks",
    "modulated_join_stream",
    "poisson_join_blocks",
    "poisson_join_stream",
    "smooth_trace",
    "trace_stats",
]
