"""Materialized churn traces: containers, statistics, CSV round-trips.

A scenario's ``events`` may be classic per-event objects *or*
struct-of-arrays :class:`~repro.sim.blocks.ChurnBlock` batches (the
block form is what the network models produce and the engine's fast
path consumes).  :func:`trace_stats` and :func:`save_trace_csv` operate
on blocks **without expanding them**: statistics are computed with
vectorized array reductions and CSV rows are emitted straight from the
arrays, so a block stream of any length passes through in bounded
memory (per-event objects are only ever built for per-event inputs).
:meth:`ChurnScenario.replay` still expands blocks for classic
consumers.

CSV paths ending in ``.gz`` are transparently (de)compressed, matching
the :mod:`repro.traces` streaming reader's convention.
"""

from __future__ import annotations

import collections.abc
import csv
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.sim.blocks import ChurnBlock, JOIN, flatten_churn as _iter_flat
from repro.sim.events import Event, GoodDeparture, GoodJoin
from repro.traces.io import TRACE_CSV_HEADER, open_trace_text


@dataclass(frozen=True)
class InitialMember:
    """A good ID present at time zero, with its residual session time."""

    ident: str
    residual: Optional[float] = None


class _SingleUseEvents:
    """Guard around a lazy event stream: a second pass raises, loudly.

    A generator-backed ``ChurnScenario.events`` is single-use; before
    this guard, replaying or computing stats on an unmaterialized
    scenario silently exhausted the stream, and the *next* consumer saw
    an empty trace with no hint why.  Now the first iteration passes
    through untouched and any further iteration raises with the fix.
    """

    __slots__ = ("_iter", "_name", "_consumed")

    def __init__(self, iterable, name: str) -> None:
        self._iter = iter(iterable)
        self._name = name
        self._consumed = False

    def __iter__(self):
        if self._consumed:
            raise RuntimeError(
                f"scenario {self._name!r}: its lazy event stream was "
                "already consumed (generators are single-use); call "
                "materialize() before replaying or computing stats, or "
                "construct the scenario with a list"
            )
        self._consumed = True
        return self._iter


@dataclass
class ChurnScenario:
    """An initial population plus a stream of good-churn events.

    ``events`` may be a list (replayable) or a lazy iterator (single
    use) of events and/or churn blocks; :meth:`materialize` forces a
    list so the scenario can be fed to several defenses for
    apples-to-apples comparisons.  Lazy streams are wrapped so that a
    second iteration raises instead of silently yielding nothing.
    """

    name: str
    initial: List[InitialMember]
    events: Union[Sequence, Iterator]
    description: str = ""

    def __post_init__(self) -> None:
        events = self.events
        # Only true iterators are single-use; re-iterable containers
        # (tuples, deques, arrays) and already-guarded streams are left
        # alone.  The isinstance probe is side-effect free -- calling
        # iter() here would itself consume a single-use source.
        if not isinstance(events, list) and isinstance(
            events, collections.abc.Iterator
        ):
            self.events = _SingleUseEvents(events, self.name)

    def materialize(self) -> "ChurnScenario":
        if not isinstance(self.events, list):
            self.events = list(self.events)
        return self

    def replay(self) -> Iterator[Event]:
        """Iterate per-event objects; requires a materialized scenario."""
        if not isinstance(self.events, list):
            raise TypeError("call materialize() before replaying a scenario")
        return _iter_flat(self.events)


class SortedPeakJoins:
    """Streaming peak of joins per 1-second bin, O(1) memory.

    Assumes bin seconds arrive in non-decreasing order across calls --
    true for every block producer in the repository (generator output,
    compiled scenarios, the streaming trace reader, all of which
    enforce time order), so the peak of an arbitrarily long sorted
    stream needs one open bin and a running maximum rather than a
    per-second map.
    """

    __slots__ = ("sec", "count", "peak")

    def __init__(self) -> None:
        self.sec: Optional[int] = None
        self.count = 0
        self.peak = 0

    def add_block(self, join_times: np.ndarray) -> None:
        seconds, counts = np.unique(
            np.floor(join_times).astype(np.int64), return_counts=True
        )
        for sec, cnt in zip(seconds.tolist(), counts.tolist()):
            if sec == self.sec:
                self.count += cnt
                continue
            if self.count > self.peak:
                self.peak = self.count
            self.sec = sec
            self.count = cnt

    def result(self) -> int:
        return max(self.peak, self.count)


@dataclass
class TraceStats:
    """Summary statistics of an event or block sequence."""

    joins: int = 0
    departures: int = 0
    first_time: float = 0.0
    last_time: float = 0.0
    mean_session: Optional[float] = None
    #: max joins falling into any 1-second bin (0 for join-free traces)
    peak_joins_1s: int = 0

    @property
    def duration(self) -> float:
        return max(self.last_time - self.first_time, 0.0)

    @property
    def join_rate(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.joins / self.duration


def trace_stats(events: Iterable) -> TraceStats:
    """Compute joins/departures/rates for an event or block sequence.

    Blocks are reduced with vectorized array operations -- no per-event
    objects are built -- and their peak-join bins stream through
    :class:`SortedPeakJoins`, so a multi-million-row trace costs
    ``O(block_size)`` memory end to end.  Per-event items keep an exact
    per-second map (they may arrive in any order; such traces are
    small).  In a mixed stream, same-second joins split across the two
    shapes contribute to their own tally and the peak takes the larger.
    """
    stats = TraceStats()
    session_sum = 0.0
    session_count = 0
    first: Optional[float] = None
    last = 0.0
    peak = SortedPeakJoins()
    bins: dict = {}
    for item in events:
        if isinstance(item, ChurnBlock):
            if len(item) == 0:
                continue
            times = item.times
            if first is None:
                first = float(times[0])
            block_last = float(times[-1])
            if block_last > last:
                last = block_last
            join_mask = item.kinds == JOIN
            block_joins = int(np.count_nonzero(join_mask))
            stats.joins += block_joins
            stats.departures += len(item) - block_joins
            if item.sessions is not None and block_joins:
                sessions = item.sessions[join_mask]
                valid = sessions[~np.isnan(sessions)]
                if len(valid):
                    session_sum += float(np.sum(valid))
                    session_count += len(valid)
            if block_joins:
                peak.add_block(times[join_mask])
        else:
            event = item
            if first is None:
                first = event.time
            last = max(last, event.time)
            if isinstance(event, GoodJoin):
                stats.joins += 1
                if event.session is not None:
                    session_sum += event.session
                    session_count += 1
                sec = int(np.floor(event.time))
                bins[sec] = bins.get(sec, 0) + 1
            elif isinstance(event, GoodDeparture):
                stats.departures += 1
    stats.first_time = first if first is not None else 0.0
    stats.last_time = last
    if session_count:
        stats.mean_session = session_sum / session_count
    stats.peak_joins_1s = max(peak.result(), max(bins.values(), default=0))
    return stats


def _write_block_rows(writer, block: ChurnBlock) -> None:
    """Emit one block's CSV rows straight from its arrays.

    Produces byte-identical output to expanding the block into events
    first (including the historical falsy-cell rule: a 0.0 session and
    an empty ident both serialize as empty cells).
    """
    times = block.times.tolist()
    kinds = block.kinds.tolist()
    sessions = block.sessions.tolist() if block.sessions is not None else None
    idents = block.idents
    for i, t in enumerate(times):
        ident = idents[i] if idents is not None else None
        if kinds[i] == JOIN:
            session = sessions[i] if sessions is not None else None
            cell = session if session is not None and session == session and session else ""
            writer.writerow([f"{t:.6f}", "join", ident or "", cell])
        else:
            writer.writerow([f"{t:.6f}", "depart", ident or "", ""])


def save_trace_csv(path, events: Iterable) -> None:
    """Write a trace (events and/or blocks) as ``time,kind,ident,session``.

    Streams: blocks are serialized row-by-row from their arrays without
    expansion, and ``events`` may be a lazy iterable, so converting an
    arbitrarily long block stream to CSV runs in bounded memory.  A
    ``.gz`` path writes gzip-compressed output.
    """
    with open_trace_text(path, "wt") as handle:
        writer = csv.writer(handle)
        writer.writerow(TRACE_CSV_HEADER)
        for item in events:
            if isinstance(item, ChurnBlock):
                _write_block_rows(writer, item)
            elif isinstance(item, GoodJoin):
                writer.writerow(
                    [f"{item.time:.6f}", "join", item.ident or "", item.session or ""]
                )
            elif isinstance(item, GoodDeparture):
                writer.writerow([f"{item.time:.6f}", "depart", item.ident or "", ""])
            else:
                raise TypeError(
                    f"cannot serialize event type {type(item).__name__}"
                )


def load_trace_csv(path) -> List[Event]:
    """Read a trace written by :func:`save_trace_csv` (gzip-aware).

    This is the *eager* loader -- every row becomes an ``Event`` object.
    For long traces use :func:`repro.traces.stream_trace_blocks`, which
    yields churn blocks in bounded memory instead.
    """
    events: List[Event] = []
    with open_trace_text(path) as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            time = float(row["time"])
            ident = row["ident"] or None
            if row["kind"] == "join":
                session = float(row["session"]) if row["session"] else None
                events.append(GoodJoin(time=time, ident=ident, session=session))
            elif row["kind"] == "depart":
                events.append(GoodDeparture(time=time, ident=ident))
            else:
                raise ValueError(f"unknown event kind {row['kind']!r}")
    return events
