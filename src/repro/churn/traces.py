"""Materialized churn traces: containers, statistics, CSV round-trips.

A scenario's ``events`` may be classic per-event objects *or*
struct-of-arrays :class:`~repro.sim.blocks.ChurnBlock` batches (the
block form is what the network models produce and the engine's fast
path consumes).  Everything here that inspects individual events
(:meth:`ChurnScenario.replay`, :func:`trace_stats`,
:func:`save_trace_csv`) transparently expands blocks, so per-event
consumers keep working either way.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.sim.blocks import flatten_churn as _iter_flat
from repro.sim.events import Event, GoodDeparture, GoodJoin


@dataclass(frozen=True)
class InitialMember:
    """A good ID present at time zero, with its residual session time."""

    ident: str
    residual: Optional[float] = None


@dataclass
class ChurnScenario:
    """An initial population plus a stream of good-churn events.

    ``events`` may be a list (replayable) or a lazy iterator (single
    use) of events and/or churn blocks; :meth:`materialize` forces a
    list so the scenario can be fed to several defenses for
    apples-to-apples comparisons.
    """

    name: str
    initial: List[InitialMember]
    events: Union[Sequence, Iterator]
    description: str = ""

    def materialize(self) -> "ChurnScenario":
        if not isinstance(self.events, list):
            self.events = list(self.events)
        return self

    def replay(self) -> Iterator[Event]:
        """Iterate per-event objects; requires a materialized scenario."""
        if not isinstance(self.events, list):
            raise TypeError("call materialize() before replaying a scenario")
        return _iter_flat(self.events)


@dataclass
class TraceStats:
    """Summary statistics of a materialized event list."""

    joins: int = 0
    departures: int = 0
    first_time: float = 0.0
    last_time: float = 0.0
    mean_session: Optional[float] = None

    @property
    def duration(self) -> float:
        return max(self.last_time - self.first_time, 0.0)

    @property
    def join_rate(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.joins / self.duration


def trace_stats(events: Iterable) -> TraceStats:
    """Compute joins/departures/rates for an event or block sequence."""
    stats = TraceStats()
    sessions: List[float] = []
    first: Optional[float] = None
    last = 0.0
    for event in _iter_flat(events):
        if first is None:
            first = event.time
        last = max(last, event.time)
        if isinstance(event, GoodJoin):
            stats.joins += 1
            if event.session is not None:
                sessions.append(event.session)
        elif isinstance(event, GoodDeparture):
            stats.departures += 1
    stats.first_time = first if first is not None else 0.0
    stats.last_time = last
    if sessions:
        stats.mean_session = sum(sessions) / len(sessions)
    return stats


def save_trace_csv(path: Union[str, Path], events: Sequence) -> None:
    """Write a trace (events or blocks) as ``time,kind,ident,session`` rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "kind", "ident", "session"])
        for event in _iter_flat(events):
            if isinstance(event, GoodJoin):
                writer.writerow(
                    [f"{event.time:.6f}", "join", event.ident or "", event.session or ""]
                )
            elif isinstance(event, GoodDeparture):
                writer.writerow([f"{event.time:.6f}", "depart", event.ident or "", ""])
            else:
                raise TypeError(f"cannot serialize event type {type(event).__name__}")


def load_trace_csv(path: Union[str, Path]) -> List[Event]:
    """Read a trace written by :func:`save_trace_csv`."""
    events: List[Event] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            time = float(row["time"])
            ident = row["ident"] or None
            if row["kind"] == "join":
                session = float(row["session"]) if row["session"] else None
                events.append(GoodJoin(time=time, ident=ident, session=session))
            elif row["kind"] == "depart":
                events.append(GoodDeparture(time=time, ident=ident))
            else:
                raise ValueError(f"unknown event kind {row['kind']!r}")
    return events
