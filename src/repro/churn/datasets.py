"""The four evaluation networks (Section 10).

The paper draws churn from:

* **Bitcoin** -- a real event trace (Neudecker et al. [95, 100]; 9212
  initial IDs, ~7 days).  That dataset is unavailable offline, so we
  substitute a synthetic trace with Weibull sessions (shape 0.5, mean
  ≈ 5 h, consistent with the Weibull fits of Imtiaz et al. [53]) at the
  steady-state arrival rate.  See DESIGN.md §3 for why this preserves
  the relevant behaviour (Ergo sees only rates and burstiness).
* **BitTorrent** -- Weibull sessions, shape 0.59, scale 41.0 minutes
  (Stutzbach & Rejaie [12]); the paper itself simulates from this fit.
* **Ethereum** -- Weibull sessions, shape 0.52, scale 9.8 hours (Kim et
  al. [96]).
* **Gnutella** -- exponential sessions with mean 2.3 hours and Poisson
  arrivals at 1 ID/second (Rowaihy et al. [97]).

Arrival rates default to the M/G/∞ steady state ``λ = n₀ / E[session]``
so the population hovers around its initial size; Gnutella pins λ = 1/s
per the paper.  Initial members receive equilibrium residual lifetimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.churn.generators import DEFAULT_BLOCK_SIZE, poisson_join_blocks
from repro.churn.sessions import (
    EquilibriumResidualSampler,
    ExponentialSessions,
    SessionDistribution,
    WeibullSessions,
)
from repro.churn.traces import ChurnScenario, InitialMember

MINUTES = 60.0
HOURS = 3600.0


@dataclass
class NetworkModel:
    """A named churn model for one evaluation network."""

    name: str
    n0: int
    sessions: SessionDistribution
    description: str
    arrival_rate: Optional[float] = None  # None = steady-state rate

    def steady_state_rate(self) -> float:
        if self.arrival_rate is not None:
            return self.arrival_rate
        return self.n0 / self.sessions.mean()

    def scenario(
        self,
        horizon: float,
        rng: np.random.Generator,
        n0: Optional[int] = None,
        materialize: bool = True,
        equilibrium: bool = True,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> ChurnScenario:
        """Build a runnable scenario: initial population + join stream.

        ``equilibrium=True`` draws initial members' remaining lifetimes
        from the equilibrium residual distribution (the population is
        already in steady state); ``equilibrium=False`` gives everyone a
        fresh full session at t = 0, matching the paper's simulation
        setup of "initializing with 10,000 IDs" (Section 10.2) -- with
        heavy-tailed sessions this front-loads departures.

        The join stream is produced in block mode (struct-of-arrays
        :class:`~repro.sim.blocks.ChurnBlock` batches of ``block_size``
        rows): the engine applies it through its zero-heap fast path,
        and per-event consumers go through ``scenario.replay()``, which
        expands blocks transparently.
        """
        size = n0 if n0 is not None else self.n0
        if equilibrium:
            residuals = EquilibriumResidualSampler(self.sessions)
            draw = residuals.sample
        else:
            draw = self.sessions.sample
        initial = [
            InitialMember(ident=f"{self.name}-init-{i}", residual=draw(rng))
            for i in range(size)
        ]
        # Scale the arrival rate with the (possibly overridden) initial
        # population so the system stays near its starting size; the
        # paper's rates are tied to its n0.
        rate = self.steady_state_rate() * (size / self.n0)
        events = poisson_join_blocks(
            rate=rate,
            session_dist=self.sessions,
            rng=rng,
            horizon=horizon,
            block_size=block_size,
        )
        scenario = ChurnScenario(
            name=self.name,
            initial=initial,
            events=events,
            description=self.description,
        )
        if materialize:
            scenario.materialize()
        return scenario


def bitcoin() -> NetworkModel:
    """Synthetic Bitcoin-like churn (substitute for the real trace)."""
    return NetworkModel(
        name="bitcoin",
        n0=9212,
        sessions=WeibullSessions(shape=0.50, scale_seconds=2.5 * HOURS),
        description=(
            "Synthetic stand-in for the Neudecker et al. event trace: "
            "Weibull(0.50) sessions with mean ~5h, 9212 initial IDs."
        ),
    )


def bittorrent() -> NetworkModel:
    """BitTorrent churn: Weibull(0.59, 41 min) sessions [12]."""
    return NetworkModel(
        name="bittorrent",
        n0=10_000,
        sessions=WeibullSessions(shape=0.59, scale_seconds=41.0 * MINUTES),
        description="Weibull(shape=0.59, scale=41min) sessions per [12].",
    )


def ethereum() -> NetworkModel:
    """Ethereum churn: Weibull(0.52, 9.8 h) sessions [96]."""
    return NetworkModel(
        name="ethereum",
        n0=10_000,
        sessions=WeibullSessions(shape=0.52, scale_seconds=9.8 * HOURS),
        description="Weibull(shape=0.52, scale=9.8h) sessions per [96].",
    )


def gnutella() -> NetworkModel:
    """Gnutella churn: exponential (2.3 h) sessions, 1 join/s [97]."""
    return NetworkModel(
        name="gnutella",
        n0=10_000,
        sessions=ExponentialSessions(mean_seconds=2.3 * HOURS),
        description="Exponential sessions (mean 2.3h), Poisson 1 ID/s per [97].",
        arrival_rate=1.0,
    )


#: All four evaluation networks, keyed by name (iteration order matches
#: the order the figures present them).
NETWORKS: Dict[str, NetworkModel] = {
    "bitcoin": bitcoin(),
    "bittorrent": bittorrent(),
    "gnutella": gnutella(),
    "ethereum": ethereum(),
}
