"""Fitting session-time distributions from empirical data.

The paper's evaluation networks are parameterized from measurement
studies that fit Weibull/exponential session distributions ([12, 96,
97, 53]).  This module closes the loop for downstream users: given raw
session durations measured from *their* system, recover a
:class:`~repro.churn.sessions.SessionDistribution` and build a
:class:`~repro.churn.datasets.NetworkModel` from it.

Fitting is maximum likelihood:

* exponential -- closed form (the sample mean);
* Weibull -- profile likelihood on the shape: for a fixed shape ``k``
  the MLE scale is ``(Σ xᵢᵏ / n)^{1/k}``, and the profiled shape
  equation is solved by bisection (standard, robust, no scipy.optimize
  dependence on initial guesses);
* log-normal -- closed form on log-durations.

Model selection uses AIC over the three families.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.churn.sessions import (
    ExponentialSessions,
    LogNormalSessions,
    SessionDistribution,
    WeibullSessions,
)


@dataclass(frozen=True)
class FitResult:
    """A fitted family with its log-likelihood and AIC."""

    family: str
    distribution: SessionDistribution
    log_likelihood: float
    parameters: Tuple[float, ...]

    @property
    def aic(self) -> float:
        return 2.0 * len(self.parameters) - 2.0 * self.log_likelihood


def _validate(durations: Sequence[float]) -> np.ndarray:
    data = np.asarray(list(durations), dtype=float)
    if data.size < 8:
        raise ValueError(f"need at least 8 sessions to fit, got {data.size}")
    if np.any(data <= 0):
        raise ValueError("session durations must be positive")
    return data


def fit_exponential(durations: Sequence[float]) -> FitResult:
    """MLE exponential fit: rate = 1/mean."""
    data = _validate(durations)
    mean = float(data.mean())
    log_likelihood = float(-data.size * math.log(mean) - data.sum() / mean)
    return FitResult(
        family="exponential",
        distribution=ExponentialSessions(mean),
        log_likelihood=log_likelihood,
        parameters=(mean,),
    )


def _weibull_profile_equation(shape: float, data: np.ndarray) -> float:
    """g(k) whose root is the Weibull shape MLE."""
    logs = np.log(data)
    powered = data**shape
    return float(
        powered @ logs / powered.sum() - 1.0 / shape - logs.mean()
    )


def fit_weibull(
    durations: Sequence[float],
    shape_bounds: Tuple[float, float] = (0.05, 20.0),
    tolerance: float = 1e-10,
) -> FitResult:
    """MLE Weibull fit via bisection on the profiled shape equation."""
    data = _validate(durations)
    lo, hi = shape_bounds
    g_lo = _weibull_profile_equation(lo, data)
    g_hi = _weibull_profile_equation(hi, data)
    if g_lo * g_hi > 0:
        raise ValueError(
            "Weibull shape MLE not bracketed; data may be degenerate"
        )
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        g_mid = _weibull_profile_equation(mid, data)
        if abs(g_mid) < tolerance:
            break
        if g_lo * g_mid <= 0:
            hi = mid
            g_hi = g_mid
        else:
            lo = mid
            g_lo = g_mid
    shape = 0.5 * (lo + hi)
    scale = float((np.mean(data**shape)) ** (1.0 / shape))
    n = data.size
    log_likelihood = float(
        n * math.log(shape)
        - n * shape * math.log(scale)
        + (shape - 1.0) * np.log(data).sum()
        - np.sum((data / scale) ** shape)
    )
    return FitResult(
        family="weibull",
        distribution=WeibullSessions(shape=shape, scale_seconds=scale),
        log_likelihood=log_likelihood,
        parameters=(shape, scale),
    )


def fit_lognormal(durations: Sequence[float]) -> FitResult:
    """MLE log-normal fit (closed form on log-durations)."""
    data = _validate(durations)
    logs = np.log(data)
    mu = float(logs.mean())
    sigma = float(logs.std())
    if sigma <= 0:
        raise ValueError("degenerate data: zero variance in log-durations")
    n = data.size
    log_likelihood = float(
        -n * math.log(sigma)
        - n * 0.5 * math.log(2 * math.pi)
        - logs.sum()
        - np.sum((logs - mu) ** 2) / (2 * sigma**2)
    )
    return FitResult(
        family="lognormal",
        distribution=LogNormalSessions(mu=mu, sigma=sigma),
        log_likelihood=log_likelihood,
        parameters=(mu, sigma),
    )


def fit_best(durations: Sequence[float]) -> FitResult:
    """Fit all three families and select by AIC (lower is better)."""
    fits: List[FitResult] = [fit_exponential(durations), fit_lognormal(durations)]
    try:
        fits.append(fit_weibull(durations))
    except ValueError:
        pass
    return min(fits, key=lambda fit: fit.aic)


def network_model_from_sessions(
    name: str,
    durations: Sequence[float],
    n0: int,
    description: str = "",
) -> "NetworkModel":
    """Build a runnable NetworkModel from measured session durations."""
    from repro.churn.datasets import NetworkModel

    fit = fit_best(durations)
    return NetworkModel(
        name=name,
        n0=n0,
        sessions=fit.distribution,
        description=description
        or f"fitted {fit.family} sessions (AIC {fit.aic:.1f}) from "
        f"{len(list(durations))} measurements",
    )
