"""Discrete-event simulation substrate.

This package provides the building blocks that every other layer of the
reproduction sits on:

* :mod:`repro.sim.clock` -- the simulation clock (float seconds; one
  "round" in the paper's terminology is one second, the time to solve a
  1-hard resource-burning challenge).
* :mod:`repro.sim.rng` -- named, deterministically seeded random streams.
* :mod:`repro.sim.events` -- the event vocabulary shared by churn traces,
  adversaries, and defenses.
* :mod:`repro.sim.engine` -- the event queue and the simulation driver.
* :mod:`repro.sim.metrics` -- counters, time series, spend meters, and the
  sliding-window counter used for Ergo's entrance cost.
"""

from repro.sim.clock import Clock
from repro.sim.engine import EventQueue, Simulation, SimulationConfig
from repro.sim.events import (
    BadJoin,
    Event,
    EventKind,
    GoodDeparture,
    GoodJoin,
    Tick,
)
from repro.sim.metrics import (
    Counter,
    MetricSet,
    MetricsSnapshot,
    SlidingWindowCounter,
    SnapshotPolicy,
    SpendMeter,
    TimeSeries,
)
from repro.sim.rng import RngRegistry

__all__ = [
    "BadJoin",
    "Clock",
    "Counter",
    "Event",
    "EventKind",
    "EventQueue",
    "GoodDeparture",
    "GoodJoin",
    "MetricSet",
    "MetricsSnapshot",
    "RngRegistry",
    "Simulation",
    "SimulationConfig",
    "SlidingWindowCounter",
    "SnapshotPolicy",
    "SpendMeter",
    "Tick",
    "TimeSeries",
]
