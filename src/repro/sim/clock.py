"""Simulation clock.

The paper measures time in *seconds* and defines a *round* as the time it
takes to solve a 1-hard resource-burning challenge plus the communication
for issuing the challenge and returning the solution (Section 2).  The
reproduction fixes ``ROUND_SECONDS = 1.0`` so that costs expressed "per
round" and "per second" coincide, matching the paper's experimental setup
where a k-hard challenge costs ``k``.
"""

from __future__ import annotations

#: Duration of one round, in seconds (see module docstring).
ROUND_SECONDS = 1.0


class Clock:
    """A monotonically advancing simulation clock.

    The clock refuses to move backwards: discrete-event simulations that
    accidentally process events out of order produce silently wrong
    results, so we fail loudly instead.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            ValueError: if ``when`` is earlier than the current time.
        """
        if when < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now}, requested={when}"
            )
        self._now = float(when)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds (``delta >= 0``)."""
        if delta < 0:
            raise ValueError(f"negative clock delta: {delta}")
        self._now += float(delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.3f})"
