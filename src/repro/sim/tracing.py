"""Structured run tracing.

Long simulations are hard to debug from aggregate metrics alone.  A
:class:`TraceRecorder` captures a bounded, structured log of protocol
events (joins, purges, estimate updates, ...) that tests and notebooks
can filter, and that can be dumped as JSON lines for external tooling.

Defenses call :meth:`TraceRecorder.emit`; recording is off by default
and costs one attribute check per call when disabled.

The engine's live-telemetry hook shares this backend: when a
simulation runs with a :class:`~repro.sim.metrics.SnapshotPolicy` and
the defense's tracer is enabled, every emitted
:class:`~repro.sim.metrics.MetricsSnapshot` is mirrored as a
``kind="snapshot"`` trace event — so protocol events and telemetry
land in one filterable, dumpable stream (one tracing story).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

from repro.resilience import atomic_write_text


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    time: float
    kind: str
    fields: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"time": self.time, "kind": self.kind}
        payload.update(self.fields)
        return json.dumps(payload, sort_keys=True)


class TraceRecorder:
    """A bounded in-memory trace of protocol events."""

    def __init__(self, capacity: int = 100_000, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.enabled = bool(enabled)
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._dropped = 0
        self._capacity = capacity

    def emit(self, time: float, kind: str, **fields: float) -> None:
        if not self.enabled:
            return
        if len(self._events) == self._capacity:
            self._dropped += 1
        self._events.append(TraceEvent(time=float(time), kind=kind, fields=fields))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer (oldest-first)."""
        return self._dropped

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def between(self, start: float, end: float) -> List[TraceEvent]:
        return [e for e in self._events if start <= e.time <= end]

    def last(self, kind: Optional[str] = None) -> Optional[TraceEvent]:
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(e.to_json() for e in self._events)

    def write_jsonl(self, path: str) -> None:
        text = self.to_jsonl()
        atomic_write_text(path, text + "\n" if self._events else text)


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load a trace written by :meth:`TraceRecorder.write_jsonl`."""
    events: List[TraceEvent] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            time = payload.pop("time")
            kind = payload.pop("kind")
            events.append(TraceEvent(time=time, kind=kind, fields=payload))
    return events
