"""Named, deterministic random-number streams.

Every stochastic component in the reproduction (churn generators, the
adversary, classifier noise, committee election, ...) draws from its own
named stream.  Streams are derived from a single experiment seed, so

* the same seed reproduces the same run bit-for-bit, and
* changing one component's draw pattern does not perturb the others.

Stream derivation hashes the stream *name* with SHA-256 (Python's builtin
``hash`` is randomized per process, so it must not be used here).
"""

from __future__ import annotations

import hashlib

import numpy as np


def _name_to_key(name: str) -> int:
    """Map a stream name to a stable 64-bit spawn key."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory for named :class:`numpy.random.Generator` streams.

    Example:
        >>> rngs = RngRegistry(seed=7)
        >>> churn = rngs.stream("churn.gnutella")
        >>> adversary = rngs.stream("adversary")
        >>> churn is rngs.stream("churn.gnutella")
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root experiment seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        seq = np.random.SeedSequence(self._seed, spawn_key=(_name_to_key(name),))
        generator = np.random.default_rng(seq)
        self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RngRegistry":
        """Derive an independent registry (e.g. per experiment repetition)."""
        mixed = (self._seed * 1_000_003 + int(salt)) % (2**63)
        return RngRegistry(seed=mixed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={sorted(self._streams)})"
