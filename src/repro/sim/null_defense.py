"""A minimal pass-through defense for engine benchmarks and tests.

``NullDefense`` admits every good join at cost 0, admits Sybil joins at
the 1-hard floor, and runs no periodic machinery.  It exists so that
engine-loop measurements (``benchmarks/bench_micro.py``,
``benchmarks/bench_sweep.py``) exercise the *driver* -- heap traffic,
dispatch, adversary wake-ups, churn pumping, sampling -- rather than any
particular protocol's bookkeeping.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.protocol import Defense


class NullDefense(Defense):
    """Accepts everything; costs nothing beyond the 1-hard Sybil floor."""

    name = "null"

    def process_good_join(self, ident: Optional[str] = None) -> Optional[str]:
        unique = self.ids.issue(ident if ident is not None else "g")
        self.population.good_join(unique, self.now)
        return unique

    def process_good_departure(self, ident: Optional[str] = None) -> Optional[str]:
        victim = self._select_departing_good(ident)
        if victim is not None:
            self.population.good_depart(victim)
        return victim

    def process_good_join_batch(self, times, idents=None) -> list:
        """Batched joins: issue-and-admit with no charges at all.

        One ``issue_batch`` + one arena ``add_batch`` per run -- this
        hook is the floor every engine-loop benchmark number sits on.
        """
        if idents is None:
            uniques = self.ids.issue_batch("g", len(times))
        else:
            issue = self.ids.issue
            uniques = [
                issue(ident if ident is not None else "g") for ident in idents
            ]
        self.population.good.add_batch(uniques, True, times)
        return uniques

    #: Departures are select + remove with no bookkeeping.
    process_good_departure_batch = Defense._removal_departure_batch

    def quote_entrance_cost(self) -> float:
        return 1.0

    def process_bad_join_batch(self, budget: float) -> Tuple[int, float]:
        joins = int(budget)
        if joins:
            self.population.bad.join(joins, self.now)
            self.accountant.charge_adversary(float(joins), category="entrance")
        return joins, float(joins)
