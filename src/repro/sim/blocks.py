"""Struct-of-arrays churn blocks: the zero-allocation event representation.

At the paper's regime of interest (adversarial spend rate T = 2^20, good
populations of 10^4-10^5) a sweep point pushes millions of good-churn
events through the engine.  Materializing each one as a frozen
:class:`~repro.sim.events.Event` dataclass and routing it through the
heap costs ~2.5 us per event in allocation and scheduling alone.  A
:class:`ChurnBlock` instead carries a *batch* of good-churn rows as
parallel numpy arrays (``times``, ``kinds``, ``sessions``) plus an
optional ident list, so

* generators (:mod:`repro.churn.generators`) produce churn with
  vectorized RNG draws instead of one Python-level draw per event, and
* the engine (:mod:`repro.sim.engine`) applies runs of block rows
  directly to the defense through the batch hooks
  (:meth:`repro.core.protocol.Defense.process_good_join_batch`) without
  ever constructing an ``Event`` or touching the heap.

Blocks only describe *good* churn (the trace side of the ABC model).
Adversarial joins are already aggregated (``process_bad_join_batch``);
ticks, callbacks and bad departures stay ordinary events.

The per-event iterators are kept as thin adapters
(:func:`events_from_blocks`), so any consumer that wants classic
``GoodJoin`` / ``GoodDeparture`` objects still gets them.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.sim.events import Event, GoodDeparture, GoodJoin

#: ``kinds`` codes.  A row is either a good join (optionally carrying a
#: session duration) or a good departure (optionally naming the victim).
JOIN = 0
DEPART = 1


class ChurnBlock:
    """A time-sorted batch of good-churn rows in struct-of-arrays form.

    Attributes:
        times: float64 array of event times, non-decreasing.
        kinds: uint8 array of :data:`JOIN` / :data:`DEPART` codes.
        sessions: optional float64 array of session durations for join
            rows (``NaN`` = no session, i.e. no scheduled departure).
            ``None`` means no row has a session.
        idents: optional sequence of per-row ident labels (``None``
            entries mean "anonymous": the defense names the joiner, or
            the departure victim is chosen uniformly at random).
            ``None`` means every row is anonymous.
    """

    __slots__ = ("times", "kinds", "sessions", "idents")

    def __init__(
        self,
        times,
        kinds,
        sessions=None,
        idents: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        times = np.ascontiguousarray(times, dtype=np.float64)
        kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
        if times.ndim != 1 or kinds.ndim != 1:
            raise ValueError("times and kinds must be 1-D arrays")
        n = times.shape[0]
        if kinds.shape[0] != n:
            raise ValueError(
                f"length mismatch: {n} times vs {kinds.shape[0]} kinds"
            )
        if n > 1 and bool(np.any(np.diff(times) < 0)):
            raise ValueError("block times must be non-decreasing")
        if n and bool(np.any(kinds > DEPART)):
            raise ValueError("kinds must be JOIN (0) or DEPART (1)")
        if sessions is not None:
            sessions = np.ascontiguousarray(sessions, dtype=np.float64)
            if sessions.shape[0] != n:
                raise ValueError(
                    f"length mismatch: {n} times vs {sessions.shape[0]} sessions"
                )
        if idents is not None and len(idents) != n:
            raise ValueError(
                f"length mismatch: {n} times vs {len(idents)} idents"
            )
        self.times = times
        self.kinds = kinds
        self.sessions = sessions
        self.idents = list(idents) if idents is not None else None

    def __len__(self) -> int:
        return self.times.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = len(self)
        if n == 0:
            return "ChurnBlock(empty)"
        return (
            f"ChurnBlock(n={n}, t=[{self.times[0]:.3f}, {self.times[-1]:.3f}], "
            f"joins={int(np.count_nonzero(self.kinds == JOIN))})"
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def iter_events(self) -> Iterator[Event]:
        """Expand rows back into classic per-event objects."""
        times = self.times.tolist()
        kinds = self.kinds.tolist()
        sessions = self.sessions.tolist() if self.sessions is not None else None
        idents = self.idents
        for i, t in enumerate(times):
            ident = idents[i] if idents is not None else None
            if kinds[i] == JOIN:
                session = None
                if sessions is not None:
                    s = sessions[i]
                    if s == s:  # not NaN
                        session = s
                yield GoodJoin(time=t, ident=ident, session=session)
            else:
                yield GoodDeparture(time=t, ident=ident)

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "ChurnBlock":
        """Pack ``GoodJoin`` / ``GoodDeparture`` events into one block.

        The events must already be time-sorted; any other event type is
        rejected (blocks describe good churn only).
        """
        times: List[float] = []
        kinds: List[int] = []
        sessions: List[float] = []
        idents: List[Optional[str]] = []
        any_session = False
        any_ident = False
        for event in events:
            if isinstance(event, GoodJoin):
                kinds.append(JOIN)
                if event.session is not None:
                    sessions.append(float(event.session))
                    any_session = True
                else:
                    sessions.append(float("nan"))
            elif isinstance(event, GoodDeparture):
                kinds.append(DEPART)
                sessions.append(float("nan"))
            else:
                raise TypeError(
                    f"cannot pack event type {type(event).__name__} into a churn block"
                )
            times.append(event.time)
            idents.append(event.ident)
            if event.ident is not None:
                any_ident = True
        return cls(
            times,
            kinds,
            sessions=np.asarray(sessions) if any_session else None,
            idents=idents if any_ident else None,
        )


#: What churn-accepting APIs take: classic events or blocks.
ChurnSource = Union[Iterable[Event], Iterable[ChurnBlock]]


def events_from_blocks(blocks: Iterable[ChurnBlock]) -> Iterator[Event]:
    """Per-event adapter over a block stream (lazy, order-preserving)."""
    for block in blocks:
        yield from block.iter_events()


def flatten_churn(items: Iterable) -> Iterator[Event]:
    """Per-event view of a mixed stream of events and churn blocks.

    ``ChurnScenario.events`` may interleave both shapes; this is the
    canonical flattener used by the engine's per-event path and the
    trace utilities.
    """
    for item in items:
        if isinstance(item, ChurnBlock):
            yield from item.iter_events()
        else:
            yield item


def blocks_from_events(
    events: Iterable[Event], block_size: int = 4096
) -> Iterator[ChurnBlock]:
    """Chunk a time-sorted event stream into blocks of ``block_size``."""
    if block_size <= 0:
        raise ValueError(f"block size must be positive: {block_size}")
    chunk: List[Event] = []
    for event in events:
        chunk.append(event)
        if len(chunk) >= block_size:
            yield ChurnBlock.from_events(chunk)
            chunk = []
    if chunk:
        yield ChurnBlock.from_events(chunk)
