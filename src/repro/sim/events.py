"""Event vocabulary for the churn simulation.

Churn traces, adversary strategies, and periodic protocol work all speak
in terms of these events.  Each event is a small frozen dataclass carrying
its scheduled time; the engine orders them by ``(time, priority, seq)``.

The ABC model (Section 2.1.1 of the paper) assumes every join/departure
occurs at a unique point in time, with ties broken by the server.  The
engine's ``seq`` counter provides exactly that deterministic tie-break.

``kind`` is a class-level type tag (not a property): the engine routes
events through a handler table keyed on the event class, and metrics /
logging code reads ``event.kind`` in hot paths, so the tag must cost a
plain attribute lookup.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Optional


class EventKind(enum.Enum):
    """Discriminator for the event classes (useful for metrics/logging)."""

    GOOD_JOIN = "good_join"
    GOOD_DEPARTURE = "good_departure"
    BAD_JOIN = "bad_join"
    BAD_DEPARTURE = "bad_departure"
    TICK = "tick"
    CALLBACK = "callback"


@dataclass(frozen=True)
class Event:
    """Base class for all simulation events."""

    time: float

    #: Type tag; every concrete subclass overrides this.
    kind: ClassVar[Optional[EventKind]] = None

    def __init_subclass__(cls, **kwargs) -> None:
        # Fail at class-definition time rather than letting a tagless
        # event slip through kind-based filters (e.g. trace queries).
        super().__init_subclass__(**kwargs)
        if cls.__dict__.get("kind", cls.kind) is None:
            raise TypeError(
                f"event class {cls.__name__} must define a 'kind' type tag"
            )


@dataclass(frozen=True)
class GoodJoin(Event):
    """A good ID wants to join.

    ``ident`` is an opaque label chosen by the trace generator; the
    identity layer concatenates a join-event counter to guarantee global
    uniqueness (Section 2.1.1).  ``session`` optionally carries the
    session duration sampled by the trace generator, so the engine can
    schedule the matching departure.
    """

    ident: Optional[str] = None
    session: Optional[float] = None

    kind: ClassVar[EventKind] = EventKind.GOOD_JOIN


@dataclass(frozen=True)
class GoodDeparture(Event):
    """A good ID departs.

    If ``ident`` is ``None``, the departing ID is selected uniformly at
    random from the good IDs currently in the system -- the ABC model's
    rule when the adversary schedules a departure *event* but cannot pick
    the victim (Section 2).
    """

    ident: Optional[str] = None

    kind: ClassVar[EventKind] = EventKind.GOOD_DEPARTURE


@dataclass(frozen=True)
class BadJoin(Event):
    """The adversary injects a Sybil ID (it must pay the entrance cost)."""

    ident: Optional[str] = None

    kind: ClassVar[EventKind] = EventKind.BAD_JOIN


@dataclass(frozen=True)
class BadDeparture(Event):
    """The adversary withdraws one of its IDs (it picks which)."""

    ident: str = ""

    kind: ClassVar[EventKind] = EventKind.BAD_DEPARTURE


@dataclass(frozen=True)
class BadDepartureBatch(Event):
    """The adversary withdraws up to ``count`` of its IDs at one instant.

    The block form of a bad-departure schedule: a synchronized Sybil
    exodus (mass withdrawal, relay flapping) is one heap entry handled by
    :meth:`repro.core.protocol.Defense.process_bad_departure_batch`
    instead of ``count`` separate :class:`BadDeparture` objects.  Bad IDs
    are an aggregate population (the adversary has perfect collusion, so
    only the count matters); ``count`` in excess of the standing Sybil
    population withdraws everything that is present.

    ``drain_fraction`` sizes the withdrawal at *fire time* instead:
    that fraction of the Sybil population standing when the event
    dispatches (rounded up) is withdrawn, and ``count`` is ignored.  A
    staged full exodus over ``n`` batches is fractions ``1/n, 1/(n-1),
    ..., 1`` -- equal shares of the original population, draining
    everything by the last batch, without the compiler having to guess
    the standing population in advance.
    """

    count: int = 1
    #: withdraw this fraction of the standing Sybil population instead
    #: of a precomputed count (``None`` = use ``count``)
    drain_fraction: Optional[float] = None

    kind: ClassVar[EventKind] = EventKind.BAD_DEPARTURE


@dataclass(frozen=True)
class Tick(Event):
    """A periodic opportunity for adversary/defense housekeeping."""

    kind: ClassVar[EventKind] = EventKind.TICK


@dataclass(frozen=True)
class Callback(Event):
    """Run an arbitrary function at a scheduled time.

    Used by defenses that need future work (e.g. SybilControl's periodic
    neighbor tests, REMP's recurring challenges, heartbeat timeouts).
    """

    fn: Callable[[float], None] = field(default=lambda _t: None)
    label: str = ""

    kind: ClassVar[EventKind] = EventKind.CALLBACK
