"""The event queue and the simulation driver.

The driver wires together four roles:

* a **churn source** (an iterator of good-ID :class:`~repro.sim.events`
  events, typically produced by :mod:`repro.churn.generators`),
* a **defense** (Ergo, CCom, SybilControl, REMP, ... -- anything
  implementing :class:`repro.core.protocol.Defense`),
* an **adversary** (a :class:`repro.adversary.base.Adversary` deciding
  when to pay entrance costs and inject Sybil IDs), and
* a shared :class:`~repro.sim.metrics.MetricSet`.

The loop is a classic discrete-event simulation: events are popped in
``(time, priority, seq)`` order, the clock advances, the adversary gets a
chance to act at the new time, and then the event is dispatched.  Regular
``Tick`` events guarantee the adversary can act even during quiet periods
of the trace.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Tuple

from repro.sim.clock import Clock
from repro.sim.events import (
    BadDeparture,
    Callback,
    Event,
    GoodDeparture,
    GoodJoin,
    Tick,
)
from repro.sim.metrics import MetricSet
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.adversary.base import Adversary
    from repro.core.protocol import Defense


class EventQueue:
    """A priority queue of events ordered by ``(time, priority, seq)``.

    ``priority`` breaks ties at equal times (lower runs first); ``seq`` is
    a monotone counter providing the deterministic total order that the
    ABC model's "server orders simultaneous events" assumption requires.
    """

    def __init__(self) -> None:
        self._heap: list[Tuple[float, int, int, Event]] = []
        self._seq = itertools.count()

    def push(self, event: Event, priority: int = 0) -> None:
        heapq.heappush(self._heap, (event.time, priority, next(self._seq), event))

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> Optional[float]:
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class SimulationConfig:
    """Run-level knobs shared by all experiments."""

    horizon: float = 10_000.0
    tick_interval: float = 1.0
    seed: int = 0
    #: record bad-fraction / system-size samples every this many seconds
    sample_interval: float = 50.0


@dataclass
class SimulationResult:
    """What a finished run reports back to the experiment harness."""

    horizon: float
    good_spend: float
    adversary_spend: float
    good_spend_rate: float
    adversary_spend_rate: float
    max_bad_fraction: float
    final_system_size: int
    counters: dict
    metrics: MetricSet = field(repr=False, default=None)

    @property
    def advantage(self) -> float:
        """Adversary spend divided by good spend (higher favors the defense)."""
        if self.good_spend == 0:
            return float("inf")
        return self.adversary_spend / self.good_spend


class Simulation:
    """Drives one defense against one churn trace and one adversary."""

    def __init__(
        self,
        config: SimulationConfig,
        defense: "Defense",
        churn: Iterable[Event],
        adversary: Optional["Adversary"] = None,
        rngs: Optional[RngRegistry] = None,
        initial_members: Optional[Iterable] = None,
    ) -> None:
        self.config = config
        self.clock = Clock()
        self.queue = EventQueue()
        self.metrics = MetricSet()
        self.rngs = rngs if rngs is not None else RngRegistry(config.seed)
        self.defense = defense
        self.adversary = adversary
        self._churn: Iterator[Event] = iter(churn)
        self._initial_members = list(initial_members) if initial_members else []
        self._next_sample = 0.0
        defense.bind(self)
        if adversary is not None:
            adversary.bind(self, defense)

    # ------------------------------------------------------------------
    # scheduling helpers (used by defenses and adversaries)
    # ------------------------------------------------------------------
    def call_at(self, when: float, fn, label: str = "") -> None:
        """Schedule ``fn(now)`` to run at simulation time ``when``."""
        self.queue.push(Callback(time=when, fn=fn, label=label))

    def call_after(self, delay: float, fn, label: str = "") -> None:
        self.call_at(self.clock.now + delay, fn, label=label)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation until the horizon and summarize."""
        horizon = self.config.horizon
        self._bootstrap()
        self._prime_ticks()
        self._pump_churn(limit_time=horizon)
        while self.queue:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > horizon:
                break
            event = self.queue.pop()
            self.clock.advance_to(event.time)
            if self.adversary is not None:
                self.adversary.act(self.clock.now)
            self._dispatch(event)
            self._maybe_sample()
            self._pump_churn(limit_time=horizon)
        self.clock.advance_to(horizon)
        if self.adversary is not None:
            self.adversary.act(horizon)
        self._sample_now()
        return self._summarize()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """Initialize membership and schedule initial residual departures.

        Initial members model a system already in steady state: each
        carries a *residual* session time (sampled from the equilibrium
        distribution by the churn datasets) after which it departs.
        """
        if not self._initial_members:
            self.defense.bootstrap([])
            return
        idents = []
        for member in self._initial_members:
            idents.append(member.ident)
        self.defense.bootstrap(idents)
        for member in self._initial_members:
            if member.residual is None:
                continue
            depart_at = member.residual
            if 0 <= depart_at <= self.config.horizon:
                self.queue.push(GoodDeparture(time=depart_at, ident=member.ident))

    def _prime_ticks(self) -> None:
        interval = self.config.tick_interval
        if interval <= 0:
            return
        when = interval
        while when <= self.config.horizon:
            self.queue.push(Tick(time=when), priority=10)
            when += interval

    def _pump_churn(self, limit_time: float) -> None:
        """Move churn events into the queue up to the next queued time.

        The churn iterator may be unbounded (session-based generators),
        so we only pull events that could possibly run next.
        """
        while True:
            frontier = self.queue.peek_time()
            if frontier is not None and frontier <= limit_time:
                pull_until = frontier
            else:
                pull_until = limit_time
            event = next(self._churn, None)
            if event is None:
                return
            self.queue.push(event)
            if event.time > pull_until:
                return

    def _dispatch(self, event: Event) -> None:
        now = self.clock.now
        if isinstance(event, GoodJoin):
            self.metrics.counters.add("good_join_events")
            admitted_ident = self.defense.process_good_join(event.ident)
            if admitted_ident is not None and event.session is not None:
                depart_at = now + event.session
                if depart_at <= self.config.horizon:
                    self.queue.push(
                        GoodDeparture(time=depart_at, ident=admitted_ident)
                    )
        elif isinstance(event, GoodDeparture):
            self.metrics.counters.add("good_departure_events")
            self.defense.process_good_departure(event.ident)
        elif isinstance(event, BadDeparture):
            self.defense.process_bad_departure(event.ident)
        elif isinstance(event, Tick):
            self.defense.on_tick(now)
        elif isinstance(event, Callback):
            event.fn(now)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unhandled event type: {type(event).__name__}")

    def _maybe_sample(self) -> None:
        if self.clock.now >= self._next_sample:
            self._sample_now()
            self._next_sample = self.clock.now + self.config.sample_interval

    def _sample_now(self) -> None:
        now = self.clock.now
        size = self.defense.system_size()
        fraction = self.defense.bad_fraction()
        if self.metrics.system_size.times and self.metrics.system_size.times[-1] == now:
            return
        self.metrics.system_size.record(now, size)
        self.metrics.bad_fraction.record(now, fraction)

    def _summarize(self) -> SimulationResult:
        horizon = self.config.horizon
        max_bad = self.metrics.bad_fraction.max() if len(self.metrics.bad_fraction) else 0.0
        max_bad = max(max_bad, getattr(self.defense, "peak_bad_fraction", 0.0))
        return SimulationResult(
            horizon=horizon,
            good_spend=self.metrics.good.total,
            adversary_spend=self.metrics.adversary.total,
            good_spend_rate=self.metrics.good.rate(horizon),
            adversary_spend_rate=self.metrics.adversary.rate(horizon),
            max_bad_fraction=max_bad,
            final_system_size=self.defense.system_size(),
            counters=self.metrics.counters.as_dict(),
            metrics=self.metrics,
        )
