"""The event queue and the simulation driver.

The driver wires together four roles:

* a **churn source** (an iterator of good-ID :class:`~repro.sim.events`
  events, typically produced by :mod:`repro.churn.generators`),
* a **defense** (Ergo, CCom, SybilControl, REMP, ... -- anything
  implementing :class:`repro.core.protocol.Defense`),
* an **adversary** (a :class:`repro.adversary.base.Adversary` deciding
  when to pay entrance costs and inject Sybil IDs), and
* a shared :class:`~repro.sim.metrics.MetricSet`.

The loop is a classic discrete-event simulation: events are popped in
``(time, priority, seq)`` order, the clock advances, the adversary gets a
chance to act at the new time, and then the event is dispatched.  Regular
``Tick`` events guarantee the adversary can act even during quiet periods
of the trace.

Hot-path design (this loop runs millions of times per sweep):

* **Lazy ticks** -- a single recurring ``Tick`` is re-armed as it fires
  instead of pre-scheduling ``horizon / tick_interval`` events up front,
  so the heap stays shallow (cheaper pushes/pops) and memory stays O(1)
  in the horizon.
* **Handler-table dispatch** -- events are routed through a dict keyed
  on the event class rather than an ``isinstance`` chain.
* **Adversary wake-ups** -- the adversary's
  :meth:`~repro.adversary.base.Adversary.next_wake` tells the engine the
  earliest time another ``act`` call could matter, so strategies that
  are out of budget (or passive) are not invoked on every event.
* **Single-event churn lookahead** -- at most one pending churn event is
  held outside the heap, so unbounded generators are consumed lazily
  and far-future events are not pushed early.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional, Tuple

from repro.sim.clock import Clock
from repro.sim.events import (
    BadDeparture,
    Callback,
    Event,
    GoodDeparture,
    GoodJoin,
    Tick,
)
from repro.sim.metrics import MetricSet
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.adversary.base import Adversary
    from repro.core.protocol import Defense

#: ``Tick`` events run after any same-time protocol event.
TICK_PRIORITY = 10


class EventQueue:
    """A priority queue of events ordered by ``(time, priority, seq)``.

    ``priority`` breaks ties at equal times (lower runs first); ``seq`` is
    a monotone counter providing the deterministic total order that the
    ABC model's "server orders simultaneous events" assumption requires.

    The queue counts its own traffic (``pushes``, ``pops``, ``max_size``)
    so benchmarks and tests can verify scheduling changes -- e.g. that
    lazy tick re-arming keeps the heap shallow.
    """

    __slots__ = ("_heap", "_seq", "pushes", "pops", "max_size")

    def __init__(self) -> None:
        self._heap: list[Tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        #: total events ever pushed / popped, and the high-water mark of
        #: resident heap entries (all exposed via ``MetricSet.counters``
        #: as ``queue_pushes`` / ``queue_pops`` / ``queue_max_size``).
        self.pushes = 0
        self.pops = 0
        self.max_size = 0

    def push(self, event: Event, priority: int = 0) -> None:
        heap = self._heap
        heapq.heappush(heap, (event.time, priority, next(self._seq), event))
        self.pushes += 1
        if len(heap) > self.max_size:
            self.max_size = len(heap)

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        self.pops += 1
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> Optional[float]:
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class SimulationConfig:
    """Run-level knobs shared by all experiments."""

    horizon: float = 10_000.0
    tick_interval: float = 1.0
    seed: int = 0
    #: record bad-fraction / system-size samples every this many seconds
    sample_interval: float = 50.0


@dataclass
class SimulationResult:
    """What a finished run reports back to the experiment harness."""

    horizon: float
    good_spend: float
    adversary_spend: float
    good_spend_rate: float
    adversary_spend_rate: float
    max_bad_fraction: float
    final_system_size: int
    counters: dict
    metrics: Optional[MetricSet] = field(repr=False, default=None)

    @property
    def advantage(self) -> float:
        """Adversary spend divided by good spend (higher favors the defense)."""
        if self.good_spend == 0:
            return float("inf")
        return self.adversary_spend / self.good_spend


class Simulation:
    """Drives one defense against one churn trace and one adversary."""

    def __init__(
        self,
        config: SimulationConfig,
        defense: "Defense",
        churn: Iterable[Event],
        adversary: Optional["Adversary"] = None,
        rngs: Optional[RngRegistry] = None,
        initial_members: Optional[Iterable] = None,
    ) -> None:
        self.config = config
        self.clock = Clock()
        self.queue = EventQueue()
        self.metrics = MetricSet()
        self.rngs = rngs if rngs is not None else RngRegistry(config.seed)
        self.defense = defense
        self.adversary = adversary
        self._churn: Iterator[Event] = iter(churn)
        self._churn_done = False
        #: at most one churn event held back until the frontier reaches it
        self._pending_churn: Optional[Event] = None
        self._initial_members = list(initial_members) if initial_members else []
        self._next_sample = 0.0
        #: earliest time another adversary.act() call could matter
        self._adversary_wake = float("-inf")
        #: event tallies flushed into MetricSet.counters at summarize
        #: time (a plain int increment is much cheaper than a dict-backed
        #: counter bump on the per-event path)
        self._good_join_events = 0
        self._good_departure_events = 0
        self._handlers: dict = {
            GoodJoin: self._handle_good_join,
            GoodDeparture: self._handle_good_departure,
            BadDeparture: self._handle_bad_departure,
            Tick: self._handle_tick,
            Callback: self._handle_callback,
        }
        defense.bind(self)
        if adversary is not None:
            adversary.bind(self, defense)

    # ------------------------------------------------------------------
    # scheduling helpers (used by defenses and adversaries)
    # ------------------------------------------------------------------
    def call_at(self, when: float, fn, label: str = "") -> None:
        """Schedule ``fn(now)`` to run at simulation time ``when``."""
        self.queue.push(Callback(time=when, fn=fn, label=label))

    def call_after(self, delay: float, fn, label: str = "") -> None:
        self.call_at(self.clock.now + delay, fn, label=label)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation until the horizon and summarize."""
        config = self.config
        horizon = config.horizon
        sample_interval = config.sample_interval
        self._bootstrap()
        self._arm_tick()
        # Local bindings for the per-event loop: every attribute chased
        # here would otherwise be chased once per event.  The churn pump
        # is inlined as well -- the common case ("held-back event is
        # still beyond the frontier") is a two-comparison check.
        queue = self.queue
        heap = queue._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        next_seq = queue._seq.__next__
        clock = self.clock
        adversary = self.adversary
        handlers = self._handlers
        resolve = self._handler_for
        adv_wake = self._adversary_wake
        next_sample = self._next_sample
        now = clock._now
        churn_iter = self._churn
        pending = self._pending_churn
        if pending is None and not self._churn_done:
            pending = next(churn_iter, None)
        pops = 0
        churn_pushes = 0
        max_size = queue.max_size
        while True:
            # Admit every churn event due at or before the frontier.
            while pending is not None:
                pull_until = heap[0][0] if heap else horizon
                if pull_until > horizon:
                    pull_until = horizon
                if pending.time > pull_until:
                    break
                heappush(heap, (pending.time, 0, next_seq(), pending))
                churn_pushes += 1
                if len(heap) > max_size:
                    max_size = len(heap)
                pending = next(churn_iter, None)
            if not heap:
                break
            event_time = heap[0][0]
            if event_time > horizon:
                break
            event = heappop(heap)[3]
            pops += 1
            # Keep Clock.advance_to's fail-loud invariant without its
            # call overhead: an event behind the clock means an unsorted
            # churn source or a negative-delay schedule, and processing
            # it would silently corrupt every rate and series.
            if event_time < now:
                raise ValueError(
                    f"clock cannot move backwards: now={now}, "
                    f"requested={event_time}"
                )
            now = clock._now = event_time
            if adversary is not None and event_time >= adv_wake:
                adversary.act(event_time)
                adv_wake = adversary.next_wake(event_time)
            cls = event.__class__
            handler = handlers.get(cls)
            if handler is None:
                handler = resolve(cls)
            handler(event, event_time)
            if event_time >= next_sample:
                self._sample_now()
                next_sample = event_time + sample_interval
        queue.pops += pops
        queue.pushes += churn_pushes
        if queue.max_size < max_size:
            queue.max_size = max_size
        self._pending_churn = pending
        self._churn_done = pending is None
        self._adversary_wake = adv_wake
        self._next_sample = next_sample
        self.clock.advance_to(horizon)
        if adversary is not None and horizon >= adv_wake:
            adversary.act(horizon)
        self._sample_now()
        return self._summarize()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """Initialize membership and schedule initial residual departures.

        Initial members model a system already in steady state: each
        carries a *residual* session time (sampled from the equilibrium
        distribution by the churn datasets) after which it departs.
        """
        if not self._initial_members:
            self.defense.bootstrap([])
            return
        idents = []
        for member in self._initial_members:
            idents.append(member.ident)
        self.defense.bootstrap(idents)
        for member in self._initial_members:
            if member.residual is None:
                continue
            depart_at = member.residual
            if 0 <= depart_at <= self.config.horizon:
                self.queue.push(GoodDeparture(time=depart_at, ident=member.ident))

    def _arm_tick(self) -> None:
        """Schedule the first recurring tick (re-armed as each one fires).

        Only one tick is ever resident in the queue: pre-scheduling
        ``horizon / tick_interval`` of them (10,001 heap entries at the
        defaults) made every heap operation pay a log of that bulk.
        """
        interval = self.config.tick_interval
        if interval <= 0:
            return
        if interval <= self.config.horizon:
            self.queue.push(Tick(time=interval), priority=TICK_PRIORITY)

    # ------------------------------------------------------------------
    # event handlers (dispatch table; one per event class)
    # ------------------------------------------------------------------
    def _handle_good_join(self, event: GoodJoin, now: float) -> None:
        self._good_join_events += 1
        admitted_ident = self.defense.process_good_join(event.ident)
        if admitted_ident is not None and event.session is not None:
            depart_at = now + event.session
            if depart_at <= self.config.horizon:
                self.queue.push(GoodDeparture(time=depart_at, ident=admitted_ident))

    def _handle_good_departure(self, event: GoodDeparture, now: float) -> None:
        self._good_departure_events += 1
        self.defense.process_good_departure(event.ident)

    def _handle_bad_departure(self, event: BadDeparture, now: float) -> None:
        self.defense.process_bad_departure(event.ident)

    def _handle_tick(self, event: Tick, now: float) -> None:
        self.defense.on_tick(now)
        next_tick = event.time + self.config.tick_interval
        if next_tick <= self.config.horizon:
            self.queue.push(Tick(time=next_tick), priority=TICK_PRIORITY)

    def _handle_callback(self, event: Callback, now: float) -> None:
        event.fn(now)

    def _handler_for(self, cls: type) -> Callable[[Event, float], None]:
        """Resolve (and cache) the handler for an event subclass."""
        for base in cls.__mro__:
            handler = self._handlers.get(base)
            if handler is not None:
                self._handlers[cls] = handler
                return handler
        raise TypeError(f"unhandled event type: {cls.__name__}")

    def _dispatch(self, event: Event) -> None:
        """Route one event (kept for tests and out-of-loop callers)."""
        self._handler_for(event.__class__)(event, self.clock.now)

    def _sample_now(self) -> None:
        now = self.clock.now
        size = self.defense.system_size()
        fraction = self.defense.bad_fraction()
        if self.metrics.system_size.last_time() == now:
            return
        self.metrics.system_size.record(now, size)
        self.metrics.bad_fraction.record(now, fraction)

    def _summarize(self) -> SimulationResult:
        horizon = self.config.horizon
        max_bad = self.metrics.bad_fraction.max() if len(self.metrics.bad_fraction) else 0.0
        max_bad = max(max_bad, getattr(self.defense, "peak_bad_fraction", 0.0))
        counters = self.metrics.counters
        if self._good_join_events:
            counters.add("good_join_events", self._good_join_events)
            self._good_join_events = 0
        if self._good_departure_events:
            counters.add("good_departure_events", self._good_departure_events)
            self._good_departure_events = 0
        counters.add("queue_pushes", self.queue.pushes)
        counters.add("queue_pops", self.queue.pops)
        counters.add("queue_max_size", self.queue.max_size)
        return SimulationResult(
            horizon=horizon,
            good_spend=self.metrics.good.total,
            adversary_spend=self.metrics.adversary.total,
            good_spend_rate=self.metrics.good.rate(horizon),
            adversary_spend_rate=self.metrics.adversary.rate(horizon),
            max_bad_fraction=max_bad,
            final_system_size=self.defense.system_size(),
            counters=counters.as_dict(),
            metrics=self.metrics,
        )
