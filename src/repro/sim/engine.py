"""The event queue and the simulation driver.

The driver wires together four roles:

* a **churn source** (per-event :class:`~repro.sim.events` iterables or
  struct-of-arrays :class:`~repro.sim.blocks.ChurnBlock` streams,
  typically produced by :mod:`repro.churn.generators`),
* a **defense** (Ergo, CCom, SybilControl, REMP, ... -- anything
  implementing :class:`repro.core.protocol.Defense`),
* an **adversary** (a :class:`repro.adversary.base.Adversary` deciding
  when to pay entrance costs and inject Sybil IDs), and
* a shared :class:`~repro.sim.metrics.MetricSet`.

The loop is a classic discrete-event simulation: events are popped in
``(time, priority, seq)`` order, the clock advances, the adversary gets a
chance to act at the new time, and then the event is dispatched.  Regular
``Tick`` events guarantee the adversary can act even during quiet periods
of the trace.

Hot-path design (this loop runs millions of times per sweep):

* **Zero-heap block fast path** -- when the churn source yields
  ``ChurnBlock`` batches, runs of good-churn rows that all precede the
  next heap entry, the adversary's wake time, and the next metrics
  sample are applied straight from the block through the defense batch
  hooks (:meth:`~repro.core.protocol.Defense.process_good_join_batch` /
  ``process_good_departure_batch``): no ``Event`` allocation, no heap
  push/pop.  Batch boundaries are chosen so the observable event order
  is *identical* to the per-event path (see :meth:`Simulation.run`).
* **Tuple-backed session departures** -- a departure the engine
  schedules for an admitted joiner is stored in the heap as a bare
  ident string rather than a frozen ``GoodDeparture`` dataclass, and
  consecutive departures at the heap front are drained as one batch.
* **Lazy ticks** -- a single recurring tick sentinel is re-armed as it
  fires instead of pre-scheduling ``horizon / tick_interval`` events up
  front, so the heap stays shallow and memory stays O(1) in the
  horizon.
* **Handler-table dispatch** -- events are routed through a dict keyed
  on the event class rather than an ``isinstance`` chain.
* **Adversary wake-ups** -- the adversary's
  :meth:`~repro.adversary.base.Adversary.next_wake` tells the engine the
  earliest time another ``act`` call could matter, so strategies that
  are out of budget (or passive) are not invoked on every event.
* **Single-event churn lookahead** -- in per-event mode, at most one
  pending churn event is held outside the heap, so unbounded generators
  are consumed lazily and far-future events are not pushed early.

Path accounting: ``churn_events_fast`` counts good-churn rows applied
via the block fast path; ``churn_events_heap`` counts churn events
(good joins/departures, bad departures) dispatched from the heap.
Benchmarks assert on these to verify the fast path actually engages.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field

import numpy as np
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional

from repro.sim.blocks import ChurnBlock, flatten_churn
from repro.sim.clock import Clock
from repro.sim.events import (
    BadDeparture,
    BadDepartureBatch,
    Callback,
    Event,
    GoodDeparture,
    GoodJoin,
    Tick,
)
from repro.sim.metrics import MetricSet, MetricsSnapshot, SnapshotPolicy
from repro.sim.rng import RngRegistry
from repro.profiling import ProfilePolicy, SpanProfiler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.adversary.base import Adversary
    from repro.core.protocol import Defense

#: ``Tick`` events run after any same-time protocol event.
TICK_PRIORITY = 10

#: Module-level default for :attr:`SimulationConfig.churn_fast_path`
#: (``None`` in the config resolves to this).  Benchmarks flip it to
#: A/B the block fast path against the per-event path process-wide.
FAST_PATH_DEFAULT = True

#: Counter keys that describe *how* events were processed (heap traffic,
#: fast-vs-heap split) rather than the simulated trajectory.  These are
#: the only counters allowed to differ between the fast path and the
#: per-event path; equivalence checks strip them before comparing rows.
PATH_COUNTERS = (
    "queue_pushes",
    "queue_pops",
    "queue_max_size",
    "churn_events_fast",
    "churn_events_heap",
    "good_joins_fast",
)

_INF = float("inf")


class _TickMarker:
    """Heap sentinel for the engine's recurring tick (no per-fire alloc)."""

    __slots__ = ()


_TICK = _TickMarker()


class EventQueue:
    """A priority queue of events ordered by ``(time, priority, seq)``.

    ``priority`` breaks ties at equal times (lower runs first); ``seq`` is
    a monotone counter providing the deterministic total order that the
    ABC model's "server orders simultaneous events" assumption requires.

    Besides :class:`~repro.sim.events.Event` objects the heap carries two
    engine-internal payloads: bare ident strings (session departures
    scheduled for admitted joiners) and the tick sentinel.  Both exist to
    avoid a frozen-dataclass allocation per scheduled item.

    The queue counts its own traffic (``pushes``, ``pops``, ``max_size``)
    so benchmarks and tests can verify scheduling changes -- e.g. that
    lazy tick re-arming keeps the heap shallow.
    """

    __slots__ = ("_heap", "_seq", "pushes", "pops", "max_size")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()
        #: total events ever pushed / popped, and the high-water mark of
        #: resident heap entries (all exposed via ``MetricSet.counters``
        #: as ``queue_pushes`` / ``queue_pops`` / ``queue_max_size``).
        self.pushes = 0
        self.pops = 0
        self.max_size = 0

    def push_entry(self, time: float, priority: int, item) -> None:
        """Schedule an arbitrary payload (event, ident string, sentinel)."""
        heap = self._heap
        heapq.heappush(heap, (time, priority, next(self._seq), item))
        self.pushes += 1
        if len(heap) > self.max_size:
            self.max_size = len(heap)

    def push(self, event: Event, priority: int = 0) -> None:
        self.push_entry(event.time, priority, event)

    def push_departure(self, time: float, ident: str) -> None:
        """Schedule a session departure for ``ident`` (tuple-backed)."""
        self.push_entry(time, 0, ident)

    def pop(self):
        if not self._heap:
            raise IndexError("pop from empty event queue")
        self.pops += 1
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> Optional[float]:
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class SimulationConfig:
    """Run-level knobs shared by all experiments."""

    horizon: float = 10_000.0
    tick_interval: float = 1.0
    seed: int = 0
    #: record bad-fraction / system-size samples every this many seconds
    sample_interval: float = 50.0
    #: apply block-mode churn through the zero-heap fast path.  ``None``
    #: resolves to :data:`FAST_PATH_DEFAULT`; ``False`` expands blocks
    #: into per-event objects (the A/B baseline for equivalence tests).
    churn_fast_path: Optional[bool] = None
    #: emit incremental :class:`~repro.sim.metrics.MetricsSnapshot` rows
    #: through the simulation's ``on_snapshot`` callback (and the
    #: defense's :class:`~repro.sim.tracing.TraceRecorder`, when
    #: enabled).  ``None`` disables emission; final metrics are
    #: byte-identical either way.
    snapshots: Optional[SnapshotPolicy] = None
    #: attribute wall time across the run loop's seams through a
    #: :class:`~repro.profiling.SpanProfiler` (``Simulation.profiler``).
    #: ``None`` disables profiling: the loop binds the raw callables in
    #: one setup branch and pays no new per-iteration cost; final
    #: metrics are byte-identical either way.
    profile: Optional[ProfilePolicy] = None


@dataclass
class SimulationResult:
    """What a finished run reports back to the experiment harness."""

    horizon: float
    good_spend: float
    adversary_spend: float
    good_spend_rate: float
    adversary_spend_rate: float
    max_bad_fraction: float
    final_system_size: int
    counters: dict
    metrics: Optional[MetricSet] = field(repr=False, default=None)

    @property
    def advantage(self) -> float:
        """Adversary spend divided by good spend (higher favors the defense)."""
        if self.good_spend == 0:
            return float("inf")
        return self.adversary_spend / self.good_spend


class Simulation:
    """Drives one defense against one churn trace and one adversary."""

    def __init__(
        self,
        config: SimulationConfig,
        defense: "Defense",
        churn: Iterable,
        adversary: Optional["Adversary"] = None,
        rngs: Optional[RngRegistry] = None,
        initial_members: Optional[Iterable] = None,
        on_snapshot: Optional[Callable[[MetricsSnapshot], None]] = None,
    ) -> None:
        self.config = config
        self.clock = Clock()
        self.queue = EventQueue()
        self.metrics = MetricSet()
        self.rngs = rngs if rngs is not None else RngRegistry(config.seed)
        self.defense = defense
        self.adversary = adversary
        #: raw churn iterator; may yield ``Event`` objects *or*
        #: ``ChurnBlock`` batches -- the first item decides the mode.
        self._churn: Iterator = iter(churn)
        self._churn_done = False
        #: ``None`` until the first run() sniffs the source; then
        #: ``"events"`` or ``"blocks"``.
        self._churn_mode: Optional[str] = None
        #: at most one churn event held back until the frontier reaches
        #: it (per-event mode)
        self._pending_churn: Optional[Event] = None
        #: current block's rows as plain lists + cursor (block mode)
        self._block_times: Optional[list] = None
        self._block_kinds: Optional[list] = None
        self._block_sessions: Optional[list] = None
        self._block_deadlines: Optional[list] = None
        self._block_idents: Optional[list] = None
        self._block_index = 0
        self._initial_members = list(initial_members) if initial_members else []
        #: proposed trace ident -> latest admitted unique.  Per Section
        #: 2.1.1 every join is issued a fresh unique name, so a replayed
        #: trace's departure rows (which name the *proposed* ident, e.g.
        #: ``relay-09``) would otherwise never match a member and every
        #: flap cycle would leak one standing ID.  Both churn paths
        #: translate named good departures through this map, *popping*
        #: the entry as they do (a re-departure of the same name is a
        #: no-op either way); session departures of named joiners clean
        #: up through ``_alias_owners``.  Memory is therefore bounded by
        #: standing named members, not by total joins.
        self._trace_aliases: dict = {}
        #: admitted unique -> proposed ident, for named joiners whose
        #: departure the engine itself schedules (session rows): when
        #: that session departure fires, the alias entry is retired too.
        self._alias_owners: dict = {}
        self._next_sample = 0.0
        #: live-telemetry consumer; see :meth:`_emit_snapshot`
        self.on_snapshot = on_snapshot
        self._snap_seq = 0
        self._snap_last_time = 0.0
        self._snap_last_good = 0.0
        self._snap_last_adversary = 0.0
        self._snap_wall_start: Optional[float] = None
        self._snap_tracer = None
        #: span accumulator (``config.profile``); ``run()`` drives it
        #: and :meth:`~repro.profiling.SpanProfiler.report` reads it
        self.profiler: Optional[SpanProfiler] = (
            SpanProfiler(config.profile) if config.profile is not None else None
        )
        #: earliest time another adversary.act() call could matter
        self._adversary_wake = float("-inf")
        #: event tallies flushed into MetricSet.counters at summarize
        #: time (a plain int increment is much cheaper than a dict-backed
        #: counter bump on the per-event path)
        self._good_join_events = 0
        self._good_departure_events = 0
        self._bad_departure_events = 0
        #: good-churn rows applied via the zero-heap block fast path
        self._fast_churn_events = 0
        #: the join-only subset of the above (scenario summaries report
        #: "fraction of good joins on the fast path")
        self._fast_join_events = 0
        self._handlers: dict = {
            GoodJoin: self._handle_good_join,
            GoodDeparture: self._handle_good_departure,
            BadDeparture: self._handle_bad_departure,
            BadDepartureBatch: self._handle_bad_departure_batch,
            Tick: self._handle_tick,
            Callback: self._handle_callback,
            str: self._handle_session_departure,
            _TickMarker: self._handle_tick_marker,
        }
        defense.bind(self)
        if adversary is not None:
            adversary.bind(self, defense)

    # ------------------------------------------------------------------
    # scheduling helpers (used by defenses and adversaries)
    # ------------------------------------------------------------------
    def call_at(self, when: float, fn, label: str = "") -> None:
        """Schedule ``fn(now)`` to run at simulation time ``when``."""
        self.queue.push(Callback(time=when, fn=fn, label=label))

    def call_after(self, delay: float, fn, label: str = "") -> None:
        self.call_at(self.clock.now + delay, fn, label=label)

    # ------------------------------------------------------------------
    # churn source plumbing
    # ------------------------------------------------------------------
    def _fast_path_enabled(self) -> bool:
        flag = self.config.churn_fast_path
        return FAST_PATH_DEFAULT if flag is None else bool(flag)

    def _resolve_churn_mode(self) -> None:
        """Sniff the churn source on first run: events or blocks.

        The first item decides the mode; mixed streams (which
        :class:`~repro.churn.traces.ChurnScenario` permits) are handled
        either way -- block mode packs stray good-churn events into
        one-row blocks, event mode flattens stray blocks.  Blocks route
        to the fast path unless it is disabled, in which case they are
        expanded into a per-event stream so both paths see the identical
        event order (the A/B harness relies on this).
        """
        if self._churn_mode is not None:
            return
        first = next(self._churn, None)
        if isinstance(first, ChurnBlock):
            blocks = itertools.chain([first], self._churn)
            if self._fast_path_enabled():
                self._churn_mode = "blocks"
                self._churn = iter(blocks)
            else:
                self._churn_mode = "events"
                self._churn = flatten_churn(blocks)
        else:
            self._churn_mode = "events"
            if first is not None:
                self._pending_churn = first
            else:
                self._churn_done = True

    def _load_next_block(self) -> bool:
        """Advance to the next non-empty block; ``False`` when exhausted.

        Rows are converted to plain Python lists once per block: the
        per-row scans in the main loop are then float compares on list
        items instead of numpy scalar extractions.  Departure deadlines
        (``time + session``, ``inf`` for session-less rows) are computed
        vectorized here so the scan and the admission push loop touch
        one precomputed float per row instead of re-deriving it.  A
        stray per-event item in a block stream is packed into a one-row
        block (non-churn event types are rejected with ``from_events``'s
        clear error).
        """
        for block in self._churn:
            if not isinstance(block, ChurnBlock):
                block = ChurnBlock.from_events([block])
            if len(block) == 0:
                continue
            self._block_times = block.times.tolist()
            self._block_kinds = block.kinds.tolist()
            sessions = block.sessions
            if sessions is not None:
                self._block_sessions = sessions.tolist()
                deadlines = block.times + sessions
                self._block_deadlines = np.nan_to_num(
                    deadlines, nan=_INF, posinf=_INF
                ).tolist()
            else:
                self._block_sessions = None
                self._block_deadlines = None
            self._block_idents = block.idents
            self._block_index = 0
            return True
        self._block_times = None
        self._churn_done = True
        return False

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation until the horizon and summarize.

        **Fast-path equivalence.**  A run of block rows is applied in one
        batch only when every row in it would also be the next popped
        event under the per-event path.  The batch is cut before any row
        that (a) is preceded by a resident heap entry -- at equal times a
        priority-0 heap entry pushed during an *earlier* instant wins
        (it was scheduled before the per-event pump would have admitted
        the row), while a tick (priority 10) or an entry pushed during
        the current instant loses: the pump admits every churn row due
        at time t before the first event at t is dispatched, so
        same-instant pushes always carry higher seqs; (b) reaches the
        adversary's wake time (``act`` must run first); (c) passes the
        next metrics sample mark (at most one boundary row is included,
        then the sample fires, exactly as the per-event loop samples
        after the crossing event); (d) changes kind (join vs departure
        runs map to distinct batch hooks); or (e) falls strictly after
        the earliest session departure another row in the same batch
        schedules -- a row at *exactly* that departure's time stays in
        the batch, because the pump admitted it before the departure was
        pushed.  Cuts are conservative: splitting a batch is always
        equivalent to the per-event order.
        """
        config = self.config
        horizon = config.horizon
        sample_interval = config.sample_interval
        self._bootstrap()
        self._arm_tick()
        self._resolve_churn_mode()
        # Local bindings for the per-event loop: every attribute chased
        # here would otherwise be chased once per event.  The churn pump
        # is inlined as well -- the common case ("held-back event is
        # still beyond the frontier") is a two-comparison check.
        queue = self.queue
        heap = queue._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        next_seq = queue._seq.__next__
        clock = self.clock
        defense = self.defense
        adversary = self.adversary
        handlers = self._handlers
        resolve = self._handler_for
        adv_wake = self._adversary_wake if adversary is not None else _INF
        next_sample = self._next_sample
        now = clock._now
        block_mode = self._churn_mode == "blocks"
        bt = self._block_times
        bk = self._block_kinds
        bs = self._block_sessions
        bd = self._block_deadlines
        bid = self._block_idents
        bi = self._block_index
        bn = len(bt) if bt is not None else 0
        aliases = self._trace_aliases
        owners = self._alias_owners
        churn_iter = self._churn
        pending = self._pending_churn
        if not block_mode and pending is None and not self._churn_done:
            pending = next(churn_iter, None)
            if pending is not None and pending.__class__ is ChurnBlock:
                # Mixed stream: flatten the remainder into events.
                churn_iter = flatten_churn(itertools.chain([pending], churn_iter))
                pending = next(churn_iter, None)
        # Seam bindings: the loop calls these locals instead of chasing
        # attributes, which is also where the profiler hooks in.  With
        # profiling off the raw callables are bound and the loop pays
        # no new per-iteration cost (the only recurring conditional
        # cost stays the snapshot hook's two float compares); with it
        # on, this one setup branch swaps in timed wrappers.
        prof = self.profiler
        if prof is not None:
            # Shadow the defense's hook methods first so the local
            # bindings below pick up the timed versions.
            prof.instrument_defense(defense)
        join_batch = defense.process_good_join_batch
        depart_batch = defense.process_good_departure_batch
        adv_act = adversary.act if adversary is not None else None
        sample = self._sample_now
        emit_snapshot = self._emit_snapshot
        load_block = self._load_next_block
        pump_push = heappush
        drain_pop = heappop
        if prof is not None:
            if prof.deep:
                heappush = prof.wrap_leaf("engine.heap_push", heappush)
                heappop = prof.wrap_leaf("engine.heap_pop", heappop)
                pump_push = prof.wrap_leaf("engine.churn_pump", pump_push)
                drain_pop = prof.wrap_leaf("engine.heap_drain", drain_pop)
            if adv_act is not None:
                adv_act = prof.wrap("adversary.act", adv_act)
            sample = prof.wrap("engine.sample", sample)
            emit_snapshot = prof.wrap("engine.snapshot", emit_snapshot)
            load_block = prof.wrap("engine.block_load", load_block)
            handlers = {
                cls: prof.wrap(f"engine.handle.{cls.__name__}", fn)
                for cls, fn in handlers.items()
            }
            prof.begin("engine.run")
        pops = 0
        churn_pushes = 0
        fast_events = 0
        fast_joins = 0
        max_size = queue.max_size
        # Snapshot thresholds: _INF when telemetry is off (or nobody is
        # listening), so the disabled cost is two float compares per
        # iteration.  Emission never cuts a batch -- due-checks run only
        # *after* a batch (or event) has been applied exactly as it
        # would have been without the policy, which is what keeps final
        # metrics byte-identical with the hook on or off.
        tracer = getattr(defense, "tracer", None)
        self._snap_tracer = tracer if (
            tracer is not None and tracer.enabled
        ) else None
        snap_on = config.snapshots is not None and (
            self.on_snapshot is not None or self._snap_tracer is not None
        )
        if snap_on:
            if self._snap_wall_start is None:
                # Wall clock feeds only the snapshot telemetry channel
                # (events/sec); final metrics never read it.
                self._snap_wall_start = time.perf_counter()  # lint: allow[R001] -- snapshot wall-clock telemetry, never in metrics
            snap_next_time, snap_next_events = self._snap_thresholds(
                self._snap_last_time, pops + fast_events
            )
        else:
            snap_next_time = snap_next_events = _INF
        # Same-instant tie tracking (block mode): when the frontier
        # first reaches a time t, one seq is burned as a watermark;
        # heap entries pushed during instant t carry seqs >= the
        # watermark and therefore lose ties to block rows at t (the
        # per-event pump admits every row due at t -- with lower seqs --
        # before the first event at t is dispatched).
        frontier_time = float("-inf")
        frontier_seq = 0
        while True:
            if block_mode and bt is None and not self._churn_done:
                if load_block():
                    bt = self._block_times
                    bk = self._block_kinds
                    bs = self._block_sessions
                    bd = self._block_deadlines
                    bid = self._block_idents
                    bi = 0
                    bn = len(bt)
            # Admit every churn event due at or before the frontier
            # (per-event mode only; block rows never enter the heap).
            while pending is not None:
                pull_until = heap[0][0] if heap else horizon
                if pull_until > horizon:
                    pull_until = horizon
                if pending.time > pull_until:
                    break
                pump_push(heap, (pending.time, 0, next_seq(), pending))
                churn_pushes += 1
                if len(heap) > max_size:
                    max_size = len(heap)
                pending = next(churn_iter, None)
                if pending is not None and pending.__class__ is ChurnBlock:
                    # Mixed stream: flatten the remainder into events.
                    churn_iter = flatten_churn(
                        itertools.chain([pending], churn_iter)
                    )
                    pending = next(churn_iter, None)
            # ----------------------------------------------------------
            # block fast path
            # ----------------------------------------------------------
            if bt is not None:
                t0 = bt[bi]
                if t0 <= horizon:
                    if heap:
                        top = heap[0]
                        churn_first = t0 < top[0] or (
                            t0 == top[0]
                            and (
                                top[1] > 0
                                or (t0 == frontier_time and top[2] >= frontier_seq)
                            )
                        )
                    else:
                        churn_first = True
                    if churn_first:
                        if t0 < now:
                            raise ValueError(
                                f"clock cannot move backwards: now={now}, "
                                f"requested={t0}"
                            )
                        if t0 > frontier_time:
                            frontier_time = t0
                            frontier_seq = next_seq()
                        if adversary is not None and t0 >= adv_wake:
                            now = clock._now = t0
                            adv_act(t0)
                            adv_wake = adversary.next_wake(t0)
                        # Scan the batch extent.  Row ``bi`` is always
                        # included (the adversary, if due, already acted
                        # at its time); the scan extends the run while
                        # every boundary in the docstring holds.
                        if heap:
                            top = heap[0]
                            hb_time = top[0]
                            # A priority-0 entry at hb_time loses a tie
                            # only to rows of the instant whose watermark
                            # ``frontier_seq`` is (t0): those rows were
                            # pump-admitted before any same-instant push.
                            # Rows at *later* instants are admitted after
                            # the entry existed, so they must yield.
                            hb_tick = top[1] > 0
                            hb_yields_to_t0 = not hb_tick and top[2] >= frontier_seq
                        else:
                            hb_time = _INF
                            hb_tick = True
                            hb_yields_to_t0 = False
                        kind0 = bk[bi]
                        joins = kind0 == 0
                        # Session departures scheduled by batch rows:
                        # the per-event pump co-admits only equal-time
                        # rows (its pull bound shrinks to each pushed
                        # row's own time), so a departure scheduled by
                        # a row at an *earlier* instant wins a tie
                        # against a later row (cut at ``>=``), while a
                        # same-instant row was admitted first and stays.
                        min_dep = _INF
                        inst_time = t0
                        track_deps = joins and bd is not None
                        inst_dep = bd[bi] if track_deps else _INF
                        j = bi + 1
                        if t0 < next_sample:
                            while j < bn:
                                t = bt[j]
                                if t > horizon:
                                    break
                                if t > hb_time:
                                    break
                                if t == hb_time and not (
                                    hb_tick or (hb_yields_to_t0 and t == t0)
                                ):
                                    break
                                if t >= adv_wake:
                                    break
                                if bk[j] != kind0:
                                    break
                                if t > inst_time:
                                    if inst_dep < min_dep:
                                        min_dep = inst_dep
                                    inst_dep = _INF
                                    inst_time = t
                                if t >= min_dep:
                                    break
                                if t >= next_sample:
                                    j += 1
                                    break
                                if track_deps:
                                    d = bd[j]
                                    if d < inst_dep:
                                        inst_dep = d
                                j += 1
                        times_seg = bt[bi:j]
                        ids_seg = bid[bi:j] if bid is not None else None
                        k = j - bi
                        if joins:
                            admitted = join_batch(times_seg, ids_seg)
                            if ids_seg is not None:
                                for proposed, uid in zip(ids_seg, admitted):
                                    if proposed is not None and uid is not None:
                                        aliases[proposed] = uid
                            self._good_join_events += k
                            fast_joins += k
                            if bd is not None:
                                off = bi
                                if ids_seg is None:
                                    for uid in admitted:
                                        if uid is not None:
                                            depart_at = bd[off]
                                            if depart_at <= horizon:
                                                heappush(
                                                    heap,
                                                    (depart_at, 0, next_seq(), uid),
                                                )
                                                churn_pushes += 1
                                        off += 1
                                else:
                                    # Named joiners with engine-scheduled
                                    # departures: remember the proposed
                                    # name so the session departure can
                                    # retire the alias entry.
                                    for row, uid in enumerate(admitted):
                                        if uid is not None:
                                            depart_at = bd[off]
                                            if depart_at <= horizon:
                                                heappush(
                                                    heap,
                                                    (depart_at, 0, next_seq(), uid),
                                                )
                                                churn_pushes += 1
                                                proposed = ids_seg[row]
                                                if proposed is not None:
                                                    owners[uid] = proposed
                                        off += 1
                                if len(heap) > max_size:
                                    max_size = len(heap)
                        else:
                            if ids_seg is not None and aliases:
                                ids_seg = [aliases.pop(i, i) for i in ids_seg]
                            depart_batch(times_seg, ids_seg)
                            self._good_departure_events += k
                        fast_events += k
                        bi = j
                        if bi >= bn:
                            bt = None
                        last_t = times_seg[-1]
                        # Keep the watermark seq: entries the batch hooks
                        # pushed carry later seqs, and every row up to
                        # ``last_t`` was admitted before the batch ran.
                        if last_t > frontier_time:
                            frontier_time = last_t
                        now = clock._now = last_t
                        if last_t >= next_sample:
                            sample()
                            next_sample = last_t + sample_interval
                        if (
                            last_t >= snap_next_time
                            or pops + fast_events >= snap_next_events
                        ):
                            snap_next_time, snap_next_events = (
                                emit_snapshot(
                                    last_t, pops + fast_events,
                                    fast_events, len(heap),
                                )
                            )
                        continue
            if not heap:
                break
            entry = heap[0]
            event_time = entry[0]
            if event_time > horizon:
                break
            event = heappop(heap)[3]
            pops += 1
            # Keep Clock.advance_to's fail-loud invariant without its
            # call overhead: an event behind the clock means an unsorted
            # churn source or a negative-delay schedule, and processing
            # it would silently corrupt every rate and series.
            if event_time < now:
                raise ValueError(
                    f"clock cannot move backwards: now={now}, "
                    f"requested={event_time}"
                )
            now = clock._now = event_time
            if block_mode and event_time > frontier_time:
                frontier_time = event_time
                frontier_seq = next_seq()
            if adversary is not None and event_time >= adv_wake:
                adv_act(event_time)
                adv_wake = adversary.next_wake(event_time)
            cls = event.__class__
            if cls is str:
                # Session departure: drain the run of consecutive
                # tuple-backed departures at the heap front.  Bounds
                # mirror the block batch: stop before the adversary's
                # wake, a sample mark, or any same/earlier-time churn
                # row (block row or pending event -- those lose the seq
                # tie to an already-scheduled departure, so <= is safe).
                run = None
                if event_time < next_sample and heap:
                    top = heap[0]
                    if top[3].__class__ is str:
                        t2 = top[0]
                        # Strict bound: a departure at exactly the next
                        # churn row's (or pending event's) time leaves
                        # the drain, and the outer loop's tie rules
                        # decide who goes first.
                        block_bound = bt[bi] if bt is not None else _INF
                        if pending is not None and pending.time < block_bound:
                            block_bound = pending.time
                        if t2 < adv_wake and t2 < next_sample and t2 < block_bound:
                            d_times = [event_time]
                            d_ids = [event]
                            while True:
                                drain_pop(heap)
                                pops += 1
                                d_times.append(t2)
                                d_ids.append(top[3])
                                if not heap:
                                    break
                                top = heap[0]
                                if top[3].__class__ is not str:
                                    break
                                t2 = top[0]
                                if (
                                    t2 >= adv_wake
                                    or t2 >= next_sample
                                    or t2 >= block_bound
                                ):
                                    break
                            run = d_times
                if run is not None:
                    now = clock._now = d_times[-1]
                    self._good_departure_events += len(d_ids)
                    depart_batch(d_times, d_ids)
                    if owners:
                        for uid in d_ids:
                            proposed = owners.pop(uid, None)
                            if proposed is not None and aliases.get(proposed) == uid:
                                del aliases[proposed]
                else:
                    self._good_departure_events += 1
                    depart_batch((event_time,), (event,))
                    if owners:
                        proposed = owners.pop(event, None)
                        if proposed is not None and aliases.get(proposed) == event:
                            del aliases[proposed]
            else:
                handler = handlers.get(cls)
                if handler is None:
                    handler = resolve(cls)
                    if prof is not None:
                        # ``resolve`` caches the raw handler on the
                        # instance table; the profiled run's local copy
                        # caches a timed wrapper alongside it.
                        handler = prof.wrap(
                            f"engine.handle.{cls.__name__}", handler
                        )
                        handlers[cls] = handler
                handler(event, event_time)
            if now >= next_sample:
                sample()
                next_sample = now + sample_interval
            if now >= snap_next_time or pops + fast_events >= snap_next_events:
                snap_next_time, snap_next_events = emit_snapshot(
                    now, pops + fast_events, fast_events, len(heap)
                )
        queue.pops += pops
        queue.pushes += churn_pushes
        if queue.max_size < max_size:
            queue.max_size = max_size
        self._pending_churn = pending
        if not block_mode:
            self._churn_done = pending is None
            self._churn = churn_iter
        self._block_times = bt
        self._block_kinds = bk
        self._block_sessions = bs
        self._block_deadlines = bd
        self._block_idents = bid
        self._block_index = bi
        self._fast_churn_events += fast_events
        self._fast_join_events += fast_joins
        if adversary is not None:
            self._adversary_wake = adv_wake
        self._next_sample = next_sample
        self.clock.advance_to(horizon)
        if adversary is not None and horizon >= adv_wake:
            adv_act(horizon)
        sample()
        if snap_on:
            # Terminal snapshot: cumulative spend here equals the final
            # row exactly (the horizon-time adversary act has run).
            emit_snapshot(horizon, 0, 0, len(queue._heap), last=True)
        if prof is not None:
            prof.end()
        return self._summarize()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """Initialize membership and schedule initial residual departures.

        Initial members model a system already in steady state: each
        carries a *residual* session time (sampled from the equilibrium
        distribution by the churn datasets) after which it departs.
        """
        if not self._initial_members:
            self.defense.bootstrap([])
            return
        idents = []
        for member in self._initial_members:
            idents.append(member.ident)
        self.defense.bootstrap(idents)
        for member in self._initial_members:
            if member.residual is None:
                continue
            depart_at = member.residual
            if 0 <= depart_at <= self.config.horizon:
                self.queue.push_departure(depart_at, member.ident)

    def _arm_tick(self) -> None:
        """Schedule the first recurring tick (re-armed as each one fires).

        Only one tick is ever resident in the queue: pre-scheduling
        ``horizon / tick_interval`` of them (10,001 heap entries at the
        defaults) made every heap operation pay a log of that bulk.  The
        resident entry is a shared sentinel, not a fresh ``Tick`` object
        per fire.
        """
        interval = self.config.tick_interval
        if interval <= 0:
            return
        if interval <= self.config.horizon:
            self.queue.push_entry(interval, TICK_PRIORITY, _TICK)

    # ------------------------------------------------------------------
    # event handlers (dispatch table; one per event class)
    # ------------------------------------------------------------------
    def _handle_good_join(self, event: GoodJoin, now: float) -> None:
        self._good_join_events += 1
        admitted_ident = self.defense.process_good_join(event.ident)
        if admitted_ident is not None:
            if event.ident is not None:
                self._trace_aliases[event.ident] = admitted_ident
            if event.session is not None:
                depart_at = now + event.session
                if depart_at <= self.config.horizon:
                    self.queue.push_departure(depart_at, admitted_ident)
                    if event.ident is not None:
                        self._alias_owners[admitted_ident] = event.ident

    def _handle_good_departure(self, event: GoodDeparture, now: float) -> None:
        self._good_departure_events += 1
        ident = event.ident
        if ident is not None:
            ident = self._trace_aliases.pop(ident, ident)
        self.defense.process_good_departure(ident)

    def _handle_session_departure(self, ident: str, now: float) -> None:
        """Out-of-loop dispatch of a tuple-backed session departure."""
        self._good_departure_events += 1
        self.defense.process_good_departure(ident)
        proposed = self._alias_owners.pop(ident, None)
        if proposed is not None and self._trace_aliases.get(proposed) == ident:
            del self._trace_aliases[proposed]

    def _handle_bad_departure(self, event: BadDeparture, now: float) -> None:
        self._bad_departure_events += 1
        self.defense.process_bad_departure(event.ident)

    def _handle_bad_departure_batch(
        self, event: BadDepartureBatch, now: float
    ) -> None:
        """A scheduled Sybil mass withdrawal: one heap entry, one call.

        ``drain_fraction`` batches size themselves against the Sybil
        population standing *now* (the compiler cannot know it in
        advance), so a staged exodus actually stages instead of the
        first oversized batch draining everything.  Counts only the
        departures the schedule delivered (a batch larger than the
        standing Sybil population withdraws what is there, and purge
        evictions tripped along the way stay out -- they are tallied by
        the defense's own counters), so ``bad_departure_events`` keeps
        meaning "withdrawals the adversary's schedule performed".
        """
        count = event.count
        if event.drain_fraction is not None:
            count = math.ceil(self.defense.bad_count() * event.drain_fraction)
        self._bad_departure_events += self.defense.process_bad_departure_batch(
            count
        )

    def _handle_tick(self, event: Tick, now: float) -> None:
        """Externally pushed ``Tick`` events (tests, custom schedules)."""
        self.defense.on_tick(now)
        next_tick = event.time + self.config.tick_interval
        if next_tick <= self.config.horizon:
            self.queue.push(Tick(time=next_tick), priority=TICK_PRIORITY)

    def _handle_tick_marker(self, marker: _TickMarker, now: float) -> None:
        self.defense.on_tick(now)
        next_tick = now + self.config.tick_interval
        if next_tick <= self.config.horizon:
            self.queue.push_entry(next_tick, TICK_PRIORITY, marker)

    def _handle_callback(self, event: Callback, now: float) -> None:
        event.fn(now)

    def _handler_for(self, cls: type) -> Callable:
        """Resolve (and cache) the handler for an event subclass."""
        for base in cls.__mro__:
            handler = self._handlers.get(base)
            if handler is not None:
                self._handlers[cls] = handler
                return handler
        raise TypeError(f"unhandled event type: {cls.__name__}")

    def _dispatch(self, event) -> None:
        """Route one event (kept for tests and out-of-loop callers)."""
        self._handler_for(event.__class__)(event, self.clock.now)

    def _snap_thresholds(self, now: float, events_done: int):
        """Next (sim-time, event-count) marks that trigger a snapshot."""
        policy = self.config.snapshots
        next_time = (
            now + policy.sim_interval if policy.sim_interval else _INF
        )
        next_events = (
            events_done + policy.every_events if policy.every_events else _INF
        )
        return next_time, next_events

    def _emit_snapshot(self, now: float, events_local: int,
                       fast_local: int, heap_size: int,
                       last: bool = False):
        """Build and deliver one :class:`MetricsSnapshot`; returns the
        next thresholds (in the run loop's local event basis).

        Determinism contract: this reads existing state only --
        ``defense.system_size()`` / ``bad_fraction()`` and the spend
        meters' totals -- draws no RNG, and records nothing into the
        run's :class:`MetricSet`, so the simulated trajectory (and the
        final metrics JSON) is identical with snapshots on or off.
        ``events_local``/``fast_local`` count this ``run()`` call; the
        already-flushed totals from earlier calls are added back for
        the reported cumulative fields.
        """
        metrics = self.metrics
        good = metrics.good.total
        adversary = metrics.adversary.total
        dt = now - self._snap_last_time
        wall = time.perf_counter() - self._snap_wall_start  # lint: allow[R001] -- snapshot wall-clock telemetry, never in metrics
        events = self.queue.pops + self._fast_churn_events + events_local
        snapshot = MetricsSnapshot(
            seq=self._snap_seq,
            sim_time=now,
            wall_time_s=wall,
            events=events,
            events_per_sec=events / wall if wall > 0 else 0.0,
            system_size=self.defense.system_size(),
            bad_fraction=self.defense.bad_fraction(),
            good_spend=good,
            adversary_spend=adversary,
            good_spend_rate=(
                (good - self._snap_last_good) / dt if dt > 0 else 0.0
            ),
            adversary_spend_rate=(
                (adversary - self._snap_last_adversary) / dt if dt > 0 else 0.0
            ),
            churn_events_fast=self._fast_churn_events + fast_local,
            heap_size=heap_size,
            last=last,
        )
        self._snap_seq += 1
        self._snap_last_time = now
        self._snap_last_good = good
        self._snap_last_adversary = adversary
        if self.on_snapshot is not None:
            self.on_snapshot(snapshot)
        tracer = self._snap_tracer
        if tracer is not None:
            tracer.emit(
                now, "snapshot",
                seq=snapshot.seq,
                events=snapshot.events,
                system_size=snapshot.system_size,
                bad_fraction=snapshot.bad_fraction,
                good_spend=snapshot.good_spend,
                adversary_spend=snapshot.adversary_spend,
                good_spend_rate=snapshot.good_spend_rate,
                adversary_spend_rate=snapshot.adversary_spend_rate,
            )
        return self._snap_thresholds(now, events_local)

    def _sample_now(self) -> None:
        now = self.clock.now
        size = self.defense.system_size()
        fraction = self.defense.bad_fraction()
        if self.metrics.system_size.last_time() == now:
            return
        self.metrics.system_size.record(now, size)
        self.metrics.bad_fraction.record(now, fraction)

    def _summarize(self) -> SimulationResult:
        horizon = self.config.horizon
        max_bad = self.metrics.bad_fraction.max() if len(self.metrics.bad_fraction) else 0.0
        max_bad = max(max_bad, getattr(self.defense, "peak_bad_fraction", 0.0))
        counters = self.metrics.counters
        churn_total = (
            self._good_join_events
            + self._good_departure_events
            + self._bad_departure_events
        )
        # Path split: fast = applied straight from blocks (zero heap),
        # heap = dispatched from the queue.  These two are diagnostics of
        # *how* events were processed; every other counter is identical
        # between the fast path and the per-event path.
        counters.add("churn_events_fast", self._fast_churn_events)
        counters.add("churn_events_heap", churn_total - self._fast_churn_events)
        counters.add("good_joins_fast", self._fast_join_events)
        self._fast_churn_events = 0
        self._fast_join_events = 0
        if self._good_join_events:
            counters.add("good_join_events", self._good_join_events)
            self._good_join_events = 0
        if self._good_departure_events:
            counters.add("good_departure_events", self._good_departure_events)
            self._good_departure_events = 0
        if self._bad_departure_events:
            counters.add("bad_departure_events", self._bad_departure_events)
            self._bad_departure_events = 0
        counters.add("queue_pushes", self.queue.pushes)
        counters.add("queue_pops", self.queue.pops)
        counters.add("queue_max_size", self.queue.max_size)
        return SimulationResult(
            horizon=horizon,
            good_spend=self.metrics.good.total,
            adversary_spend=self.metrics.adversary.total,
            good_spend_rate=self.metrics.good.rate(horizon),
            adversary_spend_rate=self.metrics.adversary.rate(horizon),
            max_bad_fraction=max_bad,
            final_system_size=self.defense.system_size(),
            counters=counters.as_dict(),
            metrics=self.metrics,
        )
