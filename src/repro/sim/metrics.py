"""Counters, time series, and spend meters.

The paper's headline quantities are *rates*: the good spend rate ``A``
(total resource-burning cost of good IDs per second) and the adversary's
spend rate ``T``.  :class:`SpendMeter` accumulates raw costs and converts
them to rates over a given horizon.  :class:`SlidingWindowCounter`
implements the "number of IDs that joined within the last ``1/J̃``
seconds" query at the heart of Ergo's entrance cost (Figure 4, Step 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Tuple

import numpy as np


class Counter:
    """A dictionary of named integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self._counts})"


class TimeSeries:
    """An append-only series of ``(time, value)`` samples.

    Backed by preallocated numpy buffers with amortized doubling growth:
    :meth:`record` is an O(1) scalar store (no per-sample list-object
    churn once event dispatch itself is cheap), and :attr:`times` /
    :attr:`values` are zero-copy array views over the filled prefix --
    analysis code gets vectorized access for free.  Treat the views as
    read-only; they alias the live buffers.
    """

    __slots__ = ("name", "_times", "_values", "_n")

    #: Initial buffer capacity (doubles as the series grows).
    INITIAL_CAPACITY = 32

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times = np.empty(self.INITIAL_CAPACITY, dtype=np.float64)
        self._values = np.empty(self.INITIAL_CAPACITY, dtype=np.float64)
        self._n = 0

    def record(self, time: float, value: float) -> None:
        n = self._n
        times = self._times
        if n:
            if time < times[n - 1]:
                raise ValueError(
                    f"time series {self.name!r} must be appended in time order"
                )
            if n == times.shape[0]:
                self._times = np.empty(2 * n, dtype=np.float64)
                self._times[:n] = times
                times = self._times
                values = np.empty(2 * n, dtype=np.float64)
                values[:n] = self._values
                self._values = values
        times[n] = time
        self._values[n] = value
        self._n = n + 1

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(
            zip(self._times[: self._n].tolist(), self._values[: self._n].tolist())
        )

    @property
    def times(self) -> np.ndarray:
        """Zero-copy float64 view of the sample times.

        The view aliases the live buffer: a later :meth:`record` that
        triggers an amortized-doubling resize leaves previously fetched
        views pointing at the *old* buffer.  Re-fetch after writing, or
        take a stable snapshot with :meth:`arrays`.
        """
        return self._times[: self._n]

    @property
    def values(self) -> np.ndarray:
        """Zero-copy float64 view of the sample values.

        Same aliasing caveat as :attr:`times`: re-fetch after any
        :meth:`record`, or use :meth:`arrays` for a stable snapshot.
        """
        return self._values[: self._n]

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of ``(times, values)``, stable across future records.

        Use this at result-assembly boundaries (exports, reports) where
        the series may still be appended to afterwards; the zero-copy
        views go stale when a resize reallocates the buffers.
        """
        return self._times[: self._n].copy(), self._values[: self._n].copy()

    def max(self) -> float:
        if not self._n:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(self._values[: self._n].max())

    def min(self) -> float:
        if not self._n:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(self._values[: self._n].min())

    def last(self) -> float:
        if not self._n:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(self._values[self._n - 1])

    def last_time(self) -> Optional[float]:
        """Time of the most recent sample, or ``None`` when empty (O(1))."""
        if not self._n:
            return None
        return float(self._times[self._n - 1])

    def value_at(self, time: float) -> float:
        """The most recent sample at or before ``time`` (step function)."""
        idx = int(np.searchsorted(self._times[: self._n], time, side="right")) - 1
        if idx < 0:
            raise ValueError(f"no sample at or before t={time}")
        return float(self._values[idx])


class SpendMeter:
    """Accumulates resource-burning costs for one party.

    Costs are classified by *category* (``"entrance"``, ``"purge"``,
    ``"recurring"``, ...) so experiments can report the breakdown that
    Section 7.1's intuition talks about (entrance costs vs purge costs).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._total = 0.0
        self._by_category: Dict[str, float] = {}

    def charge(self, amount: float, category: str = "other") -> None:
        if amount < 0:
            raise ValueError(f"negative charge on {self.name!r}: {amount}")
        self._total += amount
        self._by_category[category] = self._by_category.get(category, 0.0) + amount

    def charge_seq(self, amounts, category: str = "other") -> None:
        """Charge a sequence of amounts, one at a time.

        Float-exact equivalent of calling :meth:`charge` per amount (the
        running totals accumulate in the same order), minus the per-call
        overhead -- used by the defenses' whole-run join hooks, where
        accumulation order must match the per-event path bit for bit.
        """
        total = self._total
        cat_total = self._by_category.get(category, 0.0)
        for amount in amounts:
            if amount < 0:
                raise ValueError(f"negative charge on {self.name!r}: {amount}")
            total += amount
            cat_total += amount
        self._total = total
        self._by_category[category] = cat_total

    @property
    def total(self) -> float:
        return self._total

    def by_category(self) -> Dict[str, float]:
        return dict(self._by_category)

    def rate(self, horizon: float) -> float:
        """Average spend per second over a horizon of ``horizon`` seconds."""
        if horizon <= 0:
            raise ValueError(f"non-positive horizon: {horizon}")
        return self._total / horizon

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpendMeter({self.name!r}, total={self._total:.2f})"


class SlidingWindowCounter:
    """Counts events inside a trailing time window of mutable width.

    Ergo's entrance cost is ``1 +`` the number of IDs that joined within
    the last ``1/J̃`` seconds *of the current iteration* (Figure 4).  The
    window width changes whenever GoodJEst updates ``J̃``, and the counter
    is cleared at iteration boundaries, so both operations are supported.

    Events are stored as sorted ``(time, prefix-count)`` parallel arrays
    behind a *width-aware cursor*: for the monotone query times a
    simulation produces, ``count`` advances the cursor to the window's
    left edge in amortized O(1), and a width change just walks it back.
    Counting is **non-destructive**: a batch that has aged out of the
    current window is *kept*, so a later ``set_width`` to a wider window
    (GoodJEst revising J̃ downward makes ``1/J̃`` grow) correctly
    re-admits it.  The destructive-eviction layout this replaces
    permanently undercounted after such a widening.  Whole join runs are
    quoted and recorded in one pass by :meth:`quote_record_run` (the
    engine's block fast path).

    ``max_width`` bounds how far back a future window can ever reach:
    batches older than ``now - max_width`` may be pruned, and
    ``set_width`` beyond ``max_width`` is rejected.  ``None`` (the
    default) keeps every batch until :meth:`clear`.
    """

    #: run length below which the scalar quote loop beats the
    #: vectorized pass (numpy calls have fixed per-call overhead)
    _VECTOR_MIN = 12

    def __init__(self, width: float, max_width: Optional[float] = None) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive: {width}")
        if max_width is not None and max_width < width:
            raise ValueError(
                f"max_width {max_width} is narrower than the width {width}"
            )
        self._width = float(width)
        self._max_width = float(max_width) if max_width is not None else None
        #: batch times (sorted) and prefix sums: ``_cum[i]`` = events in
        #: batches ``[0, i)``; plain lists -- scalar access dominates
        self._t: List[float] = []
        self._cum: List[int] = [0]
        #: index of the first batch inside the last-queried window
        self._cursor = 0
        #: batches before this index were pruned (beyond ``max_width``)
        self._head = 0
        #: events are never counted before this time (iteration start)
        self._floor = float("-inf")

    @property
    def width(self) -> float:
        return self._width

    @property
    def max_width(self) -> Optional[float]:
        return self._max_width

    @property
    def _batches(self) -> List[List[float]]:
        """Live batches as ``[time, count]`` pairs (tests/debugging)."""
        t = self._t[self._head :]
        cum = self._cum[self._head :]
        return [[time, cum[i + 1] - cum[i]] for i, time in enumerate(t)]

    def set_width(self, width: float) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive: {width}")
        if self._max_width is not None and width > self._max_width:
            raise ValueError(
                f"width {width} exceeds max_width {self._max_width}; "
                "events that far back may already be pruned"
            )
        self._width = float(width)

    def clear(self, now: float) -> None:
        """Forget all events and refuse to count anything before ``now``."""
        self._t = []
        self._cum = [0]
        self._cursor = 0
        self._head = 0
        self._floor = float(now)

    def _prune(self, now: float) -> None:
        """Advance past batches no representable window can reach."""
        horizon = now - self._max_width
        t = self._t
        n = len(t)
        head = self._head
        while head < n and t[head] <= horizon:
            head += 1
        if head > 1024 and head * 2 > n:
            # Compact the pruned prefix away (amortized O(1) per event).
            del t[:head]
            base = self._cum[head]
            self._cum = [c - base for c in self._cum[head:]]
            self._cursor = max(self._cursor - head, 0)
            head = 0
        self._head = head

    def record(self, now: float, count: int = 1) -> None:
        if now < self._floor:
            raise ValueError("cannot record an event before the window floor")
        if count < 0:
            raise ValueError(f"negative event count: {count}")
        if count == 0:
            return
        t = self._t
        if t and t[-1] == now:
            self._cum[-1] += count
            return
        t.append(now)
        self._cum.append(self._cum[-1] + count)
        if self._max_width is not None:
            self._prune(now)

    def count(self, now: float) -> int:
        """Number of recorded events in ``(now - width, now]``.

        Events at exactly ``now - width`` have aged out; events at
        exactly the floor time (recorded in the same instant as a
        ``clear``) still count.  Aged-out batches are *not* discarded:
        a later, wider window still sees them (up to ``max_width``).
        """
        cutoff = now - self._width
        t = self._t
        n = len(t)
        c = self._cursor
        if c > n:
            c = n
        while c < n and t[c] <= cutoff:
            c += 1
        head = self._head
        while c > head and t[c - 1] > cutoff:
            c -= 1
        self._cursor = c
        return self._cum[n] - self._cum[c]

    # -- whole-run batch operations (the engine's block fast path) ------
    def record_run(self, times) -> None:
        """Record a non-decreasing run of single events in one pass."""
        k = len(times)
        if k == 0:
            return
        t0 = times[0]
        if t0 < self._floor:
            raise ValueError("cannot record an event before the window floor")
        cum = self._cum
        base = cum[-1]
        if isinstance(times, np.ndarray):
            times = times.tolist()
        self._t.extend(times)
        cum.extend(range(base + 1, base + k + 1))
        if self._max_width is not None:
            self._prune(times[-1])

    def quote_record_run(self, times) -> List[int]:
        """Per-row window counts for a run of joins, then record them.

        Entry ``i`` equals what ``count(times[i])`` would have returned
        just before ``record(times[i], 1)`` -- i.e. the exact per-row
        quote-then-record sequence of Ergo's entrance pricing (Figure 4
        Step 1), computed in one pass.  Short runs use the cursor
        scalar path; long runs one vectorized pass over the window's
        tail slice.
        """
        k = len(times)
        if k == 0:
            return []
        if isinstance(times, np.ndarray):
            times = times.tolist()
        if times[0] < self._floor:
            raise ValueError("cannot record an event before the window floor")
        t_list = self._t
        cum = self._cum
        if k < self._VECTOR_MIN or (t_list and t_list[-1] > times[0]):
            # Scalar path: each row counts through the cursor (seeing
            # the rows of this run appended before it), then appends.
            counts = []
            append_count = counts.append
            count = self.count
            append_t = t_list.append
            append_cum = cum.append
            for now in times:
                append_count(count(now))
                append_t(now)
                append_cum(cum[-1] + 1)
            if self._max_width is not None:
                self._prune(times[-1])
            return counts
        return self._quote_record_vector(times, k)

    def _quote_record_vector(self, times: List[float], k: int) -> List[int]:
        """One vectorized pass over the window's in-reach tail slice."""
        t = np.asarray(times, dtype=np.float64)
        cutoffs = t - self._width
        t_list = self._t
        cum = self._cum
        n = len(t_list)
        # Move the cursor to the first batch inside row 0's window; only
        # the tail slice from there on can fall inside any row's window
        # (cutoffs are non-decreasing), so the numpy conversion below is
        # proportional to the window content, not the history.
        c = self._cursor
        if c > n:
            c = n
        cut0 = float(cutoffs[0])
        while c < n and t_list[c] <= cut0:
            c += 1
        head = self._head
        while c > head and t_list[c - 1] > cut0:
            c -= 1
        self._cursor = c
        prior = np.asarray(t_list[c:n], dtype=np.float64)
        prior_cum = np.asarray(cum[c : n + 1], dtype=np.int64)
        # All prior batches are at or before t[0] (the caller routed
        # out-of-order histories to the scalar path), so "events at or
        # before t[i]" is the whole slice for every row.
        counts = prior_cum[n - c] - prior_cum[
            np.searchsorted(prior, cutoffs, side="right")
        ]
        # Rows of this run that precede row i and are still inside its
        # window: all j < i with t[j] > t[i] - width.
        counts += np.arange(k) - np.searchsorted(t, cutoffs, side="right")
        base = cum[-1]
        t_list.extend(times)
        cum.extend(range(base + 1, base + k + 1))
        if self._max_width is not None:
            self._prune(times[-1])
        return counts.tolist()


@dataclass(frozen=True)
class SnapshotPolicy:
    """When the engine emits incremental :class:`MetricsSnapshot` rows.

    Either knob (or both) may be set: ``sim_interval`` emits a snapshot
    whenever the clock crosses the next interval mark, ``every_events``
    whenever another N logical events have been processed.  Emission is
    strictly *observational*: the engine samples existing counters and
    spend totals at batch boundaries it would have taken anyway, draws
    no RNG, and records nothing into the run's metrics -- so final
    metrics are byte-identical with snapshots on or off, on both the
    block fast path and the per-event heap path.
    """

    #: emit whenever simulated time advances past the next mark
    sim_interval: Optional[float] = None
    #: emit whenever another N logical events have been processed
    every_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sim_interval is None and self.every_events is None:
            raise ValueError(
                "SnapshotPolicy needs sim_interval and/or every_events"
            )
        if self.sim_interval is not None and self.sim_interval <= 0:
            raise ValueError(
                f"sim_interval must be positive seconds: {self.sim_interval}"
            )
        if self.every_events is not None and self.every_events < 1:
            raise ValueError(
                f"every_events must be >= 1: {self.every_events}"
            )


class MetricsSnapshot(NamedTuple):
    """One incremental telemetry row emitted mid-run by the engine.

    Spend *totals* are cumulative since the start of the run; spend
    *rates* are deltas since the previous snapshot divided by the
    simulated time elapsed between them, so a live reader sees the
    paper's headline quantities (good rate ``A`` vs adversary rate
    ``T``) as they evolve.  ``wall_time_s`` / ``events_per_sec`` are
    wall-clock observability fields and the only nondeterministic ones;
    everything else is a pure function of the simulated trajectory.

    A ``NamedTuple`` rather than a (frozen) dataclass deliberately:
    construction happens inside the engine loop, and tuple creation is
    several times cheaper than fourteen ``object.__setattr__`` calls --
    the difference is most of the snapshot hook's overhead budget.
    """

    #: 0-based emission index within this run
    seq: int
    sim_time: float
    #: wall seconds since the run started (nondeterministic)
    wall_time_s: float
    #: logical events processed so far (heap pops + fast-path rows)
    events: int
    #: events / wall_time_s (nondeterministic)
    events_per_sec: float
    system_size: int
    bad_fraction: float
    good_spend: float
    adversary_spend: float
    #: delta spend / delta sim-time since the previous snapshot
    good_spend_rate: float
    adversary_spend_rate: float
    #: good-churn rows applied via the zero-heap block fast path so far
    churn_events_fast: int
    #: resident event-heap entries at emission time
    heap_size: int
    #: True only for the terminal snapshot emitted at the horizon
    last: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return self._asdict()


@dataclass
class MetricSet:
    """The standard bundle of metrics a simulation run produces."""

    good: SpendMeter = field(default_factory=lambda: SpendMeter("good"))
    adversary: SpendMeter = field(default_factory=lambda: SpendMeter("adversary"))
    counters: Counter = field(default_factory=Counter)
    bad_fraction: TimeSeries = field(
        default_factory=lambda: TimeSeries("bad_fraction")
    )
    system_size: TimeSeries = field(default_factory=lambda: TimeSeries("system_size"))
    estimate_ratio: TimeSeries = field(
        default_factory=lambda: TimeSeries("estimate_ratio")
    )

    def good_spend_rate(self, horizon: float) -> float:
        return self.good.rate(horizon)

    def adversary_spend_rate(self, horizon: float) -> float:
        return self.adversary.rate(horizon)
