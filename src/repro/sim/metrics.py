"""Counters, time series, and spend meters.

The paper's headline quantities are *rates*: the good spend rate ``A``
(total resource-burning cost of good IDs per second) and the adversary's
spend rate ``T``.  :class:`SpendMeter` accumulates raw costs and converts
them to rates over a given horizon.  :class:`SlidingWindowCounter`
implements the "number of IDs that joined within the last ``1/J̃``
seconds" query at the heart of Ergo's entrance cost (Figure 4, Step 1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Tuple

import numpy as np


class Counter:
    """A dictionary of named integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self._counts})"


class TimeSeries:
    """An append-only series of ``(time, value)`` samples.

    Backed by preallocated numpy buffers with amortized doubling growth:
    :meth:`record` is an O(1) scalar store (no per-sample list-object
    churn once event dispatch itself is cheap), and :attr:`times` /
    :attr:`values` are zero-copy array views over the filled prefix --
    analysis code gets vectorized access for free.  Treat the views as
    read-only; they alias the live buffers.
    """

    __slots__ = ("name", "_times", "_values", "_n")

    #: Initial buffer capacity (doubles as the series grows).
    INITIAL_CAPACITY = 32

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times = np.empty(self.INITIAL_CAPACITY, dtype=np.float64)
        self._values = np.empty(self.INITIAL_CAPACITY, dtype=np.float64)
        self._n = 0

    def record(self, time: float, value: float) -> None:
        n = self._n
        times = self._times
        if n:
            if time < times[n - 1]:
                raise ValueError(
                    f"time series {self.name!r} must be appended in time order"
                )
            if n == times.shape[0]:
                self._times = np.empty(2 * n, dtype=np.float64)
                self._times[:n] = times
                times = self._times
                values = np.empty(2 * n, dtype=np.float64)
                values[:n] = self._values
                self._values = values
        times[n] = time
        self._values[n] = value
        self._n = n + 1

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(
            zip(self._times[: self._n].tolist(), self._values[: self._n].tolist())
        )

    @property
    def times(self) -> np.ndarray:
        """Zero-copy float64 view of the sample times."""
        return self._times[: self._n]

    @property
    def values(self) -> np.ndarray:
        """Zero-copy float64 view of the sample values."""
        return self._values[: self._n]

    def max(self) -> float:
        if not self._n:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(self._values[: self._n].max())

    def min(self) -> float:
        if not self._n:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(self._values[: self._n].min())

    def last(self) -> float:
        if not self._n:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(self._values[self._n - 1])

    def last_time(self) -> Optional[float]:
        """Time of the most recent sample, or ``None`` when empty (O(1))."""
        if not self._n:
            return None
        return float(self._times[self._n - 1])

    def value_at(self, time: float) -> float:
        """The most recent sample at or before ``time`` (step function)."""
        idx = int(np.searchsorted(self._times[: self._n], time, side="right")) - 1
        if idx < 0:
            raise ValueError(f"no sample at or before t={time}")
        return float(self._values[idx])


class SpendMeter:
    """Accumulates resource-burning costs for one party.

    Costs are classified by *category* (``"entrance"``, ``"purge"``,
    ``"recurring"``, ...) so experiments can report the breakdown that
    Section 7.1's intuition talks about (entrance costs vs purge costs).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._total = 0.0
        self._by_category: Dict[str, float] = {}

    def charge(self, amount: float, category: str = "other") -> None:
        if amount < 0:
            raise ValueError(f"negative charge on {self.name!r}: {amount}")
        self._total += amount
        self._by_category[category] = self._by_category.get(category, 0.0) + amount

    @property
    def total(self) -> float:
        return self._total

    def by_category(self) -> Dict[str, float]:
        return dict(self._by_category)

    def rate(self, horizon: float) -> float:
        """Average spend per second over a horizon of ``horizon`` seconds."""
        if horizon <= 0:
            raise ValueError(f"non-positive horizon: {horizon}")
        return self._total / horizon

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpendMeter({self.name!r}, total={self._total:.2f})"


class SlidingWindowCounter:
    """Counts events inside a trailing time window of mutable width.

    Ergo's entrance cost is ``1 +`` the number of IDs that joined within
    the last ``1/J̃`` seconds *of the current iteration* (Figure 4).  The
    window width changes whenever GoodJEst updates ``J̃``, and the counter
    is cleared at iteration boundaries, so both operations are supported.

    Events are stored as ``(time, count)`` batches so adversarial join
    bursts of millions of IDs cost O(1) rather than O(burst size).
    """

    def __init__(self, width: float) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive: {width}")
        self._width = float(width)
        self._batches: Deque[List[float]] = deque()
        self._sum = 0
        #: events are never counted before this time (iteration start)
        self._floor = float("-inf")

    @property
    def width(self) -> float:
        return self._width

    def set_width(self, width: float) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive: {width}")
        self._width = float(width)

    def clear(self, now: float) -> None:
        """Forget all events and refuse to count anything before ``now``."""
        self._batches.clear()
        self._sum = 0
        self._floor = float(now)

    def record(self, now: float, count: int = 1) -> None:
        if now < self._floor:
            raise ValueError("cannot record an event before the window floor")
        if count < 0:
            raise ValueError(f"negative event count: {count}")
        if count == 0:
            return
        if self._batches and self._batches[-1][0] == now:
            self._batches[-1][1] += count
        else:
            self._batches.append([float(now), count])
        self._sum += count

    def count(self, now: float) -> int:
        """Number of recorded events in ``(now - width, now]``.

        Events at exactly ``now - width`` have aged out; events at
        exactly the floor time (recorded in the same instant as a
        ``clear``) still count.
        """
        cutoff = now - self._width
        while self._batches and (
            self._batches[0][0] <= cutoff or self._batches[0][0] < self._floor
        ):
            self._sum -= self._batches.popleft()[1]
        return self._sum


@dataclass
class MetricSet:
    """The standard bundle of metrics a simulation run produces."""

    good: SpendMeter = field(default_factory=lambda: SpendMeter("good"))
    adversary: SpendMeter = field(default_factory=lambda: SpendMeter("adversary"))
    counters: Counter = field(default_factory=Counter)
    bad_fraction: TimeSeries = field(
        default_factory=lambda: TimeSeries("bad_fraction")
    )
    system_size: TimeSeries = field(default_factory=lambda: TimeSeries("system_size"))
    estimate_ratio: TimeSeries = field(
        default_factory=lambda: TimeSeries("estimate_ratio")
    )

    def good_spend_rate(self, horizon: float) -> float:
        return self.good.rate(horizon)

    def adversary_spend_rate(self, horizon: float) -> float:
        return self.adversary.rate(horizon)
