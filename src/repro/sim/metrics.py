"""Counters, time series, and spend meters.

The paper's headline quantities are *rates*: the good spend rate ``A``
(total resource-burning cost of good IDs per second) and the adversary's
spend rate ``T``.  :class:`SpendMeter` accumulates raw costs and converts
them to rates over a given horizon.  :class:`SlidingWindowCounter`
implements the "number of IDs that joined within the last ``1/J̃``
seconds" query at the heart of Ergo's entrance cost (Figure 4, Step 1).
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Tuple


class Counter:
    """A dictionary of named integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self._counts})"


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time series {self.name!r} must be appended in time order"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> List[float]:
        return list(self._times)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def max(self) -> float:
        if not self._values:
            raise ValueError(f"time series {self.name!r} is empty")
        return max(self._values)

    def min(self) -> float:
        if not self._values:
            raise ValueError(f"time series {self.name!r} is empty")
        return min(self._values)

    def last(self) -> float:
        if not self._values:
            raise ValueError(f"time series {self.name!r} is empty")
        return self._values[-1]

    def last_time(self) -> Optional[float]:
        """Time of the most recent sample, or ``None`` when empty.

        O(1), unlike the :attr:`times` property (which copies the whole
        series and is meant for analysis code, not per-event checks).
        """
        if not self._times:
            return None
        return self._times[-1]

    def value_at(self, time: float) -> float:
        """The most recent sample at or before ``time`` (step function)."""
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            raise ValueError(f"no sample at or before t={time}")
        return self._values[idx]


class SpendMeter:
    """Accumulates resource-burning costs for one party.

    Costs are classified by *category* (``"entrance"``, ``"purge"``,
    ``"recurring"``, ...) so experiments can report the breakdown that
    Section 7.1's intuition talks about (entrance costs vs purge costs).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._total = 0.0
        self._by_category: Dict[str, float] = {}

    def charge(self, amount: float, category: str = "other") -> None:
        if amount < 0:
            raise ValueError(f"negative charge on {self.name!r}: {amount}")
        self._total += amount
        self._by_category[category] = self._by_category.get(category, 0.0) + amount

    @property
    def total(self) -> float:
        return self._total

    def by_category(self) -> Dict[str, float]:
        return dict(self._by_category)

    def rate(self, horizon: float) -> float:
        """Average spend per second over a horizon of ``horizon`` seconds."""
        if horizon <= 0:
            raise ValueError(f"non-positive horizon: {horizon}")
        return self._total / horizon

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpendMeter({self.name!r}, total={self._total:.2f})"


class SlidingWindowCounter:
    """Counts events inside a trailing time window of mutable width.

    Ergo's entrance cost is ``1 +`` the number of IDs that joined within
    the last ``1/J̃`` seconds *of the current iteration* (Figure 4).  The
    window width changes whenever GoodJEst updates ``J̃``, and the counter
    is cleared at iteration boundaries, so both operations are supported.

    Events are stored as ``(time, count)`` batches so adversarial join
    bursts of millions of IDs cost O(1) rather than O(burst size).
    """

    def __init__(self, width: float) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive: {width}")
        self._width = float(width)
        self._batches: Deque[List[float]] = deque()
        self._sum = 0
        #: events are never counted before this time (iteration start)
        self._floor = float("-inf")

    @property
    def width(self) -> float:
        return self._width

    def set_width(self, width: float) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive: {width}")
        self._width = float(width)

    def clear(self, now: float) -> None:
        """Forget all events and refuse to count anything before ``now``."""
        self._batches.clear()
        self._sum = 0
        self._floor = float(now)

    def record(self, now: float, count: int = 1) -> None:
        if now < self._floor:
            raise ValueError("cannot record an event before the window floor")
        if count < 0:
            raise ValueError(f"negative event count: {count}")
        if count == 0:
            return
        if self._batches and self._batches[-1][0] == now:
            self._batches[-1][1] += count
        else:
            self._batches.append([float(now), count])
        self._sum += count

    def count(self, now: float) -> int:
        """Number of recorded events in ``(now - width, now]``.

        Events at exactly ``now - width`` have aged out; events at
        exactly the floor time (recorded in the same instant as a
        ``clear``) still count.
        """
        cutoff = now - self._width
        while self._batches and (
            self._batches[0][0] <= cutoff or self._batches[0][0] < self._floor
        ):
            self._sum -= self._batches.popleft()[1]
        return self._sum


@dataclass
class MetricSet:
    """The standard bundle of metrics a simulation run produces."""

    good: SpendMeter = field(default_factory=lambda: SpendMeter("good"))
    adversary: SpendMeter = field(default_factory=lambda: SpendMeter("adversary"))
    counters: Counter = field(default_factory=Counter)
    bad_fraction: TimeSeries = field(
        default_factory=lambda: TimeSeries("bad_fraction")
    )
    system_size: TimeSeries = field(default_factory=lambda: TimeSeries("system_size"))
    estimate_ratio: TimeSeries = field(
        default_factory=lambda: TimeSeries("estimate_ratio")
    )

    def good_spend_rate(self, horizon: float) -> float:
        return self.good.rate(horizon)

    def adversary_spend_rate(self, horizon: float) -> float:
        return self.adversary.rate(horizon)
