"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro figure8 [--quick] [--jobs N]
    python -m repro figure9 [--quick] [--jobs N]
    python -m repro figure10 [--quick] [--jobs N]
    python -m repro lowerbound [--quick] [--jobs N]
    python -m repro committee [--quick]
    python -m repro ablations [--quick] [--jobs N]
    python -m repro sensitivity [--quick]
    python -m repro all --quick        # everything, scaled down

``--jobs N`` fans the sweep out over N worker processes (default: all
cores); results are deterministic and identical to a serial run.
Outputs land in ``results/`` (tables, ASCII plots, CSV series).
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.experiments import (
    ablations,
    committee_exp,
    figure8,
    figure9,
    figure10,
    lowerbound,
    sensitivity,
)

COMMANDS: Dict[str, Callable[[List[str]], object]] = {
    "figure8": figure8.main,
    "figure9": figure9.main,
    "figure10": figure10.main,
    "lowerbound": lowerbound.main,
    "committee": committee_exp.main,
    "ablations": ablations.main,
    "sensitivity": sensitivity.main,
}


def main(argv: List[str] = None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command = args[0]
    rest = args[1:]
    if command == "all":
        for name, runner in COMMANDS.items():
            print(f"\n##### {name} #####")
            runner(rest)
        return 0
    runner = COMMANDS.get(command)
    if runner is None:
        print(f"unknown command {command!r}; choose from "
              f"{', '.join(sorted(COMMANDS))} or 'all'")
        return 2
    runner(rest)
    return 0


if __name__ == "__main__":
    sys.exit(main())
