"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro figure8 [--quick] [--jobs N]
    python -m repro figure9 [--quick] [--jobs N]
    python -m repro figure10 [--quick] [--jobs N]
    python -m repro lowerbound [--quick] [--jobs N]
    python -m repro committee [--quick]
    python -m repro ablations [--quick] [--jobs N]
    python -m repro sensitivity [--quick]
    python -m repro scenarios list
    python -m repro scenarios run <name> [--quick] [--jobs N]
    python -m repro profile <scenario> [--defense NAME] [--quick]
    python -m repro serve [--port N] [--data-dir PATH]
    python -m repro lint [--json] [--explain RULE] [--list-rules] [paths...]
    python -m repro traces list
    python -m repro traces fetch <name> [--force]
    python -m repro traces stats <ref>
    python -m repro all --quick        # every figure, scaled down

``--jobs N`` fans the sweep out over N worker processes (default: all
cores); results are deterministic and identical to a serial run.  The
sweep commands (figures, lowerbound, ablations, ``scenarios run``) all
run on the fault-tolerant runtime and share its flags: ``--resume``
(skip points journaled by a previous killed/failed run),
``--max-retries N``, ``--point-timeout S``, ``--no-checkpoint`` and
``--fault-spec SPEC`` (deterministic fault injection; see
EXPERIMENTS.md, "Resilient execution").  ``serve`` boots the
long-running simulation service: HTTP job submission with admission
control, a durable WAL-mode sqlite job store, supervised workers, and
crash recovery on restart (EXPERIMENTS.md, "Simulation service").
Outputs land in ``results/`` (tables, ASCII plots, CSV series).
``scenarios`` drives the declarative workload catalog (flash crowds,
diurnal cycles, mass exoduses, flapping Sybils, trace replays) across
the whole defense suite; ``traces`` manages the churn-trace registry
(fetch with SHA-256 verification, synthetic consensus-flap generation,
streaming stats and conversion).  ``profile`` runs one scenario with
span-level cost attribution and prints a self-time table (flamegraph
export via ``--speedscope``; EXPERIMENTS.md, "Cost attribution");
``scenarios run --profile`` attributes a whole sweep.  ``lint``
statically checks the
repo's reproducibility contracts -- determinism boundaries, atomic
writes, serve-layer thread safety, defense hook pairing (EXPERIMENTS.md,
"Static invariants").  See each subcommand's ``--help``.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.experiments import (
    ablations,
    committee_exp,
    figure8,
    figure9,
    figure10,
    lowerbound,
    sensitivity,
)
from repro.devtools import cli as lint_cli
from repro.profiling import cli as profile_cli
from repro.scenarios import cli as scenarios_cli
from repro.serve import cli as serve_cli
from repro.traces import cli as traces_cli

#: The paper-figure commands (what ``all`` iterates).
FIGURE_COMMANDS: Dict[str, Callable[[List[str]], object]] = {
    "figure8": figure8.main,
    "figure9": figure9.main,
    "figure10": figure10.main,
    "lowerbound": lowerbound.main,
    "committee": committee_exp.main,
    "ablations": ablations.main,
    "sensitivity": sensitivity.main,
}

COMMANDS: Dict[str, Callable[[List[str]], object]] = {
    **FIGURE_COMMANDS,
    "lint": lint_cli.main,
    "profile": profile_cli.main,
    "scenarios": scenarios_cli.main,
    "serve": serve_cli.main,
    "traces": traces_cli.main,
}


def main(argv: List[str] = None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command = args[0]
    rest = args[1:]
    if command == "all":
        # ``all`` regenerates the paper's figures; the scenario catalog
        # has its own entry point (``scenarios run --all``).
        for name, runner in FIGURE_COMMANDS.items():
            print(f"\n##### {name} #####")
            runner(rest)
        return 0
    runner = COMMANDS.get(command)
    if runner is None:
        print(f"unknown command {command!r}; choose from "
              f"{', '.join(sorted(COMMANDS))} or 'all'")
        return 2
    result = runner(rest)
    # The figure mains return their rows; subcommand CLIs (scenarios)
    # return an exit status worth propagating.
    return result if isinstance(result, int) else 0


if __name__ == "__main__":
    sys.exit(main())
