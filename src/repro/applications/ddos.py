"""Application-layer DDoS mitigation via Ergo-style pricing (§13.2).

"Can a similar approach be used to mitigate distributed denial-of-
service attacks at the application layer?  Here, server resources can be
exhausted by bad clients whose spurious jobs cannot be a priori
distinguished from legitimate jobs.  It seems plausible that a
resource-burning approach similar to Ergo might offer a defense here
too."

This module transplants Ergo's *estimate-and-set* pattern from joins to
requests:

* a :class:`RequestRateEstimator` plays GoodJEst's role, estimating the
  legitimate request rate R̃ from the served-request history (windowed,
  updated when the observed volume doubles -- the symmetric-difference
  trick has no analogue for requests, so doubling epochs stand in);
* :class:`PricedJobQueue` charges each request ``1 + (requests admitted
  in the last 1/R̃ seconds)`` and serves up to ``capacity`` jobs per
  second.  A flooder pays quadratically per pricing window while a
  legitimate client pays O(flood-rate / R̃) -- the same asymmetry as
  Theorem 1's entrance costs.

The queue tracks goodput (legitimate jobs served per second), the
legitimate clients' RB cost, and the attacker's cost, so tests can
verify the transplanted asymmetry: doubling the attack rate roughly
doubles the attacker's spend but leaves goodput and the good cost
growing only ~√T.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sim.metrics import SlidingWindowCounter


class RequestRateEstimator:
    """Estimates the legitimate request rate from served history.

    Epochs end when the number of requests observed doubles relative to
    the count at the epoch start (the half-life analogue); the estimate
    is the epoch's count divided by its length.  Like GoodJEst, it
    needs no labels -- the pricing itself suppresses the flood's
    contribution, because priced-out attackers stop being observed.
    """

    def __init__(self, initial_rate: float = 1.0) -> None:
        if initial_rate <= 0:
            raise ValueError(f"initial rate must be positive: {initial_rate}")
        self._estimate = float(initial_rate)
        self._epoch_start: Optional[float] = None
        self._epoch_count = 0
        self._epoch_threshold = 16

    @property
    def estimate(self) -> float:
        return self._estimate

    def observe(self, now: float, served: int = 1) -> bool:
        """Record served requests; returns True when the estimate rolls."""
        if self._epoch_start is None:
            self._epoch_start = now
        self._epoch_count += served
        if self._epoch_count < self._epoch_threshold:
            return False
        elapsed = max(now - self._epoch_start, 1e-9)
        self._estimate = self._epoch_count / elapsed
        self._epoch_threshold = max(self._epoch_count, 16)
        self._epoch_start = now
        self._epoch_count = 0
        return True


@dataclass
class QueueStats:
    """Aggregated outcome of a pricing run."""

    served_good: int = 0
    served_bad: int = 0
    dropped_good: int = 0
    good_cost: float = 0.0
    attacker_cost: float = 0.0

    def goodput(self, horizon: float) -> float:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive: {horizon}")
        return self.served_good / horizon


class PricedJobQueue:
    """A capacity-limited job queue with Ergo-style admission pricing."""

    def __init__(
        self,
        capacity_per_second: float,
        initial_rate: float = 1.0,
        max_window_width: float = 1.0e6,
    ) -> None:
        if capacity_per_second <= 0:
            raise ValueError(f"capacity must be positive: {capacity_per_second}")
        self.capacity = float(capacity_per_second)
        self.estimator = RequestRateEstimator(initial_rate)
        self.max_window_width = float(max_window_width)
        self._window = SlidingWindowCounter(self._width())
        self._capacity_used_until = 0.0
        self.stats = QueueStats()

    def _width(self) -> float:
        return min(1.0 / self.estimator.estimate, self.max_window_width)

    # ------------------------------------------------------------------
    # pricing and admission
    # ------------------------------------------------------------------
    def quote(self, now: float) -> float:
        """Cost of the next request at time ``now``."""
        return 1.0 + self._window.count(now)

    def _admit(self, now: float) -> bool:
        """Capacity check: each job occupies 1/capacity seconds."""
        start = max(now, self._capacity_used_until)
        if start - now > 1.0:  # more than a second of backlog: drop
            return False
        self._capacity_used_until = start + 1.0 / self.capacity
        return True

    def submit_good(self, now: float) -> Tuple[bool, float]:
        """A legitimate client pays the quote and submits one job."""
        cost = self.quote(now)
        self.stats.good_cost += cost
        self._window.record(now)
        if self.estimator.observe(now):
            self._window.set_width(self._width())
        if self._admit(now):
            self.stats.served_good += 1
            return True, cost
        self.stats.dropped_good += 1
        return False, cost

    def submit_attack_burst(self, now: float, budget: float) -> Tuple[int, float]:
        """The attacker floods as many jobs as ``budget`` affords now.

        Each job pays the current quote, and every admitted job raises
        the quote for the next -- the quadratic bite.  Returns
        ``(jobs, cost)``.
        """
        jobs = 0
        cost_total = 0.0
        remaining = float(budget)
        while True:
            cost = self.quote(now)
            if cost > remaining:
                break
            remaining -= cost
            cost_total += cost
            jobs += 1
            self.stats.attacker_cost += cost
            self._window.record(now)
            if self.estimator.observe(now):
                self._window.set_width(self._width())
            if self._admit(now):
                self.stats.served_bad += 1
        return jobs, cost_total
