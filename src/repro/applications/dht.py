"""A Sybil-resistant distributed hash table on top of Ergo.

Section 13.2 asks: "Can we apply the results in this paper to build and
maintain a Sybil-resistant distributed hash table?"  This module is a
concrete answer for the reproduction:

* :class:`ChordRing` -- a Chord-style ring [21]: node IDs are hashes on
  a 2^m-point circle, each key is owned by its successor, routing uses
  finger tables in O(log n) hops.
* :class:`SybilResistantDHT` -- the composition: membership comes from a
  Defense (Ergo keeps the Sybil fraction below 1/6), and lookups are
  made robust by *redundant routing*: a lookup walks ``r`` independent
  routes and takes the majority answer.  Bad nodes lie about lookups;
  with per-route corruption probability bounded away from 1/2 (each hop
  is bad with probability < 1/6), the majority over routes is correct
  with high probability -- lifting DefID's set-level guarantee to an
  application-level one.

The DHT is deliberately simple (no replication maintenance, no
concurrent stabilization protocol) but the routing math is real: finger
tables, successor ownership, and hop-by-hop traversal with adversarial
nodes injected by the tests.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

#: Identifier-space bits (2^m points on the ring).
RING_BITS = 64
RING_SIZE = 2**RING_BITS


def ring_hash(value: str) -> int:
    """Position of a name/key on the identifier circle."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % RING_SIZE


def _distance(a: int, b: int) -> int:
    """Clockwise distance from a to b on the ring."""
    return (b - a) % RING_SIZE


@dataclass
class ChordNode:
    """One DHT participant."""

    ident: str
    position: int
    is_good: bool = True
    #: finger[i] points at the first node ≥ position + 2^i
    fingers: List[int] = field(default_factory=list)


class ChordRing:
    """A Chord identifier circle with finger-table routing."""

    def __init__(self) -> None:
        self._nodes: Dict[str, ChordNode] = {}
        self._positions: List[int] = []
        self._by_position: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def join(self, ident: str, is_good: bool = True) -> ChordNode:
        if ident in self._nodes:
            raise ValueError(f"duplicate DHT node {ident!r}")
        position = ring_hash(ident)
        while position in self._by_position:  # astronomically rare
            position = (position + 1) % RING_SIZE
        node = ChordNode(ident=ident, position=position, is_good=is_good)
        self._nodes[ident] = node
        bisect.insort(self._positions, position)
        self._by_position[position] = ident
        return node

    def leave(self, ident: str) -> None:
        node = self._nodes.pop(ident, None)
        if node is None:
            return
        index = bisect.bisect_left(self._positions, node.position)
        self._positions.pop(index)
        del self._by_position[node.position]

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, ident: str) -> ChordNode:
        return self._nodes[ident]

    def nodes(self) -> List[ChordNode]:
        return list(self._nodes.values())

    # ------------------------------------------------------------------
    # ring geometry
    # ------------------------------------------------------------------
    def successor(self, point: int) -> str:
        """The node owning ``point`` (first node at or after it)."""
        if not self._positions:
            raise LookupError("empty ring")
        index = bisect.bisect_left(self._positions, point)
        if index == len(self._positions):
            index = 0
        return self._by_position[self._positions[index]]

    def owner_of(self, key: str) -> str:
        return self.successor(ring_hash(key))

    def build_fingers(self) -> None:
        """(Re)build every node's finger table -- O(n·m·log n)."""
        for node in self._nodes.values():
            fingers = []
            for i in range(RING_BITS):
                target = (node.position + (1 << i)) % RING_SIZE
                fingers.append(self.successor(target))
            node.fingers = fingers

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, start: str, key: str, max_hops: int = 256) -> List[str]:
        """Greedy finger routing from ``start`` to the key's owner.

        Returns the hop path (including start and owner).  All nodes on
        the path follow the protocol here; adversarial behaviour is
        layered on by :class:`SybilResistantDHT`.
        """
        target_point = ring_hash(key)
        owner = self.successor(target_point)
        current = self._nodes[start]
        path = [start]
        for _hop in range(max_hops):
            if current.ident == owner:
                return path
            if _distance(current.position, target_point) == 0:
                return path
            nxt = self._closest_preceding(current, target_point)
            if nxt is None or nxt == current.ident:
                # Fall through to the successor (Chord's base case).
                nxt = self.successor((current.position + 1) % RING_SIZE)
            path.append(nxt)
            if nxt == owner:
                return path
            current = self._nodes[nxt]
        raise RuntimeError(f"routing did not converge within {max_hops} hops")

    def _closest_preceding(self, node: ChordNode, target: int) -> Optional[str]:
        """The node's best finger strictly between it and the target."""
        if not node.fingers:
            return None
        best = None
        best_gain = 0
        span = _distance(node.position, target)
        for finger in node.fingers:
            finger_node = self._nodes.get(finger)
            if finger_node is None:
                continue
            advance = _distance(node.position, finger_node.position)
            if 0 < advance < span and advance > best_gain:
                best = finger
                best_gain = advance
        return best


@dataclass
class LookupResult:
    """Outcome of a redundant lookup."""

    key: str
    value: Optional[str]
    correct_value: Optional[str]
    votes: Dict[Optional[str], int]
    routes: int

    @property
    def correct(self) -> bool:
        return self.value == self.correct_value


class SybilResistantDHT:
    """Chord + Ergo-bounded membership + swarm-vouched routing.

    A single bad hop on an O(log n) path would poison most routes, so --
    following the swarm approach of the robust-DHT literature the paper
    builds on ([23, 24, 30]) -- every hop is vouched by a *swarm*: the
    ``swarm_size`` ring-adjacent nodes around it.  A step (or the final
    answer) is corrupted only when a majority of the responsible swarm
    is Sybil.  Ergo keeps the global Sybil fraction below 1/6 and hash
    placement spreads Sybils uniformly, so a bad-majority swarm is
    exponentially unlikely in the swarm size (Chernoff), and redundant
    routes from random entry points vote down the residue.
    """

    POISON = "poisoned!"

    def __init__(self, redundancy: int = 3, swarm_size: int = 15) -> None:
        if redundancy < 1:
            raise ValueError(f"redundancy must be >= 1: {redundancy}")
        if swarm_size < 1:
            raise ValueError(f"swarm size must be >= 1: {swarm_size}")
        self.ring = ChordRing()
        self.redundancy = int(redundancy)
        self.swarm_size = int(swarm_size)
        self._store: Dict[str, str] = {}
        self._swarm_of: Dict[str, int] = {}
        self._swarm_bad_majority: List[bool] = []

    # ------------------------------------------------------------------
    # membership sync (driven by a Defense's population)
    # ------------------------------------------------------------------
    def sync_membership(
        self, good_ids: List[str], bad_ids: List[str], rebuild: bool = True
    ) -> None:
        """Reset the ring to the defense's current membership."""
        current: Set[str] = {n.ident for n in self.ring.nodes()}
        wanted = set(good_ids) | set(bad_ids)
        for ident in current - wanted:
            self.ring.leave(ident)
        for ident in good_ids:
            if ident not in current:
                self.ring.join(ident, is_good=True)
        for ident in bad_ids:
            if ident not in current:
                self.ring.join(ident, is_good=False)
        if rebuild:
            self.ring.build_fingers()
        self._assign_swarms()

    def _assign_swarms(self) -> None:
        """Group ring-adjacent nodes into swarms of ``swarm_size``."""
        ordered = sorted(self.ring.nodes(), key=lambda n: n.position)
        self._swarm_of = {}
        self._swarm_bad_majority = []
        for start in range(0, len(ordered), self.swarm_size):
            swarm = ordered[start : start + self.swarm_size]
            swarm_id = len(self._swarm_bad_majority)
            bad = sum(1 for n in swarm if not n.is_good)
            self._swarm_bad_majority.append(bad * 2 > len(swarm))
            for node in swarm:
                self._swarm_of[node.ident] = swarm_id

    def swarm_stats(self) -> Dict[str, float]:
        """Diagnostics: swarm count and bad-majority fraction."""
        total = len(self._swarm_bad_majority)
        if total == 0:
            return {"swarms": 0, "bad_majority_fraction": 0.0}
        bad = sum(self._swarm_bad_majority)
        return {"swarms": total, "bad_majority_fraction": bad / total}

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def put(self, key: str, value: str) -> str:
        """Store a key-value pair; returns the owning node."""
        owner = self.ring.owner_of(key)
        self._store[key] = value
        return owner

    def lookup(
        self, key: str, rng: np.random.Generator, redundancy: Optional[int] = None
    ) -> LookupResult:
        """Majority lookup over ``redundancy`` independent routes."""
        routes = redundancy if redundancy is not None else self.redundancy
        correct = self._store.get(key)
        good_nodes = [n.ident for n in self.ring.nodes() if n.is_good]
        if not good_nodes:
            raise LookupError("no good entry points")
        votes: Dict[Optional[str], int] = {}
        for _ in range(routes):
            start = good_nodes[int(rng.integers(0, len(good_nodes)))]
            answer = self._single_route_lookup(start, key, correct)
            votes[answer] = votes.get(answer, 0) + 1
        value = max(votes.items(), key=lambda kv: kv[1])[0]
        return LookupResult(
            key=key,
            value=value,
            correct_value=correct,
            votes=votes,
            routes=routes,
        )

    def _single_route_lookup(
        self, start: str, key: str, correct: Optional[str]
    ) -> Optional[str]:
        """One route's answer; a bad-majority hop swarm poisons it."""
        path = self.ring.route(start, key)
        for hop in path[1:]:  # the (good) start node doesn't lie to itself
            swarm_id = self._swarm_of.get(hop)
            if swarm_id is not None and self._swarm_bad_majority[swarm_id]:
                return self.POISON
        return correct

    def poisoning_rate(self, keys: List[str], rng: np.random.Generator) -> float:
        """Fraction of single-route lookups poisoned (diagnostics)."""
        if not keys:
            raise ValueError("need at least one key")
        poisoned = 0
        good_nodes = [n.ident for n in self.ring.nodes() if n.is_good]
        for key in keys:
            start = good_nodes[int(rng.integers(0, len(good_nodes)))]
            if self._single_route_lookup(start, key, "v") == self.POISON:
                poisoned += 1
        return poisoned / len(keys)
