"""Applications built on top of Ergo (the paper's future-work directions).

* :mod:`repro.applications.dht` -- a Sybil-resistant Chord-style
  distributed hash table (Section 13.2): Ergo bounds the Sybil fraction
  below 1/6, and swarm-vouched routing turns that bound into
  whp-correct lookups.
* :mod:`repro.applications.incentives` -- the Section 13.1 sketch made
  executable: a reward lottery over purge challenges plus automatic
  difficulty retuning against hardware drift.
* :mod:`repro.applications.ddos` -- application-layer DDoS mitigation
  (Section 13.2's third direction): Ergo's estimate-and-price loop
  transplanted from joins to server requests.
"""

from repro.applications.ddos import PricedJobQueue, RequestRateEstimator
from repro.applications.dht import ChordRing, LookupResult, SybilResistantDHT
from repro.applications.incentives import DifficultyController, PuzzleLottery

__all__ = [
    "ChordRing",
    "DifficultyController",
    "LookupResult",
    "PricedJobQueue",
    "PuzzleLottery",
    "RequestRateEstimator",
    "SybilResistantDHT",
]
