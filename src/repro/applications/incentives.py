"""Incentives for solving purge challenges (Section 13.1, made executable).

The paper sketches: "during the purge, competition for a reward could be
used to ensure that IDs actually commit sufficient resources to remain
in the system.  If challenges are proof-of-work based, the ID that finds
the smallest solution during this period could receive units of
cryptocurrency ... the difficulty of a 1-hard puzzle could be tuned,
based on measured computational effort, to automatically adjust to new,
faster hardware."

Two components:

* :class:`PuzzleLottery` -- each participant's best PoW draw over a
  purge round; the smallest digest wins the reward.  Every participant
  has the same per-round chance (the draw is uniform), so expected
  reward is proportional to participation -- the positive incentive.
* :class:`DifficultyController` -- a multiplicative controller steering
  measured solve times toward one round, absorbing hardware speedups
  (the "new, faster hardware" adjustment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class LotteryOutcome:
    """One purge round's lottery result."""

    winner: str
    winning_draw: float
    participants: int
    reward: float


class PuzzleLottery:
    """Smallest-solution-wins competition over purge challenges.

    Draws model the (uniform) distribution of best hash values found
    within the round; the participant with the minimum draw wins.  The
    lottery tracks cumulative rewards so tests can verify fairness: each
    honest participant's expected reward per round is ``reward/n``.
    """

    def __init__(self, reward: float = 1.0) -> None:
        if reward <= 0:
            raise ValueError(f"reward must be positive: {reward}")
        self.reward = float(reward)
        self._winnings: Dict[str, float] = {}
        self._rounds = 0

    def run_round(
        self, participants: List[str], rng: np.random.Generator
    ) -> LotteryOutcome:
        if not participants:
            raise ValueError("lottery needs at least one participant")
        draws = rng.random(len(participants))
        index = int(np.argmin(draws))
        winner = participants[index]
        self._winnings[winner] = self._winnings.get(winner, 0.0) + self.reward
        self._rounds += 1
        return LotteryOutcome(
            winner=winner,
            winning_draw=float(draws[index]),
            participants=len(participants),
            reward=self.reward,
        )

    def winnings(self, ident: str) -> float:
        return self._winnings.get(ident, 0.0)

    @property
    def rounds(self) -> int:
        return self._rounds

    def expected_reward_per_round(self, population: int) -> float:
        """An individual's fair expected reward with ``population`` peers."""
        if population < 1:
            raise ValueError("population must be >= 1")
        return self.reward / population

    def net_utility_per_round(self, population: int, solve_cost: float = 1.0) -> float:
        """Expected reward minus the 1-hard solve cost.

        A deployment picks ``reward >= population * solve_cost`` to make
        participation rational (cf. block rewards in [17]).
        """
        return self.expected_reward_per_round(population) - solve_cost


class DifficultyController:
    """Retunes puzzle difficulty so a "1-hard" puzzle costs one round.

    The model: solving a puzzle of difficulty ``d`` on hardware with
    speed ``s`` takes ``d / s`` seconds.  The controller observes solve
    times and multiplicatively adjusts difficulty toward the one-round
    target, clamped per step to avoid oscillation -- the same shape as
    Bitcoin's retargeting, at round granularity.
    """

    def __init__(
        self,
        target_solve_time: float = 1.0,
        initial_difficulty: float = 1.0,
        max_step: float = 2.0,
        smoothing: int = 8,
    ) -> None:
        if target_solve_time <= 0 or initial_difficulty <= 0:
            raise ValueError("target time and difficulty must be positive")
        if max_step <= 1.0:
            raise ValueError(f"max_step must exceed 1: {max_step}")
        if smoothing < 1:
            raise ValueError(f"smoothing must be >= 1: {smoothing}")
        self.target = float(target_solve_time)
        self.difficulty = float(initial_difficulty)
        self.max_step = float(max_step)
        self.smoothing = int(smoothing)
        self._observations: List[float] = []
        self.adjustments = 0

    def observe_solve_time(self, seconds: float) -> Optional[float]:
        """Record a measured solve time; retune after ``smoothing`` obs.

        Returns the new difficulty when an adjustment happens.
        """
        if seconds <= 0:
            raise ValueError(f"solve time must be positive: {seconds}")
        self._observations.append(float(seconds))
        if len(self._observations) < self.smoothing:
            return None
        mean_time = sum(self._observations) / len(self._observations)
        self._observations.clear()
        ratio = self.target / mean_time
        ratio = min(max(ratio, 1.0 / self.max_step), self.max_step)
        self.difficulty *= ratio
        self.adjustments += 1
        return self.difficulty

    def solve_time_on(self, hardware_speed: float) -> float:
        """Seconds the current difficulty takes on given hardware."""
        if hardware_speed <= 0:
            raise ValueError(f"hardware speed must be positive: {hardware_speed}")
        return self.difficulty / hardware_speed

    def converged(self, hardware_speed: float, tolerance: float = 0.1) -> bool:
        """Is the solve time within ``tolerance`` of one round?"""
        return abs(self.solve_time_on(hardware_speed) - self.target) <= (
            tolerance * self.target
        )
