"""Low-level trace file I/O shared by the readers, writers, and tools.

Traces are ``time,kind,ident,session`` CSV files (the
:func:`repro.churn.traces.save_trace_csv` format), optionally
gzip-compressed.  Compression is selected purely by filename suffix
(``.gz``), so every consumer -- the streaming reader, the CSV writers,
the fetch tool -- agrees on the rule without sniffing bytes.
"""

from __future__ import annotations

import gzip
import hashlib
from pathlib import Path
from typing import IO, Union

#: The canonical trace CSV header, in column order.
TRACE_CSV_HEADER = ["time", "kind", "ident", "session"]

#: Bytes per read when hashing / downloading (bounded-memory streaming).
CHUNK_BYTES = 1 << 20


def is_gzip_path(path: Union[str, Path]) -> bool:
    return str(path).endswith(".gz")


def open_trace_text(path: Union[str, Path], mode: str = "rt") -> IO[str]:
    """Open a trace file for text I/O, transparently (de)compressing.

    ``mode`` is a text mode (``"rt"`` / ``"wt"``); ``newline=""`` is
    always passed, as the :mod:`csv` module requires.
    """
    if "b" in mode:
        raise ValueError(f"open_trace_text is text-only, got mode {mode!r}")
    if is_gzip_path(path):
        return gzip.open(path, mode, newline="")
    return open(path, mode, newline="")


def file_sha256(path: Union[str, Path]) -> str:
    """Hex SHA-256 of a file's raw bytes (compressed bytes for ``.gz``)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(CHUNK_BYTES)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()
