"""Trace sources: a named registry, an on-disk cache, and a fetch tool.

A :class:`TraceSource` names one trace and says where its bytes come
from -- exactly one of:

* ``packaged``  -- a fixture shipped inside the repository
  (``src/repro/scenarios/data/``); always available, never copied;
* ``url``       -- a fetchable location (``https://``, or ``file://``
  for offline fixtures and tests), downloaded once into the trace
  cache and verified against a pinned SHA-256;
* ``synthetic`` -- a :class:`~repro.traces.synthetic.SyntheticFlapSpec`
  generated deterministically into the cache on first use, so CI-scale
  and stress-scale traces exist without any network at all.

The cache lives under :func:`trace_cache_dir` (``$REPRO_TRACE_DIR``,
defaulting to ``results/traces/`` in the repository).  Writes are
atomic (temp file + ``os.replace``), so concurrent sweep workers that
race to materialize the same synthetic trace cannot observe a torn
file -- they all produce identical bytes and the last rename wins.

:func:`resolve_trace` is the one lookup everything else uses: registry
names first, then packaged fixtures, then plain filesystem paths, then
the cache.  URL-backed sources are *never* fetched implicitly -- an
uncached one resolves to an error naming the ``repro traces fetch``
command, keeping simulation runs deterministic and offline by default.
"""

from __future__ import annotations

import hashlib
import os
import socket
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.resilience import BackoffPolicy, retry_call
from repro.traces.io import CHUNK_BYTES, file_sha256
from repro.traces.synthetic import SyntheticFlapSpec, write_flap_csv

#: Packaged trace fixtures (shared with ``scenarios.compile.DATA_DIR``).
PACKAGED_DATA_DIR = Path(__file__).resolve().parents[1] / "scenarios" / "data"

#: SHA-256 of the packaged Tor relay-flap fixture (verified on fetch).
TOR_RELAY_FLAP_SHA256 = (
    "0d4ec5207c4b1d3ce57f27e2270d808fdb4b9d79b396798450a1d287a3e16ca3"
)


def trace_cache_dir() -> Path:
    """The on-disk trace cache: ``$REPRO_TRACE_DIR`` or ``results/traces``."""
    env = os.environ.get("REPRO_TRACE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / "traces"


@dataclass(frozen=True)
class TraceSource:
    """One named trace and where its bytes come from."""

    name: str
    description: str = ""
    packaged: Optional[str] = None
    url: Optional[str] = None
    synthetic: Optional[SyntheticFlapSpec] = None
    #: pinned hex SHA-256 of the file's raw bytes (required for ``url``
    #: sources in spirit; optional for packaged/synthetic ones).
    sha256: Optional[str] = None
    #: cache filename override (defaults derive from the name).
    filename: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("trace source name must be non-empty")
        backings = [
            b for b in (self.packaged, self.url, self.synthetic) if b is not None
        ]
        if len(backings) != 1:
            raise ValueError(
                f"trace source {self.name!r} must have exactly one of "
                "packaged / url / synthetic"
            )

    @property
    def kind(self) -> str:
        if self.packaged is not None:
            return "packaged"
        if self.url is not None:
            return "url"
        return "synthetic"

    @property
    def events_hint(self) -> Optional[int]:
        """Approximate row count, when cheaply known."""
        if self.synthetic is not None:
            return self.synthetic.expected_events
        return None

    def cache_filename(self) -> str:
        if self.filename:
            return self.filename
        if self.synthetic is not None:
            # Key the cache entry to the spec's contents (frozen
            # dataclass repr is deterministic), so editing a synthetic
            # spec misses the old cache instead of silently replaying
            # stale bytes.
            digest = hashlib.sha256(
                repr(self.synthetic).encode()
            ).hexdigest()[:12]
            return f"{self.name}-{digest}.csv.gz"
        if self.url is not None:
            tail = self.url.rsplit("/", 1)[-1]
            suffix = ".csv.gz" if tail.endswith(".gz") else ".csv"
            return f"{self.name}{suffix}"
        return self.packaged  # packaged sources are never cached

    def cached_path(self) -> Path:
        if self.packaged is not None:
            return PACKAGED_DATA_DIR / self.packaged
        return trace_cache_dir() / self.cache_filename()

    def is_available(self) -> bool:
        """Resolvable right now, without fetching anything?"""
        if self.synthetic is not None:
            return True  # generated on demand, offline
        return self.cached_path().exists()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, TraceSource] = {}


def register_trace(source: TraceSource, replace: bool = False) -> TraceSource:
    """Add a source to the registry (names are unique unless ``replace``)."""
    if not replace and source.name in _REGISTRY:
        raise ValueError(f"trace source {source.name!r} is already registered")
    _REGISTRY[source.name] = source
    return source


def get_trace_source(name: str) -> TraceSource:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown trace source {name!r}; choose from: {known}"
        ) from None


def trace_source_names() -> List[str]:
    """Registered names, in registration (presentation) order."""
    return list(_REGISTRY)


# ----------------------------------------------------------------------
# fetch
# ----------------------------------------------------------------------
#: (path, expected sha) -> (mtime_ns, size) of the file when it last
#: verified.  Every scenario-point compile resolves its trace ref, so
#: without this memo a sweep would rehash the whole (possibly multi-GB)
#: file once per point; a matching stat means the bytes are the ones
#: already verified in this process.
_VERIFIED: Dict[Tuple[str, str], Tuple[int, int]] = {}


def _verify_sha256(path: Path, expected: Optional[str], label: str) -> None:
    if expected is None:
        return
    key = (str(path), expected.lower())
    stat = path.stat()
    if _VERIFIED.get(key) == (stat.st_mtime_ns, stat.st_size):
        return
    actual = file_sha256(path)
    if actual != expected.lower():
        raise ValueError(
            f"{label}: SHA-256 mismatch: expected {expected}, got {actual}"
        )
    _VERIFIED[key] = (stat.st_mtime_ns, stat.st_size)


def _atomic_tmp(target: Path) -> Path:
    # The temp name keeps the target's full name as its suffix so
    # compression-by-suffix writers treat both paths identically.
    target.parent.mkdir(parents=True, exist_ok=True)
    return target.with_name(f".tmp{os.getpid()}.{target.name}")


#: Socket timeout for downloads; turns a stalled host into a clean,
#: retryable error instead of a forever-hung fetch.
DOWNLOAD_TIMEOUT_S = 60.0

#: Attempts per download (1 initial + 2 retries) and the capped
#: exponential backoff between them.
DOWNLOAD_ATTEMPTS = 3
DOWNLOAD_BACKOFF = BackoffPolicy(base_delay=1.0, factor=2.0, max_delay=30.0)


def _transient_download_error(exc: BaseException) -> bool:
    """Worth retrying?  Transport faults and server-side errors are;
    definitive client errors (404, 403, ...) are not."""
    if isinstance(exc, urllib.error.HTTPError):
        return exc.code >= 500 or exc.code == 429
    return isinstance(exc, (urllib.error.URLError, socket.timeout, OSError))


def _download_once(url: str, target: Path) -> None:
    """Stream ``url`` to ``target`` atomically (bounded memory)."""
    tmp = _atomic_tmp(target)
    try:
        with urllib.request.urlopen(
            url, timeout=DOWNLOAD_TIMEOUT_S
        ) as response, open(tmp, "wb") as out:
            while True:
                chunk = response.read(CHUNK_BYTES)
                if not chunk:
                    break
                out.write(chunk)
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            tmp.unlink()


def _download(url: str, target: Path) -> None:
    """:func:`_download_once` with bounded retries on transient faults.

    Each attempt is independently atomic (its temp file is cleaned up
    on failure), so a retry always starts from a clean slate.  Backoff
    delays are deterministic per URL (SHA-256-derived jitter).
    """
    retry_call(
        lambda: _download_once(url, target),
        max_retries=DOWNLOAD_ATTEMPTS - 1,
        policy=DOWNLOAD_BACKOFF,
        should_retry=_transient_download_error,
        key=url,
    )


def _generate_synthetic(spec: SyntheticFlapSpec, target: Path) -> None:
    tmp = _atomic_tmp(target)
    try:
        write_flap_csv(tmp, spec)
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            tmp.unlink()


def _fetch_hint(name: str) -> str:
    return f"run `python -m repro traces fetch {name}` to (re)download it"


def fetch_trace(
    source: Union[str, TraceSource],
    force: bool = False,
    allow_network: bool = True,
) -> Path:
    """Materialize a source locally and return its verified path.

    Packaged fixtures are verified in place; URL sources are downloaded
    into the cache (once -- ``force`` re-downloads); synthetic sources
    are generated into the cache deterministically.  A cached file that
    fails its SHA-256 check is discarded and re-materialized; a fresh
    download/generation that fails is removed and raises -- either way
    no corrupt file survives, so a retry starts clean.  Successful
    verifications are memoized per process against the file's stat, so
    resolving the same trace once per sweep point does not rehash it.

    ``allow_network=False`` (what :func:`resolve_trace` passes) keeps
    the call offline: synthetic regeneration is still fine, but a URL
    source that would need downloading raises with the explicit fetch
    command instead -- simulation runs never touch the network
    implicitly, even to replace a corrupt cache entry.
    """
    if isinstance(source, str):
        source = get_trace_source(source)
    path = source.cached_path()
    if source.packaged is not None:
        if not path.exists():
            raise FileNotFoundError(
                f"packaged trace {source.name!r} missing at {path}"
            )
        _verify_sha256(path, source.sha256, source.name)
        return path
    if path.exists() and not force:
        try:
            _verify_sha256(path, source.sha256, source.name)
            return path
        except ValueError:
            # Corrupt cache entry (torn write from an old run, manual
            # edit, updated pin): discard and re-materialize below.
            # missing_ok: a concurrent worker may have discarded it too.
            path.unlink(missing_ok=True)
    if source.synthetic is not None:
        _generate_synthetic(source.synthetic, path)
    else:
        if not allow_network:
            raise FileNotFoundError(
                f"trace {source.name!r} has no verified cached copy; "
                + _fetch_hint(source.name)
            )
        _download(source.url, path)
    try:
        _verify_sha256(path, source.sha256, source.name)
    except ValueError:
        path.unlink(missing_ok=True)
        raise
    return path


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
def resolve_trace(ref: Union[str, Path]) -> Path:
    """Resolve a trace ref -- registry name, fixture name, or path.

    Lookup order: (1) a registered source name (synthetic sources are
    generated on demand; uncached URL sources raise with the fetch
    command to run); (2) an absolute path; (3) a path relative to the
    packaged data directory; (4) the working directory; (5) the trace
    cache.
    """
    ref_str = str(ref)
    if ref_str in _REGISTRY:
        # allow_network=False keeps resolution offline: a URL source
        # without a verified cached copy raises with the fetch command.
        return fetch_trace(_REGISTRY[ref_str], allow_network=False)
    path = Path(ref)
    if path.is_absolute():
        if path.exists():
            return path
        raise FileNotFoundError(f"trace file not found: {path}")
    tried = []
    for candidate in (
        PACKAGED_DATA_DIR / path,
        Path.cwd() / path,
        trace_cache_dir() / path,
    ):
        if candidate.exists():
            return candidate
        tried.append(str(candidate))
    known = ", ".join(sorted(_REGISTRY)) or "(none)"
    raise FileNotFoundError(
        f"cannot resolve trace ref {ref_str!r}: not a registered source "
        f"(known: {known}) and no file at any of: {'; '.join(tried)}"
    )


# ----------------------------------------------------------------------
# built-in sources
# ----------------------------------------------------------------------
register_trace(
    TraceSource(
        name="tor-relay-flap",
        description=(
            "Packaged 183-event relay up/down fixture (18 flapping "
            "relays, a burst join and a synchronized exodus) in the "
            "shape of Winter et al.'s consensus flap data."
        ),
        packaged="tor_relay_flap.csv",
        sha256=TOR_RELAY_FLAP_SHA256,
    )
)

register_trace(
    TraceSource(
        name="synthetic-flap-ci",
        description=(
            "Small deterministic consensus-flap trace (~1.3k events, "
            "200 relays, one diurnal cycle) for CI and smoke runs."
        ),
        synthetic=SyntheticFlapSpec(
            relays=200,
            duration=600.0,
            seed=421,
            mean_uptime=120.0,
            uptime_shape=0.55,
            mean_downtime=60.0,
            diurnal_amplitude=0.6,
            diurnal_period=600.0,
        ),
    )
)

register_trace(
    TraceSource(
        name="synthetic-flap-xl",
        description=(
            "Stress-scale consensus-flap trace (~10^6 events, 5000 "
            "relays) backing the trace-replay benchmark."
        ),
        synthetic=SyntheticFlapSpec(
            relays=5000,
            duration=7_800.0,
            seed=97,
            mean_uptime=48.0,
            uptime_shape=0.55,
            mean_downtime=24.0,
            diurnal_amplitude=0.6,
            diurnal_period=3_900.0,
        ),
    )
)
