"""Streaming trace reader: CSV rows in, :class:`ChurnBlock` batches out.

The eager path (:func:`repro.churn.traces.load_trace_csv` followed by
:func:`repro.sim.blocks.blocks_from_events`) materializes one frozen
``Event`` object per row before packing -- a multi-month consensus flap
trace with millions of rows would allocate gigabytes just to throw the
objects away again.  :func:`stream_trace_blocks` instead parses the file
in bounded chunks and assembles struct-of-arrays blocks directly, so
peak memory is ``O(block_size)`` regardless of trace length and the
engine's zero-heap fast path consumes the stream as it is read.

The reader is **bit-compatible** with the eager path: given the same
file, ``origin``, ``start``, ``time_scale`` and ``duration``, it yields
blocks whose row values *and* chunk boundaries are identical to packing
the eager path's shifted events with the default block size -- which is
what lets the scenario compiler swap one in for the other and produce
byte-identical metrics (see ``tests/test_traces_streaming.py``).

Streaming contract:

* input rows must be time-sorted (the reader raises, naming the line,
  on the first regression -- it cannot sort without materializing);
* only blocks come out, never per-event objects;
* each output block's ``sessions`` / ``idents`` are present only when
  some row in that block carries one, matching
  :meth:`repro.sim.blocks.ChurnBlock.from_events`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.sim.blocks import DEPART, JOIN, ChurnBlock
from repro.traces.io import TRACE_CSV_HEADER, open_trace_text

#: Rows per emitted block; matches the generators' and the eager
#: packer's default so block boundaries line up across paths.
DEFAULT_BLOCK_SIZE = 4096

_NAN = float("nan")


def _check_header(header: Optional[List[str]], path) -> None:
    if header is None:
        raise ValueError(f"{path}: empty trace file (missing CSV header)")
    if [h.strip() for h in header] != TRACE_CSV_HEADER:
        raise ValueError(
            f"{path}: unexpected trace header {header!r}; "
            f"expected {TRACE_CSV_HEADER}"
        )


def stream_trace_blocks(
    path: Union[str, Path],
    block_size: int = DEFAULT_BLOCK_SIZE,
    start: float = 0.0,
    time_scale: float = 1.0,
    duration: Optional[float] = None,
    origin: Optional[float] = None,
) -> Iterator[ChurnBlock]:
    """Stream a (possibly gzipped) trace CSV as churn blocks.

    Row times are re-based: with ``origin`` defaulting to the first
    row's time, a row at ``t`` lands at ``start + (t - origin) *
    time_scale``, and rows whose scaled offset exceeds ``duration`` end
    the stream (the file's tail is never read).  Sessions are *not*
    scaled -- they are durations in the replayed timeline, exactly as
    the eager compiler treats them.
    """
    if block_size <= 0:
        raise ValueError(f"block size must be positive: {block_size}")
    if time_scale <= 0:
        raise ValueError(f"time_scale must be positive: {time_scale}")
    with open_trace_text(path) as handle:
        reader = csv.reader(handle)
        _check_header(next(reader, None), path)
        times: List[float] = []
        kinds: List[int] = []
        sessions: List[float] = []
        idents: List[Optional[str]] = []
        any_session = False
        any_ident = False
        prev = float("-inf")
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) < 4:
                raise ValueError(
                    f"{path}: line {lineno}: expected 4 cells "
                    f"(time,kind,ident,session), got {len(row)}"
                )
            t = float(row[0])
            if t < prev:
                raise ValueError(
                    f"{path}: line {lineno}: time {t} precedes {prev}; "
                    "streaming replay requires a time-sorted trace.  "
                    "Sort it once eagerly (load_trace_csv + "
                    "save_trace_csv) or replay with "
                    "TraceReplay(streaming=False)"
                )
            prev = t
            if origin is None:
                origin = t
            offset = (t - origin) * time_scale
            if duration is not None and offset > duration:
                break
            kind = row[1]
            if kind == "join":
                kinds.append(JOIN)
                cell = row[3]
                if cell:
                    sessions.append(float(cell))
                    any_session = True
                else:
                    sessions.append(_NAN)
            elif kind == "depart":
                kinds.append(DEPART)
                sessions.append(_NAN)
            else:
                raise ValueError(
                    f"{path}: line {lineno}: unknown event kind {kind!r}"
                )
            times.append(start + offset)
            ident = row[2] or None
            idents.append(ident)
            if ident is not None:
                any_ident = True
            if len(times) >= block_size:
                yield ChurnBlock(
                    times,
                    kinds,
                    sessions=np.asarray(sessions) if any_session else None,
                    idents=idents if any_ident else None,
                )
                times, kinds, sessions, idents = [], [], [], []
                any_session = False
                any_ident = False
        if times:
            yield ChurnBlock(
                times,
                kinds,
                sessions=np.asarray(sessions) if any_session else None,
                idents=idents if any_ident else None,
            )


def peek_trace_origin(path: Union[str, Path]) -> Optional[float]:
    """The first data row's time, or ``None`` for a header-only file.

    Also validates the header, so a bad file fails at resolution time
    (compile) rather than mid-simulation.
    """
    with open_trace_text(path) as handle:
        reader = csv.reader(handle)
        _check_header(next(reader, None), path)
        for row in reader:
            if row:
                return float(row[0])
    return None


class TraceBlockStream:
    """A re-iterable, bounded-memory block view of one trace file.

    This is what the scenario compiler stores for a streaming
    :class:`~repro.scenarios.spec.TraceReplay` phase: each iteration
    re-opens the file and yields fresh blocks, so the workload summary
    and the engine can both walk the trace without either one
    materializing it.  ``origin`` is fixed at construction (the first
    row's time), making every pass identical.
    """

    __slots__ = ("path", "start", "time_scale", "duration", "block_size", "origin")

    def __init__(
        self,
        path: Union[str, Path],
        start: float = 0.0,
        time_scale: float = 1.0,
        duration: Optional[float] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self.path = Path(path)
        self.start = start
        self.time_scale = time_scale
        self.duration = duration
        self.block_size = block_size
        self.origin = peek_trace_origin(self.path)

    @property
    def empty(self) -> bool:
        return self.origin is None

    @property
    def t_begin(self) -> float:
        """Earliest possible replayed event time (the origin row)."""
        return self.start

    @property
    def t_end_bound(self) -> float:
        """Upper bound on the last replayed event time."""
        if self.duration is None:
            return float("inf")
        return self.start + self.duration

    def __iter__(self) -> Iterator[ChurnBlock]:
        if self.origin is None:
            return iter(())
        return stream_trace_blocks(
            self.path,
            block_size=self.block_size,
            start=self.start,
            time_scale=self.time_scale,
            duration=self.duration,
            origin=self.origin,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceBlockStream({self.path.name}, start={self.start}, "
            f"scale={self.time_scale}, duration={self.duration})"
        )
