"""Streaming trace ingestion & Tor-scale replay.

The paper's guarantees are "despite churn", so the reproduction should
be drivable by *real* churn: relay consensus flap traces (Winter et
al.) run to millions of events, far past what the eager
load-sort-materialize path can hold.  This package makes traces a
first-class, scalable input:

* :mod:`~repro.traces.source`  -- a named :class:`TraceSource` registry
  (packaged fixtures, fetchable URLs, deterministic synthetic specs),
  an on-disk cache (``$REPRO_TRACE_DIR``), and a SHA-256-verifying
  fetch tool that works fully offline;
* :mod:`~repro.traces.reader`  -- a streaming CSV reader (gzip-aware)
  that emits :class:`~repro.sim.blocks.ChurnBlock` batches directly in
  bounded memory, bit-compatible with the eager path;
* :mod:`~repro.traces.synthetic` -- a consensus-flap generator
  (heavy-tailed uptimes, diurnal flap rate) for CI- and stress-scale
  traces without any network;
* :mod:`~repro.traces.cli`     -- ``python -m repro traces
  fetch|list|stats|convert``.

Scenario specs plug in through
:class:`~repro.scenarios.spec.TraceReplay`: a phase's ``path`` is a
trace ref resolved through :func:`resolve_trace`, and streaming phases
hand the engine a lazy block stream the zero-heap fast path consumes as
it is parsed.
"""

from repro.traces.io import TRACE_CSV_HEADER, file_sha256, open_trace_text
from repro.traces.reader import (
    DEFAULT_BLOCK_SIZE,
    TraceBlockStream,
    peek_trace_origin,
    stream_trace_blocks,
)
from repro.traces.source import (
    PACKAGED_DATA_DIR,
    TraceSource,
    fetch_trace,
    get_trace_source,
    register_trace,
    resolve_trace,
    trace_cache_dir,
    trace_source_names,
)
from repro.traces.synthetic import (
    SyntheticFlapSpec,
    synthetic_flap_blocks,
    synthetic_flap_rows,
    write_flap_csv,
)

__all__ = [
    "TRACE_CSV_HEADER",
    "file_sha256",
    "open_trace_text",
    "DEFAULT_BLOCK_SIZE",
    "TraceBlockStream",
    "peek_trace_origin",
    "stream_trace_blocks",
    "PACKAGED_DATA_DIR",
    "TraceSource",
    "fetch_trace",
    "get_trace_source",
    "register_trace",
    "resolve_trace",
    "trace_cache_dir",
    "trace_source_names",
    "SyntheticFlapSpec",
    "synthetic_flap_blocks",
    "synthetic_flap_rows",
    "write_flap_csv",
]
