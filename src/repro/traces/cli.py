"""``python -m repro traces`` -- the trace subsystem CLI.

Usage::

    python -m repro traces list
    python -m repro traces fetch <name> [<name> ...] [--force]
    python -m repro traces stats <ref> [--time-scale X] [--duration D]
    python -m repro traces convert <src> <dst> [--time-scale X]
                                   [--duration D] [--block-size N]

Commands:
    list     registered trace sources (kind, ~events, cached state)
    fetch    materialize sources into the trace cache: downloads URL
             sources (SHA-256 verified), generates synthetic ones
             deterministically -- both idempotent; ``--force`` refreshes
    stats    stream a trace (registry name, fixture, or path; ``.gz``
             ok) and print joins/departures/rates -- bounded memory,
             works on traces of any length
    convert  re-write a trace through the streaming reader: compress or
             decompress (by destination suffix), rebase/rescale times,
             clip at a duration -- never materializes the trace

Refs resolve through the registry first, then the packaged fixtures,
the working directory, and the trace cache (``$REPRO_TRACE_DIR``,
default ``results/traces/``).
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.analysis.plotting import format_table
from repro.churn.traces import save_trace_csv, trace_stats
from repro.cliutil import pop_option as _pop_option
from repro.traces.reader import DEFAULT_BLOCK_SIZE, stream_trace_blocks
from repro.traces.source import (
    fetch_trace,
    get_trace_source,
    resolve_trace,
    trace_cache_dir,
    trace_source_names,
)


def _list_sources() -> str:
    rows = []
    for name in trace_source_names():
        source = get_trace_source(name)
        hint = source.events_hint
        if source.kind == "packaged":
            state = "packaged"
        elif source.cached_path().exists():
            state = "cached"
        elif source.kind == "synthetic":
            state = "on-demand"
        else:
            state = "not fetched"
        rows.append(
            [
                name,
                source.kind,
                f"~{hint}" if hint is not None else "?",
                state,
                source.description,
            ]
        )
    table = format_table(["trace", "kind", "events", "state", "description"], rows)
    return f"{table}\n\ntrace cache: {trace_cache_dir()}"


def _cmd_fetch(args: List[str]) -> int:
    force = "--force" in args
    names = [a for a in args if a != "--force"]
    if not names:
        raise SystemExit("fetch requires at least one trace name")
    for name in names:
        path = fetch_trace(name, force=force)
        source = get_trace_source(name)
        sha = f"  sha256={source.sha256[:12]}..." if source.sha256 else ""
        print(f"{name}: {path}{sha}")
    return 0


def _cmd_stats(args: List[str]) -> int:
    time_scale = float(_pop_option(args, "--time-scale") or 1.0)
    duration_opt = _pop_option(args, "--duration")
    duration = float(duration_opt) if duration_opt else None
    if len(args) != 1:
        raise SystemExit("stats requires exactly one trace ref")
    path = resolve_trace(args[0])
    stats = trace_stats(
        stream_trace_blocks(path, time_scale=time_scale, duration=duration)
    )
    print(f"trace: {path}")
    print(f"events:        {stats.joins + stats.departures}")
    print(f"joins:         {stats.joins}")
    print(f"departures:    {stats.departures}")
    print(f"span:          [{stats.first_time:.3f}, {stats.last_time:.3f}] s"
          f"  (duration {stats.duration:.3f} s)")
    print(f"join rate:     {stats.join_rate:.4f} /s")
    print(f"peak joins/1s: {stats.peak_joins_1s}")
    if stats.mean_session is not None:
        print(f"mean session:  {stats.mean_session:.3f} s")
    return 0


def _cmd_convert(args: List[str]) -> int:
    time_scale = float(_pop_option(args, "--time-scale") or 1.0)
    duration_opt = _pop_option(args, "--duration")
    duration = float(duration_opt) if duration_opt else None
    block_size = int(_pop_option(args, "--block-size") or DEFAULT_BLOCK_SIZE)
    if len(args) != 2:
        raise SystemExit("convert requires <src> and <dst>")
    src = resolve_trace(args[0])
    dst = args[1]
    blocks = stream_trace_blocks(
        src, block_size=block_size, time_scale=time_scale, duration=duration
    )
    save_trace_csv(dst, blocks)
    print(f"{src} -> {dst}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, args = args[0], args[1:]
    try:
        if command == "list":
            print(_list_sources())
            return 0
        if command == "fetch":
            return _cmd_fetch(args)
        if command == "stats":
            return _cmd_stats(args)
        if command == "convert":
            return _cmd_convert(args)
    except KeyError as exc:
        # Unknown registry name: surface the curated choose-from
        # message, not a traceback.
        raise SystemExit(exc.args[0])
    except (FileNotFoundError, ValueError) as exc:
        # Resolution failures and reader diagnostics (unsorted trace,
        # bad header, malformed row) are user-facing messages.
        raise SystemExit(str(exc))
    print(
        f"unknown traces command {command!r}; "
        "use 'list', 'fetch', 'stats' or 'convert'"
    )
    return 2


if __name__ == "__main__":
    sys.exit(main())
