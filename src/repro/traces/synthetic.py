"""Synthetic consensus-flap traces: Tor-scale churn without the network.

Real relay consensus traces (Winter et al.'s Sybil characterization
data) are multi-month, multi-million-event files that CI cannot fetch.
This module generates statistically similar flap traces offline and
deterministically: a fleet of relays alternates between *up* (a
heavy-tailed Weibull uptime -- most relays flap quickly, a few stay up
for a long time, matching measured relay session fits) and *down* (an
exponential downtime whose mean is modulated by a diurnal factor, so
flap intensity follows a day/night cycle the way consensus weights do).

Each up-phase emits a ``join`` row at its start and a ``depart`` row at
its end, with explicit relay idents and *no* session column -- the same
shape as the packaged ``tor_relay_flap.csv`` fixture, so everything
downstream (streaming reader, replay phases, stats) treats generated
and measured traces identically.

Generation is a single time-ordered merge over per-relay state machines
(one pending event per relay in a heap), so traces of any length are
produced in ``O(relays)`` memory and can be written straight to a
gzipped CSV.  A ``(spec)`` pair is fully deterministic: the same spec
always yields byte-identical files, which is what lets synthetic
registry entries be (re)generated on demand in any process.
"""

from __future__ import annotations

import csv
import heapq
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Tuple, Union

import numpy as np

from repro.sim.blocks import DEPART, JOIN, ChurnBlock
from repro.traces.io import TRACE_CSV_HEADER, open_trace_text


@dataclass(frozen=True)
class SyntheticFlapSpec:
    """Parameters of one synthetic consensus-flap trace (picklable)."""

    relays: int = 2000
    duration: float = 86_400.0
    seed: int = 2021
    #: mean relay uptime (seconds); Weibull with ``uptime_shape`` < 1
    #: gives the heavy tail measured for relay sessions.
    mean_uptime: float = 3_600.0
    uptime_shape: float = 0.55
    #: mean downtime at diurnal factor 1.0.
    mean_downtime: float = 900.0
    #: flap-rate modulation: downtime mean is divided by
    #: ``1 + amplitude * sin(2*pi*t / period)``.
    diurnal_amplitude: float = 0.6
    diurnal_period: float = 86_400.0
    ident_prefix: str = "relay"

    def __post_init__(self) -> None:
        if self.relays < 1:
            raise ValueError(f"need at least one relay: {self.relays}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.mean_uptime <= 0 or self.mean_downtime <= 0:
            raise ValueError("uptime/downtime means must be positive")
        if self.uptime_shape <= 0:
            raise ValueError(f"uptime_shape must be positive: {self.uptime_shape}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1): {self.diurnal_amplitude}"
            )
        if self.diurnal_period <= 0:
            raise ValueError(f"period must be positive: {self.diurnal_period}")

    @property
    def expected_events(self) -> int:
        """Rough expected row count (one join + one depart per cycle)."""
        cycle = self.mean_uptime + self.mean_downtime
        return int(2 * self.relays * self.duration / cycle)


def synthetic_flap_rows(
    spec: SyntheticFlapSpec,
) -> Iterator[Tuple[float, int, str]]:
    """Yield ``(time, kind, ident)`` rows in global time order.

    Memory is ``O(relays)``: a heap holds exactly one pending event per
    relay, and rows stream out as they are popped.
    """
    rng = np.random.default_rng(spec.seed)
    exponential = rng.exponential
    weibull = rng.weibull
    # Weibull scale solved from the mean: E[X] = scale * Gamma(1 + 1/k).
    up_scale = spec.mean_uptime / math.gamma(1.0 + 1.0 / spec.uptime_shape)
    amplitude = spec.diurnal_amplitude
    omega = 2.0 * math.pi / spec.diurnal_period
    width = len(str(max(spec.relays - 1, 1)))
    idents = [f"{spec.ident_prefix}-{i:0{width}d}" for i in range(spec.relays)]

    def downtime(now: float) -> float:
        factor = 1.0 + amplitude * math.sin(omega * now)
        return exponential(spec.mean_downtime / factor)

    # Every relay starts down; its first join is one (modulated)
    # downtime draw away.  The heap entry is (time, relay, kind); the
    # relay index breaks float ties deterministically, and a relay never
    # has two pending events, so `kind` is never compared.
    heap = [(downtime(0.0), i, JOIN) for i in range(spec.relays)]
    heapq.heapify(heap)
    push = heapq.heappush
    pop = heapq.heappop
    duration = spec.duration
    while heap:
        t, i, kind = pop(heap)
        if t > duration:
            # The heap is time-ordered: everything left is later still.
            break
        yield t, kind, idents[i]
        if kind == JOIN:
            push(heap, (t + weibull(spec.uptime_shape) * up_scale, i, DEPART))
        else:
            push(heap, (t + downtime(t), i, JOIN))


def synthetic_flap_blocks(
    spec: SyntheticFlapSpec, block_size: int = 4096
) -> Iterator[ChurnBlock]:
    """Pack the generated rows into churn blocks (idents, no sessions)."""
    if block_size <= 0:
        raise ValueError(f"block size must be positive: {block_size}")
    times: list = []
    kinds: list = []
    idents: list = []
    for t, kind, ident in synthetic_flap_rows(spec):
        times.append(t)
        kinds.append(kind)
        idents.append(ident)
        if len(times) >= block_size:
            yield ChurnBlock(times, kinds, idents=idents)
            times, kinds, idents = [], [], []
    if times:
        yield ChurnBlock(times, kinds, idents=idents)


def write_flap_csv(path: Union[str, Path], spec: SyntheticFlapSpec) -> int:
    """Stream a generated trace to ``path`` (gzipped iff ``.gz``).

    Rows are written in the :data:`~repro.traces.io.TRACE_CSV_HEADER`
    format with empty session cells; returns the row count.
    """
    count = 0
    with open_trace_text(path, "wt") as handle:
        writer = csv.writer(handle)
        writer.writerow(TRACE_CSV_HEADER)
        kind_name = {JOIN: "join", DEPART: "depart"}
        for t, kind, ident in synthetic_flap_rows(spec):
            writer.writerow([f"{t:.6f}", kind_name[kind], ident, ""])
            count += 1
    return count
