"""The service's HTTP surface (stdlib ``http.server``, JSON bodies).

Endpoints::

    POST /jobs            submit a job        -> 201 {id, state, ...}
                          invalid payload     -> 400 {"error": ...}
                          queue saturated     -> 429 + Retry-After
                          draining            -> 503
    GET  /jobs            recent jobs         -> 200 {"jobs": [...]}
                          (?state=, ?limit=)
    GET  /jobs/<id>       lifecycle record    -> 200 / 404
    GET  /jobs/<id>/rows  result rows so far  -> 200 {"rows": [...]}
                          (?start=N for incremental polling)
    GET  /healthz         liveness + counts   -> 200
    GET  /metrics         Prometheus text     -> 200

The server is a ``ThreadingHTTPServer`` (one daemon thread per
connection), so slow readers never block job submission; the sqlite
store underneath runs in WAL mode precisely so these reader threads
can stream a job's rows while a worker is still appending them.
"""

from __future__ import annotations

import json
import logging
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.serve.jobs import JobValidationError
from repro.serve.supervisor import QueueSaturated, ServiceDraining, Supervisor

log = logging.getLogger("repro.serve")

#: Largest request body we will read (a job spec is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

_JOB_PATH = re.compile(r"^/jobs/(?P<id>[0-9a-f]{1,32})$")
_ROWS_PATH = re.compile(r"^/jobs/(?P<id>[0-9a-f]{1,32})/rows$")


class ServeHandler(BaseHTTPRequestHandler):
    """Routes requests onto the supervisor + store."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def supervisor(self) -> Supervisor:
        return self.server.supervisor  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:
        log.debug("%s %s", self.address_string(), fmt % args)

    def _send(self, status: int, body: bytes, content_type: str,
              extra: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, doc: Any,
              extra: Optional[Dict[str, str]] = None) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, body, "application/json", extra)

    def _error(self, status: int, message: str,
               extra: Optional[Dict[str, str]] = None) -> None:
        self._json(status, {"error": message}, extra)

    # -- dispatch ------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            self._get()
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 -- 500, never a dead thread
            log.exception("GET %s failed", self.path)
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._post()
        except BrokenPipeError:
            pass
        except Exception as exc:  # noqa: BLE001
            log.exception("POST %s failed", self.path)
            self._error(500, f"{type(exc).__name__}: {exc}")

    # -- GET routes ----------------------------------------------------
    def _get(self) -> None:
        parsed = urlparse(self.path)
        path, query = parsed.path.rstrip("/") or "/", parse_qs(parsed.query)
        if path == "/healthz":
            self._json(200, self.supervisor.health())
            return
        if path == "/metrics":
            self._send(
                200, self.supervisor.metrics_text().encode("utf-8"),
                "text/plain; version=0.0.4",
            )
            return
        if path == "/jobs":
            self._list_jobs(query)
            return
        match = _JOB_PATH.match(path)
        if match:
            self._get_job(match.group("id"))
            return
        match = _ROWS_PATH.match(path)
        if match:
            self._get_rows(match.group("id"), query)
            return
        self._error(404, f"no route for {path!r}")

    def _list_jobs(self, query: Dict) -> None:
        state = query.get("state", [None])[0]
        limit = self._int_param(query, "limit", 100)
        records = self.supervisor.store.list_jobs(state=state, limit=limit)
        self._json(200, {"jobs": [record.as_dict() for record in records]})

    def _get_job(self, job_id: str) -> None:
        record = self.supervisor.store.get(job_id)
        if record is None:
            self._error(404, f"no job {job_id!r}")
            return
        count = self.supervisor.store.row_count(job_id)
        self._json(200, record.as_dict(row_count=count))

    def _get_rows(self, job_id: str, query: Dict) -> None:
        store = self.supervisor.store
        record = store.get(job_id)
        if record is None:
            self._error(404, f"no job {job_id!r}")
            return
        start = self._int_param(query, "start", 0)
        rows = store.rows(job_id, start=start)
        self._json(200, {
            "job": job_id,
            "state": record.state,
            "start": start,
            "count": len(rows),
            "rows": [{"index": index, "row": row} for index, row in rows],
        })

    @staticmethod
    def _int_param(query: Dict, key: str, default: int) -> int:
        raw = query.get(key, [None])[0]
        if raw is None:
            return default
        try:
            return max(0, int(raw))
        except ValueError:
            return default

    # -- POST routes ---------------------------------------------------
    def _post(self) -> None:
        path = urlparse(self.path).path.rstrip("/")
        if path != "/jobs":
            self._error(404, f"no route for {path!r}")
            return
        payload, problem = self._read_json()
        if problem is not None:
            self._error(400, problem)
            return
        try:
            record = self.supervisor.submit(payload)
        except JobValidationError as exc:
            self._error(400, str(exc))
        except QueueSaturated as exc:
            self._error(
                429, str(exc),
                extra={"Retry-After": f"{max(1, round(exc.retry_after))}"},
            )
        except ServiceDraining as exc:
            self._error(503, str(exc))
        else:
            self._json(201, record.as_dict(row_count=0))

    def _read_json(self) -> Tuple[Any, Optional[str]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None, "bad Content-Length"
        if length <= 0:
            return None, "request body required (a JSON job spec)"
        if length > MAX_BODY_BYTES:
            return None, f"request body over {MAX_BODY_BYTES} bytes"
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8")), None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, f"request body is not valid JSON: {exc}"


def make_server(supervisor: Supervisor, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Bind the HTTP server (``port=0`` -> ephemeral) around a supervisor.

    The caller owns the lifecycle: ``serve_forever()`` in some thread,
    ``shutdown()`` to stop accepting, and :meth:`Supervisor.drain` for
    the jobs themselves.
    """
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.daemon_threads = True
    server.supervisor = supervisor  # type: ignore[attr-defined]
    return server
