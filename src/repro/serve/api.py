"""The service's HTTP surface (stdlib ``http.server``, JSON bodies).

Endpoints::

    POST /jobs            submit a job        -> 201 {id, state, ...}
                          invalid payload     -> 400 {"error": ...}
                          queue saturated     -> 429 + Retry-After
                          draining            -> 503
    GET  /jobs            recent jobs         -> 200 {"jobs": [...]}
                          (?state=, ?limit=)
    GET  /jobs/<id>       lifecycle record    -> 200 / 404
    GET  /jobs/<id>/rows  result rows so far  -> 200 {"rows": [...]}
                          (?start=N for incremental polling)
    GET  /jobs/<id>/live  live telemetry      -> 200 SSE stream
                          (?since=N -> one long-poll JSON batch)
    GET  /jobs/<id>/profile
                          span cost breakdown -> 200 {"spans": [...]}
                          (profiled jobs only; empty list otherwise)
    GET  /healthz         liveness + counts   -> 200
    GET  /metrics         Prometheus text     -> 200

The server is a ``ThreadingHTTPServer`` (one daemon thread per
connection), so slow readers never block job submission; the sqlite
store underneath runs in WAL mode precisely so these reader threads
can stream a job's rows while a worker is still appending them.

``/jobs/<id>/live`` is the streaming half of the telemetry vertical
(see EXPERIMENTS.md, "Observability"): by default it speaks
Server-Sent Events -- one ``event: snapshot`` frame per persisted
engine snapshot, ``id:`` carrying the store's dense per-job seq, a
terminal ``event: done`` when the job leaves ``running`` -- so
``curl -N`` and ``EventSource`` both just work.  Passing ``?since=N``
switches the same route to a single long-poll JSON batch (snapshots
with ``seq > N``, waiting up to ``LIVE_POLL_MAX_WAIT_S`` for the first
new one), the fallback for clients that cannot hold a stream open.
"""

from __future__ import annotations

import json
import logging
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.serve.jobs import JobValidationError
from repro.serve.supervisor import QueueSaturated, ServiceDraining, Supervisor

log = logging.getLogger("repro.serve")

#: Largest request body we will read (a job spec is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

_JOB_PATH = re.compile(r"^/jobs/(?P<id>[0-9a-f]{1,32})$")
_ROWS_PATH = re.compile(r"^/jobs/(?P<id>[0-9a-f]{1,32})/rows$")
_LIVE_PATH = re.compile(r"^/jobs/(?P<id>[0-9a-f]{1,32})/live$")
_PROFILE_PATH = re.compile(r"^/jobs/(?P<id>[0-9a-f]{1,32})/profile$")

#: How often the SSE loop re-reads the store for new snapshots.
LIVE_SSE_POLL_S = 0.25
#: SSE keep-alive comment cadence while a job emits nothing.
LIVE_SSE_PING_S = 5.0
#: Long-poll (?since=N) maximum wait for the first new snapshot.
LIVE_POLL_MAX_WAIT_S = 20.0


class ServeHandler(BaseHTTPRequestHandler):
    """Routes requests onto the supervisor + store."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def supervisor(self) -> Supervisor:
        return self.server.supervisor  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:
        log.debug("%s %s", self.address_string(), fmt % args)

    def _send(self, status: int, body: bytes, content_type: str,
              extra: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, doc: Any,
              extra: Optional[Dict[str, str]] = None) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, body, "application/json", extra)

    def _error(self, status: int, message: str,
               extra: Optional[Dict[str, str]] = None) -> None:
        self._json(status, {"error": message}, extra)

    # -- dispatch ------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            self._get()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response (e.g. dropped an SSE)
        except Exception as exc:  # lint: allow[broad-except] -- 500 response, never a dead handler thread
            log.exception("GET %s failed", self.path)
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._post()
        except BrokenPipeError:
            pass
        except Exception as exc:  # lint: allow[broad-except] -- 500 response, never a dead handler thread
            log.exception("POST %s failed", self.path)
            self._error(500, f"{type(exc).__name__}: {exc}")

    # -- GET routes ----------------------------------------------------
    def _get(self) -> None:
        parsed = urlparse(self.path)
        path, query = parsed.path.rstrip("/") or "/", parse_qs(parsed.query)
        if path == "/healthz":
            self._json(200, self.supervisor.health())
            return
        if path == "/metrics":
            self._send(
                200, self.supervisor.metrics_text().encode("utf-8"),
                "text/plain; version=0.0.4",
            )
            return
        if path == "/jobs":
            self._list_jobs(query)
            return
        match = _JOB_PATH.match(path)
        if match:
            self._get_job(match.group("id"))
            return
        match = _ROWS_PATH.match(path)
        if match:
            self._get_rows(match.group("id"), query)
            return
        match = _LIVE_PATH.match(path)
        if match:
            self._get_live(match.group("id"), query)
            return
        match = _PROFILE_PATH.match(path)
        if match:
            self._get_profile(match.group("id"))
            return
        self._error(404, f"no route for {path!r}")

    def _list_jobs(self, query: Dict) -> None:
        state = query.get("state", [None])[0]
        limit = self._int_param(query, "limit", 100)
        records = self.supervisor.store.list_jobs(state=state, limit=limit)
        self._json(200, {"jobs": [record.as_dict() for record in records]})

    def _get_job(self, job_id: str) -> None:
        record = self.supervisor.store.get(job_id)
        if record is None:
            self._error(404, f"no job {job_id!r}")
            return
        count = self.supervisor.store.row_count(job_id)
        doc = record.as_dict(row_count=count)
        if record.state == "running":
            beat = record.heartbeat_at or record.started_at
            doc["heartbeat_age_s"] = (
                round(max(0.0, time.time() - beat), 3) if beat else None
            )
        self._json(200, doc)

    def _get_rows(self, job_id: str, query: Dict) -> None:
        store = self.supervisor.store
        record = store.get(job_id)
        if record is None:
            self._error(404, f"no job {job_id!r}")
            return
        start = self._int_param(query, "start", 0)
        rows = store.rows(job_id, start=start)
        self._json(200, {
            "job": job_id,
            "state": record.state,
            "start": start,
            "count": len(rows),
            "rows": [{"index": index, "row": row} for index, row in rows],
        })

    def _get_profile(self, job_id: str) -> None:
        """A profiled job's span breakdown, hottest self-time first.

        Written once by the worker when the job finishes, so a running
        (or unprofiled) job answers with an empty list -- the ``state``
        field tells the client whether to keep polling.
        """
        store = self.supervisor.store
        record = store.get(job_id)
        if record is None:
            self._error(404, f"no job {job_id!r}")
            return
        spans = store.profile(job_id)
        self._json(200, {
            "job": job_id,
            "state": record.state,
            "profiled": bool(record.spec.get("profile", False)),
            "spans": spans,
        })

    # -- live telemetry ------------------------------------------------
    def _get_live(self, job_id: str, query: Dict) -> None:
        store = self.supervisor.store
        record = store.get(job_id)
        if record is None:
            self._error(404, f"no job {job_id!r}")
            return
        if "since" in query:
            try:
                # -1 means "from the beginning" (seqs start at 0), so
                # this cursor is not _int_param's clamped-at-zero kind.
                since = max(-1, int(query["since"][0]))
            except ValueError:
                since = -1
            self._live_poll(job_id, since)
        else:
            self._live_sse(job_id)

    def _live_poll(self, job_id: str, since: int) -> None:
        """Long-poll fallback: one JSON batch of snapshots past ``since``.

        Waits up to :data:`LIVE_POLL_MAX_WAIT_S` for the first snapshot
        newer than ``since`` (or the job leaving ``running``), so a
        poll loop costs one request per batch instead of one per probe.
        ``next_since`` is the cursor for the follow-up request.
        """
        store = self.supervisor.store
        deadline = time.monotonic() + LIVE_POLL_MAX_WAIT_S
        while True:
            record = store.get(job_id)
            done = record is None or record.state not in ("queued", "running")
            snaps = store.snapshots(job_id, after=since)
            if snaps or done or time.monotonic() >= deadline:
                break
            time.sleep(LIVE_SSE_POLL_S)
        next_since = snaps[-1][0] if snaps else since
        self._json(200, {
            "job": job_id,
            "state": record.state if record is not None else None,
            "since": since,
            "next_since": next_since,
            "done": done,
            "snapshots": [
                {"seq": seq, "snapshot": doc} for seq, doc in snaps
            ],
        })

    def _live_sse(self, job_id: str) -> None:
        """Stream a running job's snapshots as Server-Sent Events.

        Headers are written by hand because :meth:`_send` speaks
        Content-Length, and an SSE body has none: the stream ends when
        the job does (terminal ``event: done`` frame), closing the
        connection (HTTP/1.1 read-until-close framing).
        """
        store = self.supervisor.store
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        last_seq = -1
        next_ping = time.monotonic() + LIVE_SSE_PING_S
        while True:
            record = store.get(job_id)
            done = record is None or record.state not in ("queued", "running")
            wrote = False
            for seq, doc in store.snapshots(job_id, after=last_seq):
                last_seq = seq
                payload = json.dumps(doc, sort_keys=True)
                self.wfile.write(
                    f"id: {seq}\nevent: snapshot\ndata: {payload}\n\n"
                    .encode("utf-8")
                )
                wrote = True
            if done:
                state = record.state if record is not None else "deleted"
                payload = json.dumps(
                    {"job": job_id, "state": state, "last_seq": last_seq},
                    sort_keys=True,
                )
                self.wfile.write(
                    f"event: done\ndata: {payload}\n\n".encode("utf-8")
                )
                self.wfile.flush()
                return
            now = time.monotonic()
            if wrote:
                next_ping = now + LIVE_SSE_PING_S
            elif now >= next_ping:
                # Keep-alive comment: lets proxies and the client's TCP
                # stack notice a dead peer during quiet stretches.
                self.wfile.write(b": ping\n\n")
                next_ping = now + LIVE_SSE_PING_S
            self.wfile.flush()
            time.sleep(LIVE_SSE_POLL_S)

    @staticmethod
    def _int_param(query: Dict, key: str, default: int) -> int:
        raw = query.get(key, [None])[0]
        if raw is None:
            return default
        try:
            return max(0, int(raw))
        except ValueError:
            return default

    # -- POST routes ---------------------------------------------------
    def _post(self) -> None:
        path = urlparse(self.path).path.rstrip("/")
        if path != "/jobs":
            self._error(404, f"no route for {path!r}")
            return
        payload, problem = self._read_json()
        if problem is not None:
            self._error(400, problem)
            return
        try:
            record = self.supervisor.submit(payload)
        except JobValidationError as exc:
            self._error(400, str(exc))
        except QueueSaturated as exc:
            self._error(
                429, str(exc),
                extra={"Retry-After": f"{max(1, round(exc.retry_after))}"},
            )
        except ServiceDraining as exc:
            # A drain is transient by design (the next start picks the
            # queue back up), so tell well-behaved clients when to retry.
            retry = self.supervisor.retry_after
            self._error(
                503, str(exc),
                extra={"Retry-After": f"{max(1, round(retry))}"},
            )
        else:
            self._json(201, record.as_dict(row_count=0))

    def _read_json(self) -> Tuple[Any, Optional[str]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None, "bad Content-Length"
        if length <= 0:
            return None, "request body required (a JSON job spec)"
        if length > MAX_BODY_BYTES:
            return None, f"request body over {MAX_BODY_BYTES} bytes"
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8")), None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, f"request body is not valid JSON: {exc}"


def make_server(supervisor: Supervisor, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Bind the HTTP server (``port=0`` -> ephemeral) around a supervisor.

    The caller owns the lifecycle: ``serve_forever()`` in some thread,
    ``shutdown()`` to stop accepting, and :meth:`Supervisor.drain` for
    the jobs themselves.
    """
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.daemon_threads = True
    server.supervisor = supervisor  # type: ignore[attr-defined]
    return server
