"""``python -m repro serve`` -- boot the simulation service.

Usage::

    python -m repro serve [options]

Options:
    --host HOST              bind address (default 127.0.0.1)
    --port N                 TCP port; 0 binds an ephemeral port and
                             prints it (default 8642)
    --data-dir PATH          service state root: ``jobs.sqlite3`` +
                             ``checkpoints/`` (default results/serve)
    --max-workers N          concurrent job executor threads (default 2)
    --max-queued N           bounded queue; a full queue answers 429 +
                             Retry-After (default 16)
    --drain-timeout S        SIGTERM/SIGINT grace: finish in-flight
                             jobs within S seconds, requeue the rest
                             for resume-on-restart, exit 0 (default 30)
    --heartbeat-timeout S    a running job silent this long (and not
                             owned by a live worker) is requeued or
                             failed by the maintenance loop (default 120)
    --maintenance-interval S maintenance loop period (default 2)
    --job-attempts N         whole-job attempt cap across restarts and
                             stale reaps (default 3)
    --verbose                request + debug logging to stderr

Submit work with plain curl::

    curl -s -X POST localhost:8642/jobs \\
      -d '{"scenarios": ["flash-crowd"], "n0_scale": 0.25}'
    curl -s localhost:8642/jobs/<id>
    curl -s localhost:8642/jobs/<id>/rows

and watch it run live (Server-Sent Events; ``curl -N`` disables
buffering) or long-poll the same route where a stream will not do::

    curl -N localhost:8642/jobs/<id>/live
    curl -s 'localhost:8642/jobs/<id>/live?since=-1'

``GET /metrics`` exposes Prometheus text -- service gauges plus
per-running-job spend-rate/bad-fraction gauges from the latest
snapshot (see EXPERIMENTS.md, "Observability").

Durability contract: every completed point's row is already in the
WAL-mode sqlite store and the job's checkpoint journal the moment it
finishes, so ``kill -9`` of the service loses at most in-flight
points; the next start requeues interrupted jobs, resumes them from
their journals, and produces final rows byte-identical to an
uninterrupted run.  Checkpoints live under ``<data-dir>/checkpoints``
via ``$REPRO_CHECKPOINT_DIR`` (exported for this process unless
already set).
"""

from __future__ import annotations

import logging
import os
import signal
import sys
import threading
from pathlib import Path
from typing import List, Optional

from repro.cliutil import pop_option
from repro.serve.api import make_server
from repro.serve.store import JobStore
from repro.serve.supervisor import Supervisor

DEFAULT_PORT = 8642


def default_data_dir() -> Path:
    """``results/serve`` next to the other experiment outputs."""
    from repro.experiments.report import results_path

    return Path(results_path("serve"))


def main(argv: Optional[List[str]] = None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    if args and args[0] in ("-h", "--help"):
        print(__doc__)
        return 0

    def popped(flag: str, default, cast):
        value = pop_option(args, flag)
        try:
            return cast(value) if value is not None else default
        except ValueError:
            raise SystemExit(f"{flag} expects {cast.__name__}, got {value!r}")

    host = popped("--host", "127.0.0.1", str)
    port = popped("--port", DEFAULT_PORT, int)
    data_dir = Path(popped("--data-dir", default_data_dir(), str))
    max_workers = popped("--max-workers", 2, int)
    max_queued = popped("--max-queued", 16, int)
    drain_timeout = popped("--drain-timeout", 30.0, float)
    heartbeat_timeout = popped("--heartbeat-timeout", 120.0, float)
    maintenance_interval = popped("--maintenance-interval", 2.0, float)
    job_attempts = popped("--job-attempts", 3, int)
    verbose = "--verbose" in args
    args = [a for a in args if a != "--verbose"]
    if args:
        raise SystemExit(f"unknown option(s): {', '.join(args)}")

    logging.basicConfig(
        level=logging.DEBUG if verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )

    data_dir.mkdir(parents=True, exist_ok=True)
    checkpoint_root = data_dir / "checkpoints"
    checkpoint_root.mkdir(parents=True, exist_ok=True)
    # Nested sweep machinery that derives its own checkpoint paths must
    # land in the data dir too, never the CWD.
    os.environ.setdefault("REPRO_CHECKPOINT_DIR", str(checkpoint_root))

    store = JobStore(data_dir / "jobs.sqlite3")
    supervisor = Supervisor(
        store,
        checkpoint_root,
        max_workers=max_workers,
        max_queued=max_queued,
        heartbeat_timeout=heartbeat_timeout,
        maintenance_interval=maintenance_interval,
        job_attempts=job_attempts,
    )
    supervisor.start()

    server = make_server(supervisor, host=host, port=port)
    bound_port = server.server_address[1]
    print(
        f"repro serve listening on http://{host}:{bound_port} "
        f"(data: {data_dir})",
        flush=True,
    )

    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    previous = {
        sig: signal.signal(sig, _request_stop)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    server_thread = threading.Thread(
        target=server.serve_forever, name="serve-http", daemon=True
    )
    server_thread.start()
    try:
        # Short waits keep the main loop responsive to signals even on
        # platforms where a bare Event.wait() is not interruptible.
        while not stop.wait(0.5):
            pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)

    print(f"draining (timeout {drain_timeout:g}s)...", flush=True)
    server.shutdown()  # stop accepting; in-flight requests finish
    server.server_close()
    clean = supervisor.drain(drain_timeout)
    if clean:
        print("drained cleanly; all in-flight jobs reached a terminal "
              "state", flush=True)
        return 0
    # Jobs still running were requeued (resume=True); their checkpoint
    # journals hold every completed point.  Worker threads (and any
    # process-pool children) are daemonic/orphaned -- a hard exit here
    # is safe *because* all durable state is already on disk, and it is
    # what guarantees exit 0 within --drain-timeout.
    print("drain deadline reached; interrupted jobs requeued for "
          "resume on next start", flush=True)
    sys.stdout.flush()
    store.close()
    os._exit(0)


if __name__ == "__main__":
    sys.exit(main())
