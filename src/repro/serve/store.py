"""The service's durable record: a WAL-mode sqlite job store.

One database file holds the whole service state: the ``jobs`` table is
the lifecycle ledger (state machine ``queued -> running -> succeeded |
failed``, with ``running -> queued`` requeues on crash/stale
detection), and ``job_rows`` receives each job's result rows
*incrementally* as the sweep runtime completes points -- so a SIGKILL
at any instant loses nothing that was already computed, and a restart
can serve every finished row while the interrupted job resumes from
its checkpoint journal.

Concurrency: the store is read by many HTTP handler threads while
supervisor workers stream rows in, so every connection runs in WAL
journal mode (readers never block the writer, the writer never blocks
readers) with a ``busy_timeout`` for the rare writer-writer collision.
Connections are per-thread (sqlite connections must not hop threads);
each mutating call commits immediately, so every committed write is
durable at the next ``fsync`` and visible to all readers.

Timestamps are wall-clock ``time.time()`` floats -- the service is an
operational surface, not a deterministic simulation, and stale-job
detection wants real elapsed time.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: Job lifecycle states (the only values the ``state`` column takes).
JOB_STATES = ("queued", "running", "succeeded", "failed")

#: States a job can no longer leave.
TERMINAL_STATES = ("succeeded", "failed")

#: Writer-writer collision budget; generous because worker threads
#: commit row-at-a-time and the HTTP side only writes on submit.
BUSY_TIMEOUT_MS = 10_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id           TEXT PRIMARY KEY,
    spec         TEXT NOT NULL,
    state        TEXT NOT NULL,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    heartbeat_at REAL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    resume       INTEGER NOT NULL DEFAULT 0,
    checkpoint   TEXT,
    error        TEXT,
    summary      TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state
    ON jobs (state, submitted_at);
CREATE TABLE IF NOT EXISTS job_rows (
    job_id TEXT NOT NULL,
    idx    INTEGER NOT NULL,
    row    TEXT NOT NULL,
    PRIMARY KEY (job_id, idx)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS job_snapshots (
    job_id     TEXT NOT NULL,
    seq        INTEGER NOT NULL,
    snapshot   TEXT NOT NULL,
    created_at REAL NOT NULL,
    PRIMARY KEY (job_id, seq)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS job_profile (
    job_id  TEXT NOT NULL,
    path    TEXT NOT NULL,
    span    TEXT NOT NULL,
    parent  TEXT,
    calls   INTEGER NOT NULL,
    events  INTEGER NOT NULL,
    total_s REAL NOT NULL,
    self_s  REAL NOT NULL,
    PRIMARY KEY (job_id, path)
) WITHOUT ROWID;
"""


@dataclass(frozen=True)
class JobRecord:
    """One row of the ``jobs`` table, decoded."""

    id: str
    spec: Dict[str, Any]
    state: str
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    heartbeat_at: Optional[float]
    attempts: int
    resume: bool
    checkpoint: Optional[str]
    error: Optional[str]
    summary: Optional[Dict[str, Any]]

    def as_dict(self, row_count: Optional[int] = None) -> Dict[str, Any]:
        """The JSON shape ``GET /jobs/<id>`` serves."""
        doc: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "heartbeat_at": self.heartbeat_at,
            "attempts": self.attempts,
            "resume": self.resume,
            "error": self.error,
            "summary": self.summary,
        }
        if row_count is not None:
            doc["row_count"] = row_count
        return doc


class JobStore:
    """Thread-safe job + result persistence over one sqlite file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._local = threading.local()
        with self._conn() as conn:
            conn.executescript(_SCHEMA)

    # -- connections ---------------------------------------------------
    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, timeout=BUSY_TIMEOUT_MS / 1000.0)
            conn.row_factory = sqlite3.Row
            # WAL is the load-bearing choice: GET /jobs/<id>/rows must
            # read while a worker streams rows in.  journal_mode
            # persists in the file but is asserted per connection so a
            # copied/pre-WAL database upgrades on open.
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.execute("PRAGMA synchronous=NORMAL")
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Close this thread's connection (others close with their thread)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- lifecycle -----------------------------------------------------
    def submit(self, job_id: str, spec: Dict[str, Any],
               checkpoint: Optional[str] = None) -> JobRecord:
        """Admit a new job in state ``queued``."""
        with self._conn() as conn:
            conn.execute(
                "INSERT INTO jobs (id, spec, state, submitted_at, checkpoint)"
                " VALUES (?, ?, 'queued', ?, ?)",
                (job_id, json.dumps(spec, sort_keys=True), time.time(),
                 checkpoint),
            )
        record = self.get(job_id)
        assert record is not None
        return record

    def get(self, job_id: str) -> Optional[JobRecord]:
        row = self._conn().execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return self._decode(row) if row is not None else None

    def list_jobs(self, state: Optional[str] = None,
                  limit: int = 100) -> List[JobRecord]:
        """Most-recently-submitted first, optionally filtered by state."""
        if state is not None:
            rows = self._conn().execute(
                "SELECT * FROM jobs WHERE state = ?"
                " ORDER BY submitted_at DESC LIMIT ?",
                (state, limit),
            ).fetchall()
        else:
            rows = self._conn().execute(
                "SELECT * FROM jobs ORDER BY submitted_at DESC LIMIT ?",
                (limit,),
            ).fetchall()
        return [self._decode(row) for row in rows]

    def queued_ids(self) -> List[str]:
        """Queued jobs in admission order (the dispatch order)."""
        rows = self._conn().execute(
            "SELECT id FROM jobs WHERE state = 'queued'"
            " ORDER BY submitted_at, id"
        ).fetchall()
        return [row["id"] for row in rows]

    def running_ids(self) -> List[str]:
        rows = self._conn().execute(
            "SELECT id FROM jobs WHERE state = 'running'"
            " ORDER BY submitted_at, id"
        ).fetchall()
        return [row["id"] for row in rows]

    def counts(self) -> Dict[str, int]:
        """Jobs per state (zero-filled for all known states)."""
        counts = {state: 0 for state in JOB_STATES}
        for row in self._conn().execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ):
            counts[row["state"]] = row["n"]
        return counts

    def mark_running(self, job_id: str) -> int:
        """``queued -> running``; returns the new attempt number."""
        now = time.time()
        with self._conn() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ?,"
                " heartbeat_at = ?, attempts = attempts + 1"
                " WHERE id = ? AND state = 'queued'",
                (now, now, job_id),
            )
            if cur.rowcount != 1:
                raise ValueError(
                    f"job {job_id!r} is not queued (claimed twice, or "
                    f"finished/requeued underneath the worker)"
                )
        record = self.get(job_id)
        assert record is not None
        return record.attempts

    def heartbeat(self, job_id: str) -> None:
        with self._conn() as conn:
            conn.execute(
                "UPDATE jobs SET heartbeat_at = ? WHERE id = ?",
                (time.time(), job_id),
            )

    def finish(self, job_id: str, state: str, error: Optional[str] = None,
               summary: Optional[Dict[str, Any]] = None) -> None:
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() wants a terminal state, got {state!r}")
        with self._conn() as conn:
            conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, error = ?,"
                " summary = ?, resume = 0 WHERE id = ?",
                (state, time.time(), error,
                 json.dumps(summary, sort_keys=True) if summary else None,
                 job_id),
            )

    def requeue(self, job_id: str, resume: bool = True) -> None:
        """``running -> queued`` (crash recovery / stale reap / drain).

        ``resume=True`` tells the next worker to restore the job's
        checkpoint journal instead of recomputing finished points.
        """
        with self._conn() as conn:
            conn.execute(
                "UPDATE jobs SET state = 'queued', resume = ?,"
                " heartbeat_at = NULL WHERE id = ? AND state = 'running'",
                (1 if resume else 0, job_id),
            )

    def stale_running(self, older_than_s: float) -> List[JobRecord]:
        """Running jobs whose heartbeat is older than the cutoff."""
        cutoff = time.time() - older_than_s
        rows = self._conn().execute(
            "SELECT * FROM jobs WHERE state = 'running'"
            " AND (heartbeat_at IS NULL OR heartbeat_at < ?)",
            (cutoff,),
        ).fetchall()
        return [self._decode(row) for row in rows]

    # -- result rows ---------------------------------------------------
    def put_row(self, job_id: str, index: int, row: Dict[str, Any]) -> None:
        """Persist one result row (idempotent: resume re-delivers rows)."""
        with self._conn() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO job_rows (job_id, idx, row)"
                " VALUES (?, ?, ?)",
                (job_id, index, json.dumps(row, sort_keys=True)),
            )

    def rows(self, job_id: str, start: int = 0) -> List[Tuple[int, Dict]]:
        """``(index, row)`` pairs in index order, from ``start`` on."""
        fetched = self._conn().execute(
            "SELECT idx, row FROM job_rows WHERE job_id = ? AND idx >= ?"
            " ORDER BY idx",
            (job_id, start),
        ).fetchall()
        return [(row["idx"], json.loads(row["row"])) for row in fetched]

    def row_count(self, job_id: str) -> int:
        row = self._conn().execute(
            "SELECT COUNT(*) AS n FROM job_rows WHERE job_id = ?", (job_id,)
        ).fetchone()
        return row["n"]

    def total_rows(self) -> int:
        row = self._conn().execute(
            "SELECT COUNT(*) AS n FROM job_rows"
        ).fetchone()
        return row["n"]

    # -- cost attribution ----------------------------------------------
    def put_profile(self, job_id: str, spans: List[Dict[str, Any]]) -> None:
        """Replace a job's span breakdown (one row per call path).

        Written once, when a profiled job finishes; the delete+insert
        runs in one transaction so readers never see a half-replaced
        profile if a resumed attempt rewrites it.
        """
        with self._conn() as conn:
            conn.execute(
                "DELETE FROM job_profile WHERE job_id = ?", (job_id,)
            )
            conn.executemany(
                "INSERT INTO job_profile (job_id, path, span, parent,"
                " calls, events, total_s, self_s)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (job_id, s["path"], s["span"], s["parent"], s["calls"],
                     s["events"], s["total_s"], s["self_s"])
                    for s in spans
                ],
            )

    def profile(self, job_id: str) -> List[Dict[str, Any]]:
        """A job's span rows, hottest self-time first."""
        fetched = self._conn().execute(
            "SELECT path, span, parent, calls, events, total_s, self_s"
            " FROM job_profile WHERE job_id = ?"
            " ORDER BY self_s DESC, path",
            (job_id,),
        ).fetchall()
        return [dict(row) for row in fetched]

    def profile_span_totals(self) -> List[Tuple[str, float]]:
        """Self-seconds per leaf span across all jobs (for /metrics)."""
        fetched = self._conn().execute(
            "SELECT span, SUM(self_s) AS self_s FROM job_profile"
            " GROUP BY span ORDER BY span"
        ).fetchall()
        return [(row["span"], row["self_s"]) for row in fetched]

    # -- live snapshots ------------------------------------------------
    def put_snapshot(self, job_id: str, snapshot: Dict[str, Any]) -> int:
        """Append one telemetry snapshot; returns its assigned seq.

        Seqs are per-job, dense, and monotone (``0, 1, 2, ...``): the
        INSERT..SELECT assigns ``MAX(seq)+1`` in the same transaction,
        and each job has exactly one worker writing, so ``/live``
        readers can detect gaps as data loss rather than racing.
        """
        with self._conn() as conn:
            conn.execute(
                "INSERT INTO job_snapshots (job_id, seq, snapshot,"
                " created_at) SELECT ?, COALESCE(MAX(seq), -1) + 1, ?, ?"
                " FROM job_snapshots WHERE job_id = ?",
                (job_id, json.dumps(snapshot, sort_keys=True), time.time(),
                 job_id),
            )
            row = conn.execute(
                "SELECT MAX(seq) AS seq FROM job_snapshots WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        return row["seq"]

    def snapshots(self, job_id: str, after: int = -1,
                  limit: int = 1000) -> List[Tuple[int, Dict[str, Any]]]:
        """``(seq, snapshot)`` pairs with ``seq > after``, seq order."""
        fetched = self._conn().execute(
            "SELECT seq, snapshot FROM job_snapshots"
            " WHERE job_id = ? AND seq > ? ORDER BY seq LIMIT ?",
            (job_id, after, limit),
        ).fetchall()
        return [(row["seq"], json.loads(row["snapshot"])) for row in fetched]

    def latest_snapshot(
        self, job_id: str
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        row = self._conn().execute(
            "SELECT seq, snapshot FROM job_snapshots WHERE job_id = ?"
            " ORDER BY seq DESC LIMIT 1",
            (job_id,),
        ).fetchone()
        if row is None:
            return None
        return (row["seq"], json.loads(row["snapshot"]))

    def snapshot_count(self, job_id: str) -> int:
        row = self._conn().execute(
            "SELECT COUNT(*) AS n FROM job_snapshots WHERE job_id = ?",
            (job_id,),
        ).fetchone()
        return row["n"]

    def snapshot_job_ids(self) -> List[str]:
        """Jobs that still hold snapshots (the prune-scan worklist)."""
        rows = self._conn().execute(
            "SELECT DISTINCT job_id FROM job_snapshots ORDER BY job_id"
        ).fetchall()
        return [row["job_id"] for row in rows]

    def prune_snapshots(self, job_id: str) -> int:
        """Drop a finished job's snapshots (the rows are the record)."""
        with self._conn() as conn:
            cur = conn.execute(
                "DELETE FROM job_snapshots WHERE job_id = ?", (job_id,)
            )
        return cur.rowcount

    # -- decoding ------------------------------------------------------
    @staticmethod
    def _decode(row: sqlite3.Row) -> JobRecord:
        return JobRecord(
            id=row["id"],
            spec=json.loads(row["spec"]),
            state=row["state"],
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            heartbeat_at=row["heartbeat_at"],
            attempts=row["attempts"],
            resume=bool(row["resume"]),
            checkpoint=row["checkpoint"],
            error=row["error"],
            summary=json.loads(row["summary"]) if row["summary"] else None,
        )
