"""``python -m repro serve`` -- the long-running simulation service.

Everything below this package used to be a batch CLI writing one-shot
JSON; :mod:`repro.serve` turns the library into a crash-surviving
service in four stdlib-only layers (``http.server`` + ``threading`` +
``sqlite3`` -- no new dependencies):

* :mod:`~repro.serve.store`      -- the durable record: a WAL-mode
  sqlite job store (job lifecycle rows + incrementally persisted
  result rows) that replaces one-shot ``results/scenarios.json``;
* :mod:`~repro.serve.jobs`       -- the job schema: request
  validation into a frozen :class:`~repro.serve.jobs.JobSpec` and its
  execution on the fault-tolerant sweep runtime
  (:mod:`repro.experiments.runtime` -- retries, per-point timeouts,
  fault injection, checkpoint/resume, all exposed per job);
* :mod:`~repro.serve.supervisor` -- admission control (bounded queue,
  saturation surfaces as HTTP 429), worker threads that survive
  worker-process crashes and mark jobs ``failed`` with structured
  failure rows instead of dying, a maintenance loop that requeues
  stale ``running`` jobs, crash recovery on restart (interrupted jobs
  resume from their checkpoint journals), and graceful drain;
* :mod:`~repro.serve.api`        -- the HTTP surface: ``POST /jobs``,
  ``GET /jobs``, ``GET /jobs/<id>``, ``GET /jobs/<id>/rows``,
  ``GET /healthz``, ``GET /metrics``.

:mod:`~repro.serve.cli` wires the layers together under
``python -m repro serve`` and owns the signal story: SIGTERM/SIGINT
stop admission, drain in-flight jobs, and exit 0 within
``--drain-timeout`` (jobs still running at the deadline are requeued
for resume-on-restart -- the checkpoint journal is their durable
progress).  See EXPERIMENTS.md, "Simulation service".
"""

from repro.serve.jobs import JobSpec, JobValidationError, parse_job
from repro.serve.store import JobRecord, JobStore
from repro.serve.supervisor import QueueSaturated, ServiceDraining, Supervisor

__all__ = [
    "JobRecord",
    "JobSpec",
    "JobStore",
    "JobValidationError",
    "QueueSaturated",
    "ServiceDraining",
    "Supervisor",
    "parse_job",
]
