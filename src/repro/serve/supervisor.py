"""Supervised job execution: admission, workers, maintenance, drain.

The supervisor is the crash-surviving middle of the service:

* **Admission control.**  The job queue is bounded (``max_queued``);
  a submission against a full queue raises :class:`QueueSaturated`,
  which the HTTP layer turns into ``429`` + ``Retry-After`` instead of
  letting memory (or the sqlite file) grow without bound.  The queue's
  source of truth is the store's ``queued`` count, so admission
  pressure survives restarts too.

* **Supervised workers.**  ``max_workers`` threads pull queued jobs
  and run them on the fault-tolerant sweep runtime.  Worker-process
  crashes (``BrokenProcessPool``), per-point timeouts, and injected
  faults are absorbed by the runtime's retry machinery; a job whose
  points exhaust their budget is marked ``failed`` with structured
  failure rows in its summary.  A worker thread itself never dies with
  a job: any escaping exception is recorded on the job and the thread
  moves on.

* **Maintenance loop.**  Every ``maintenance_interval`` seconds the
  loop (a) re-enqueues store-``queued`` jobs that are missing from the
  in-memory queue (the store is durable, the deque is not), and (b)
  reaps ``running`` jobs whose heartbeat went stale and that no live
  worker of this process owns -- requeueing them for resume, or
  failing them once they exhaust ``job_attempts``.

* **Crash recovery.**  On startup every ``running`` job in the store
  is a casualty of a previous process (one service instance per store
  is the deployment contract) and is requeued with ``resume=True``:
  the job's checkpoint journal -- flushed by the runtime as each point
  completed -- becomes the recovery primitive, so the rerun recomputes
  only unfinished points and final rows are byte-identical to an
  uninterrupted run.

* **Graceful drain.**  :meth:`Supervisor.drain` stops admission,
  wakes idle workers to exit, and waits for busy ones up to the
  deadline; jobs still running at the deadline are requeued
  (``resume=True``) so the *next* start finishes them, and the caller
  can exit 0 having lost nothing.
"""

from __future__ import annotations

import logging
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from repro.experiments.runtime import CheckpointMismatch
from repro.serve.jobs import execute_job, parse_job, spec_from_dict
from repro.serve.store import JobRecord, JobStore

log = logging.getLogger("repro.serve")

#: Minimum wall seconds between persisted snapshots of one job.  The
#: engine can emit thousands of snapshots per wall second on a small
#: sweep; /live only needs a human-rate feed, and every terminal
#: (``last=True``) snapshot bypasses the throttle regardless.
SNAPSHOT_MIN_WALL_S = 0.05

#: Wall seconds a finished job's snapshots linger before the
#: maintenance loop prunes them.  Pruning *at* completion would race
#: attached /live readers out of the terminal snapshots; the linger
#: lets them drain the tail, while still bounding the table.
SNAPSHOT_LINGER_S = 30.0


class QueueSaturated(RuntimeError):
    """Admission rejected: the bounded job queue is full (HTTP 429)."""

    def __init__(self, queued: int, limit: int, retry_after: float) -> None:
        self.retry_after = retry_after
        super().__init__(
            f"job queue is saturated ({queued}/{limit} queued); "
            f"retry in ~{retry_after:.0f}s"
        )


class ServiceDraining(RuntimeError):
    """Admission rejected: the service is shutting down (HTTP 503)."""


class Supervisor:
    """Owns the worker threads, the maintenance loop, and admission."""

    def __init__(
        self,
        store: JobStore,
        checkpoint_root: Path,
        *,
        max_workers: int = 2,
        max_queued: int = 16,
        heartbeat_timeout: float = 120.0,
        maintenance_interval: float = 2.0,
        job_attempts: int = 3,
        retry_after: float = 2.0,
        snapshot_min_wall_s: float = SNAPSHOT_MIN_WALL_S,
        snapshot_linger_s: float = SNAPSHOT_LINGER_S,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        self.store = store
        self.checkpoint_root = Path(checkpoint_root)
        self.max_workers = max_workers
        self.max_queued = max_queued
        self.heartbeat_timeout = heartbeat_timeout
        self.maintenance_interval = maintenance_interval
        self.job_attempts = job_attempts
        self.retry_after = retry_after
        self.snapshot_min_wall_s = snapshot_min_wall_s
        self.snapshot_linger_s = snapshot_linger_s

        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: deque = deque()
        self._pending_ids: Set[str] = set()
        #: job ids a worker thread of *this* process is executing
        self._active: Set[str] = set()
        self._draining = False
        self._threads: List[threading.Thread] = []
        self._maintenance_thread: Optional[threading.Thread] = None
        self.started_at = time.time()
        #: admissions rejected with 429 since start (metrics)
        self.rejects = 0
        #: jobs this process ran to a terminal state (metrics)
        self.completed = 0
        #: result rows persisted by this process (metrics)
        self.rows_persisted = 0
        #: live telemetry snapshots persisted by this process (metrics)
        self.snapshots_persisted = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Recover interrupted work, then start workers + maintenance."""
        self.recover()
        for i in range(self.max_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._maintenance_thread = threading.Thread(
            target=self._maintenance_loop, name="serve-maintenance",
            daemon=True,
        )
        self._maintenance_thread.start()

    def recover(self) -> None:
        """Requeue every job a previous process left ``running``."""
        for job_id in self.store.running_ids():
            log.warning("recovering interrupted job %s (resume)", job_id)
            self.store.requeue(job_id, resume=True)
        for job_id in self.store.queued_ids():
            self._enqueue(job_id)

    def drain(self, timeout: float) -> bool:
        """Stop admitting, finish what we can, requeue the rest.

        Returns ``True`` when every in-flight job reached a terminal
        state before the deadline; ``False`` means the remaining jobs
        were requeued (``resume=True``) for the next start.  Either
        way the store is consistent and the caller may exit 0.
        """
        deadline = time.monotonic() + timeout
        with self._wake:
            self._draining = True
            self._wake.notify_all()
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        clean = not any(thread.is_alive() for thread in self._threads)
        if not clean:
            with self._lock:
                abandoned = sorted(self._active)
            for job_id in abandoned:
                log.warning(
                    "drain deadline: requeueing %s for resume", job_id
                )
                self.store.requeue(job_id, resume=True)
        if self._maintenance_thread is not None:
            self._maintenance_thread.join(0.5)
        return clean

    @property
    def draining(self) -> bool:
        return self._draining

    # -- admission -----------------------------------------------------
    def submit(self, payload: Any) -> JobRecord:
        """Validate, admit (or reject), persist, and enqueue a job."""
        if self._draining:
            raise ServiceDraining("service is draining; not accepting jobs")
        spec = parse_job(payload)  # JobValidationError -> 400
        queued = self.store.counts()["queued"]
        if queued >= self.max_queued:
            with self._lock:
                self.rejects += 1
            raise QueueSaturated(queued, self.max_queued, self.retry_after)
        job_id = uuid.uuid4().hex[:12]
        record = self.store.submit(
            job_id, spec.as_dict(), checkpoint=str(self._checkpoint(job_id))
        )
        self._enqueue(job_id)
        return record

    def _checkpoint(self, job_id: str) -> Path:
        return self.checkpoint_root / f"job-{job_id}.ckpt"

    def _enqueue(self, job_id: str) -> None:
        with self._wake:
            if job_id in self._pending_ids or job_id in self._active:
                return
            self._pending.append(job_id)
            self._pending_ids.add(job_id)
            self._wake.notify()

    # -- workers -------------------------------------------------------
    def _next_job(self) -> Optional[str]:
        """Block for the next job id; ``None`` means "exit now"."""
        with self._wake:
            while True:
                if self._draining:
                    return None
                if self._pending:
                    job_id = self._pending.popleft()
                    self._pending_ids.discard(job_id)
                    self._active.add(job_id)
                    return job_id
                self._wake.wait(timeout=0.5)

    def _worker_loop(self) -> None:
        while True:
            job_id = self._next_job()
            if job_id is None:
                return
            try:
                self._run_job(job_id)
            except BaseException:  # lint: allow[broad-except] -- a worker thread survives anything a job throws
                # A worker thread must survive anything a job throws at
                # it; the job itself was already marked failed (or will
                # be reaped as stale by maintenance).
                log.exception("job %s: worker error", job_id)
            finally:
                with self._lock:
                    self._active.discard(job_id)
                    self.completed += 1

    def _run_job(self, job_id: str) -> None:
        record = self.store.get(job_id)
        if record is None or record.state != "queued":
            return  # reaped or finished underneath us
        try:
            self.store.mark_running(job_id)
        except ValueError:
            return  # lost the claim race
        spec = spec_from_dict(record.spec)
        checkpoint = record.checkpoint or str(self._checkpoint(job_id))
        resume = record.resume and Path(checkpoint).exists()

        def on_row(index: int, row: Dict) -> None:
            self.store.put_row(job_id, index, row)
            self.store.heartbeat(job_id)
            with self._lock:
                self.rows_persisted += 1

        # Persisting every engine snapshot of a fast job would turn the
        # store into the bottleneck, so non-terminal snapshots are
        # wall-clock throttled; terminal (``last=True``) ones always
        # land so /live readers see each point close out.
        snap_state = {"next": 0.0}

        def on_snapshot(index: int, snap: Any) -> None:
            now = time.monotonic()
            if not snap.last and now < snap_state["next"]:
                return
            snap_state["next"] = now + self.snapshot_min_wall_s
            doc = snap.as_dict()
            doc["point"] = index
            self.store.put_snapshot(job_id, doc)
            self.store.heartbeat(job_id)
            with self._lock:
                self.snapshots_persisted += 1

        hooks: Dict[str, Any] = {"on_row": on_row}
        if spec.snapshot_interval > 0:
            hooks["on_snapshot"] = on_snapshot
        try:
            try:
                report = execute_job(
                    spec, checkpoint=checkpoint, resume=resume, **hooks
                )
            except CheckpointMismatch:
                # The journal belongs to an older incarnation of the
                # job (e.g. code change across restart): discard it and
                # recompute from scratch rather than refuse forever.
                log.warning("job %s: stale checkpoint discarded", job_id)
                Path(checkpoint).unlink(missing_ok=True)
                report = execute_job(
                    spec, checkpoint=checkpoint, resume=False, **hooks
                )
        except Exception as exc:  # lint: allow[broad-except] -- jobs fail, workers don't; error lands on the job record
            log.exception("job %s: execution error", job_id)
            self.store.finish(
                job_id, "failed", error=f"{type(exc).__name__}: {exc}"
            )
            return
        summary = {
            "points": spec.points,
            "rows": len(report["rows"]),
            "failures": report["failures"],
            "retries": report["retries"],
            "pool_rebuilds": report["pool_rebuilds"],
            "resumed": report["resumed"],
        }
        if spec.profile:
            # The report's rollup sums span totals across every point
            # (resumed rows included -- their profiles rode the rows
            # through the checkpoint journal).  Persisted before
            # finish() so /jobs/<id>/profile never sees a terminal job
            # without its breakdown.
            rollup = report.get("profile") or {}
            spans = rollup.get("spans") or []
            if spans:
                self.store.put_profile(job_id, spans)
            summary["profile_spans"] = len(spans)
        if report["failures"]:
            self.store.finish(
                job_id, "failed", summary=summary,
                error=(f"{len(report['failures'])} point(s) failed after "
                       f"retries"),
            )
        else:
            self.store.finish(job_id, "succeeded", summary=summary)
        # The snapshots were a live view; the rows are the durable
        # record.  Maintenance prunes them after SNAPSHOT_LINGER_S, so
        # /live readers drain the tail before the table is trimmed.

    # -- maintenance ---------------------------------------------------
    def _maintenance_loop(self) -> None:
        while not self._draining:
            try:
                self.maintain()
            except Exception:  # lint: allow[broad-except] -- maintenance must outlive any single bad pass
                log.exception("maintenance pass failed")
            time.sleep(self.maintenance_interval)

    def maintain(self) -> Dict[str, int]:
        """One maintenance pass; returns action counts (for tests)."""
        actions = {"requeued": 0, "failed": 0, "enqueued": 0, "pruned": 0}
        with self._lock:
            active = set(self._active)
        for record in self.store.stale_running(self.heartbeat_timeout):
            if record.id in active:
                continue  # owned by a live worker here; not stale
            if record.attempts >= self.job_attempts:
                log.error(
                    "job %s: heartbeat lost after %d attempts; failing",
                    record.id, record.attempts,
                )
                self.store.finish(
                    record.id, "failed",
                    error=(f"heartbeat lost (stale for > "
                           f"{self.heartbeat_timeout:g}s) after "
                           f"{record.attempts} attempt(s)"),
                )
                actions["failed"] += 1
            else:
                log.warning("job %s: heartbeat stale; requeueing", record.id)
                self.store.requeue(record.id, resume=True)
                actions["requeued"] += 1
        with self._lock:
            known = self._pending_ids | self._active
        for job_id in self.store.queued_ids():
            if job_id not in known:
                self._enqueue(job_id)
                actions["enqueued"] += 1
        cutoff = time.time() - self.snapshot_linger_s
        for job_id in self.store.snapshot_job_ids():
            record = self.store.get(job_id)
            if record is None or (
                record.state in ("succeeded", "failed")
                and (record.finished_at or 0.0) < cutoff
            ):
                self.store.prune_snapshots(job_id)
                actions["pruned"] += 1
        return actions

    # -- observability -------------------------------------------------
    def health(self) -> Dict[str, Any]:
        counts = self.store.counts()
        with self._lock:
            active = len(self._active)
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "jobs": counts,
            "queue_depth": counts["queued"],
            "queue_capacity": self.max_queued,
            "workers": self.max_workers,
            "workers_busy": active,
        }

    #: ``MetricsSnapshot`` fields exported per running job (suffix ->
    #: snapshot-dict key); the rest of the snapshot rides on /live.
    _JOB_GAUGES = (
        ("sim_time", "sim_time"),
        ("events_per_sec", "events_per_sec"),
        ("system_size", "system_size"),
        ("bad_fraction", "bad_fraction"),
        ("good_spend_rate", "good_spend_rate"),
        ("adversary_spend_rate", "adversary_spend_rate"),
    )

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition).

        Beyond the service-level gauges, every *running* job exports
        its heartbeat age and -- when live telemetry is on -- the
        simulation-level gauges of its latest persisted snapshot, so an
        operator's dashboard can watch a sweep's spend race without
        polling ``/jobs/<id>/live``.  Per-job series disappear when the
        job finishes (its snapshots are pruned); Prometheus treats
        that as the series going stale, which is the intent.

        Profiled jobs additionally feed
        ``repro_serve_job_span_seconds_total{span=...}`` -- cumulative
        self-seconds per engine span across all stored job profiles, a
        true counter (profiles are only ever added).
        """
        health = self.health()
        now = time.time()
        with self._lock:
            rejects, completed = self.rejects, self.completed
            rows_persisted = self.rows_persisted
            snaps_persisted = self.snapshots_persisted
        lines = [
            "# TYPE repro_serve_uptime_seconds gauge",
            f"repro_serve_uptime_seconds {health['uptime_s']}",
            "# TYPE repro_serve_jobs gauge",
        ]
        for state, count in sorted(health["jobs"].items()):
            lines.append(f'repro_serve_jobs{{state="{state}"}} {count}')
        saturation = health["queue_depth"] / health["queue_capacity"]
        lines += [
            "# TYPE repro_serve_queue_depth gauge",
            f"repro_serve_queue_depth {health['queue_depth']}",
            "# TYPE repro_serve_queue_capacity gauge",
            f"repro_serve_queue_capacity {health['queue_capacity']}",
            "# TYPE repro_serve_queue_saturation gauge",
            f"repro_serve_queue_saturation {saturation:.6f}",
            "# TYPE repro_serve_workers gauge",
            f"repro_serve_workers {health['workers']}",
            "# TYPE repro_serve_workers_busy gauge",
            f"repro_serve_workers_busy {health['workers_busy']}",
            "# TYPE repro_serve_result_rows_total counter",
            f"repro_serve_result_rows_total {self.store.total_rows()}",
            "# TYPE repro_serve_rows_persisted_total counter",
            f"repro_serve_rows_persisted_total {rows_persisted}",
            "# TYPE repro_serve_snapshots_persisted_total counter",
            f"repro_serve_snapshots_persisted_total {snaps_persisted}",
            "# TYPE repro_serve_admission_rejects_total counter",
            f"repro_serve_admission_rejects_total {rejects}",
            "# TYPE repro_serve_jobs_completed_total counter",
            f"repro_serve_jobs_completed_total {completed}",
            "# TYPE repro_serve_draining gauge",
            f"repro_serve_draining {1 if self._draining else 0}",
        ]
        span_totals = self.store.profile_span_totals()
        if span_totals:
            lines.append(
                "# TYPE repro_serve_job_span_seconds_total counter"
            )
            for span, self_s in span_totals:
                lines.append(
                    f'repro_serve_job_span_seconds_total'
                    f'{{span="{span}"}} {self_s:.6f}'
                )
        # Re-check the state on the fresh read: a job can finish
        # between running_ids() and get(), and its snapshots linger
        # (SNAPSHOT_LINGER_S) -- without the state check a terminal
        # job's last snapshot would keep exporting as a live gauge.
        running = [
            record for record in (
                self.store.get(job_id)
                for job_id in self.store.running_ids()
            )
            if record is not None and record.state == "running"
        ]
        if running:
            lines.append("# TYPE repro_serve_job_heartbeat_age_seconds gauge")
            for record in running:
                beat = record.heartbeat_at or record.started_at
                age = max(0.0, now - beat) if beat else 0.0
                lines.append(
                    f'repro_serve_job_heartbeat_age_seconds'
                    f'{{job="{record.id}"}} {age:.3f}'
                )
            gauge_rows = []
            for record in running:
                latest = self.store.latest_snapshot(record.id)
                if latest is not None:
                    gauge_rows.append((record.id, latest[1]))
            for suffix, key in self._JOB_GAUGES:
                rows = [(jid, doc) for jid, doc in gauge_rows if key in doc]
                if not rows:
                    continue
                lines.append(f"# TYPE repro_serve_job_{suffix} gauge")
                for jid, doc in rows:
                    lines.append(
                        f'repro_serve_job_{suffix}{{job="{jid}"}} {doc[key]}'
                    )
        return "\n".join(lines) + "\n"
