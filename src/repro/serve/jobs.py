"""Job schema: what ``POST /jobs`` accepts and how a job executes.

A job is one scenario x defense sweep -- exactly what
``python -m repro scenarios run`` computes -- described by a small
JSON object::

    {
      "scenarios":     ["flash-crowd", ...],   # default: whole catalog
      "defenses":      ["ERGO", "Null", ...],  # default: full suite
      "seed":          2021,
      "t_rate":        null,                   # override adversary rate
      "n0_scale":      1.0,                    # population scale
      "jobs":          1,                      # worker *processes*
      "max_retries":   2,                      # per-point retry budget
      "point_timeout": null,                   # seconds (processes only)
      "fault_spec":    null,                   # repro.faults grammar
      "snapshot_interval": 1.0,                # live telemetry cadence
                                               #   (sim seconds; 0 = off)
      "profile":       false                   # span-level cost
    }                                          #   attribution per point

Validation happens at admission time (:func:`parse_job` raises
:class:`JobValidationError` -> HTTP 400), so a job that reaches the
queue cannot fail on a typo hours later.  Execution
(:func:`execute_job`) runs on the fault-tolerant sweep runtime with
the retry/timeout/fault-injection policy the job asked for, a per-job
checkpoint journal for resume-after-crash, and an ``on_row`` callback
that streams each completed point into the sqlite store.

Note on ``fault_spec`` + ``jobs``: an injected ``crash`` fault calls
``os._exit`` in whatever process runs the point.  With ``jobs >= 2``
that is a worker process (the runtime rebuilds the pool and retries --
the chaos-testing path); with ``jobs = 1`` the point runs inside the
service itself, so the crash kills the *service* -- which is precisely
the kill-recovery drill, not a bug.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro import faults
from repro.experiments.runtime import ExecutionPolicy
from repro.scenarios.catalog import get_scenario, scenario_names
from repro.scenarios.run import SCENARIO_DEFENSES, run_catalog


class JobValidationError(ValueError):
    """A job payload that must be rejected at admission (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """A validated, immutable job description (JSON round-trippable)."""

    scenarios: Tuple[str, ...]
    defenses: Tuple[str, ...]
    seed: int = 2021
    t_rate: Optional[float] = None
    n0_scale: float = 1.0
    jobs: int = 1
    max_retries: int = 2
    point_timeout: Optional[float] = None
    fault_spec: Optional[str] = None
    #: Simulated seconds between live telemetry snapshots
    #: (``GET /jobs/<id>/live``); ``0`` disables snapshotting.
    snapshot_interval: float = 1.0
    #: Run every point with span-level cost attribution
    #: (``GET /jobs/<id>/profile``).  Metrics stay byte-identical.
    profile: bool = False

    def as_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["scenarios"] = list(self.scenarios)
        doc["defenses"] = list(self.defenses)
        return doc

    @property
    def points(self) -> int:
        return len(self.scenarios) * len(self.defenses)


#: Payload keys :func:`parse_job` understands (anything else is a 400 --
#: silently ignoring a misspelled ``n0_scale`` would run the wrong job).
_KNOWN_KEYS = frozenset(
    ("scenarios", "defenses", "seed", "t_rate", "n0_scale", "jobs",
     "max_retries", "point_timeout", "fault_spec", "snapshot_interval",
     "profile")
)


def _want(payload: Dict, key: str, kinds, default):
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, kinds):
        raise JobValidationError(
            f"{key!r} must be {' or '.join(k.__name__ for k in kinds)}, "
            f"got {value!r}"
        )
    return value


def parse_job(payload: Any) -> JobSpec:
    """Validate a ``POST /jobs`` payload into a :class:`JobSpec`."""
    if not isinstance(payload, dict):
        raise JobValidationError("job payload must be a JSON object")
    unknown = sorted(set(payload) - _KNOWN_KEYS)
    if unknown:
        raise JobValidationError(
            f"unknown job field(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(_KNOWN_KEYS))}"
        )

    scenarios = payload.get("scenarios") or scenario_names()
    if (not isinstance(scenarios, (list, tuple))
            or not all(isinstance(s, str) for s in scenarios)):
        raise JobValidationError("'scenarios' must be a list of names")
    for name in scenarios:
        try:
            get_scenario(name)
        except KeyError as exc:
            raise JobValidationError(str(exc.args[0])) from None

    defenses = payload.get("defenses") or list(SCENARIO_DEFENSES)
    if (not isinstance(defenses, (list, tuple))
            or not all(isinstance(d, str) for d in defenses)):
        raise JobValidationError("'defenses' must be a list of names")
    unknown_defenses = [d for d in defenses if d not in SCENARIO_DEFENSES]
    if unknown_defenses:
        raise JobValidationError(
            f"unknown defense(s): {', '.join(unknown_defenses)}; "
            f"choose from: {', '.join(SCENARIO_DEFENSES)}"
        )

    # An explicit JSON ``null`` means "use the default" for every
    # scalar knob, matching an omitted key.
    seed = _want(payload, "seed", (int,), 2021)
    seed = 2021 if seed is None else seed
    t_rate = _want(payload, "t_rate", (int, float), None)
    if t_rate is not None and t_rate < 0:
        raise JobValidationError("'t_rate' must be >= 0")
    n0_scale = _want(payload, "n0_scale", (int, float), 1.0)
    n0_scale = 1.0 if n0_scale is None else n0_scale
    if n0_scale <= 0:
        raise JobValidationError("'n0_scale' must be > 0")
    jobs = _want(payload, "jobs", (int,), 1)
    jobs = 1 if jobs is None else jobs
    # Floor the cap at 4 so crash-injection chaos (which needs worker
    # processes) stays expressible on single-core CI boxes;
    # oversubscribing cores is legal, unbounded fan-out is not.
    max_procs = max(4, os.cpu_count() or 1)
    if jobs < 1 or jobs > max_procs:
        raise JobValidationError(
            f"'jobs' (worker processes) must be in 1..{max_procs}"
        )
    max_retries = _want(payload, "max_retries", (int,), 2)
    max_retries = 2 if max_retries is None else max_retries
    if max_retries < 0:
        raise JobValidationError("'max_retries' must be >= 0")
    point_timeout = _want(payload, "point_timeout", (int, float), None)
    if point_timeout is not None and point_timeout <= 0:
        raise JobValidationError("'point_timeout' must be positive seconds")
    fault_spec = _want(payload, "fault_spec", (str,), None)
    if fault_spec:
        try:
            faults.parse_fault_spec(fault_spec)
        except faults.FaultSpecError as exc:
            raise JobValidationError(str(exc)) from None
    else:
        fault_spec = None
    snapshot_interval = _want(payload, "snapshot_interval", (int, float), 1.0)
    snapshot_interval = 1.0 if snapshot_interval is None else snapshot_interval
    if snapshot_interval < 0:
        raise JobValidationError(
            "'snapshot_interval' must be >= 0 (0 disables snapshots)"
        )
    profile = payload.get("profile", False)
    if profile is None:
        profile = False
    if not isinstance(profile, bool):
        raise JobValidationError(
            f"'profile' must be a boolean, got {profile!r}"
        )

    return JobSpec(
        scenarios=tuple(scenarios),
        defenses=tuple(defenses),
        seed=int(seed),
        t_rate=float(t_rate) if t_rate is not None else None,
        n0_scale=float(n0_scale),
        jobs=int(jobs),
        max_retries=int(max_retries),
        point_timeout=float(point_timeout) if point_timeout else None,
        fault_spec=fault_spec,
        snapshot_interval=float(snapshot_interval),
        profile=profile,
    )


def spec_from_dict(doc: Dict[str, Any]) -> JobSpec:
    """Rehydrate a spec persisted by the store (already validated)."""
    return JobSpec(
        scenarios=tuple(doc["scenarios"]),
        defenses=tuple(doc["defenses"]),
        seed=doc["seed"],
        t_rate=doc["t_rate"],
        n0_scale=doc["n0_scale"],
        jobs=doc["jobs"],
        max_retries=doc["max_retries"],
        point_timeout=doc["point_timeout"],
        fault_spec=doc["fault_spec"],
        # Specs persisted before the telemetry vertical lack the key;
        # ditto "profile" from before the cost-attribution vertical.
        snapshot_interval=float(doc.get("snapshot_interval", 1.0)),
        profile=bool(doc.get("profile", False)),
    )


def execute_job(
    spec: JobSpec,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    on_row: Optional[Callable[[int, Dict], None]] = None,
    on_snapshot: Optional[Callable[[int, Any], None]] = None,
) -> Dict:
    """Run one job on the fault-tolerant runtime; returns the report.

    ``on_failure="collect"`` turns points that exhaust their retry
    budget into structured failure entries in the report -- the
    supervisor marks such jobs ``failed`` with the table attached, it
    never dies with them.  The checkpoint journal is flushed as rows
    land and removed by the runtime on full success, so a job
    interrupted by a service crash resumes exactly where it stopped.

    ``on_snapshot(point_index, snapshot)`` receives the engine's live
    telemetry (when the spec's ``snapshot_interval`` is nonzero) -- the
    supervisor persists these for ``GET /jobs/<id>/live``.  Snapshots
    are observational only: the report stays byte-identical with them
    on or off, and a resumed job re-delivers none.
    """
    policy = ExecutionPolicy(
        max_retries=spec.max_retries,
        point_timeout=spec.point_timeout,
        checkpoint=checkpoint,
        resume=resume,
        fault_spec=spec.fault_spec,
        on_failure="collect",
        profile=spec.profile,
    )
    return run_catalog(
        scenarios=list(spec.scenarios),
        defenses=list(spec.defenses),
        seed=spec.seed,
        t_rate=spec.t_rate,
        n0_scale=spec.n0_scale,
        jobs=spec.jobs,
        policy=policy,
        on_row=on_row,
        snapshot_interval=(
            spec.snapshot_interval
            if on_snapshot is not None and spec.snapshot_interval > 0
            else None
        ),
        on_snapshot=on_snapshot,
    )
