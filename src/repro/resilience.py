"""Shared resilience primitives: deterministic backoff and atomic writes.

Every fault-tolerant layer in the repo (the sweep runtime in
:mod:`repro.experiments.runtime`, the trace fetcher in
:mod:`repro.traces.source`, the result writers) needs the same two
building blocks:

* **Capped exponential backoff with deterministic jitter.**  Retrying
  at fixed intervals synchronizes colliding clients; random jitter
  fixes that but breaks reproducibility.  :func:`backoff_delay` derives
  the jitter from a SHA-256 hash of the retry key and the attempt
  number, so two runs of the same sweep back off at *identical*
  moments while distinct points still spread out.

* **Atomic file replacement.**  A file that is rewritten in place can
  be observed torn by a crash or a concurrent reader.
  :func:`atomic_write_text` writes to a same-directory temp file and
  ``os.replace``\\ s it over the target, the idiom the trace cache has
  used since it was introduced; result files and sweep checkpoints now
  share the one implementation.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Tuple, Type, Union


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff: ``base * factor**(attempt-1)``.

    The computed delay is scaled by a deterministic jitter in
    ``[0.5, 1.0)`` (see :func:`backoff_delay`), so the configured
    values are upper bounds per attempt.
    """

    base_delay: float = 0.1
    factor: float = 2.0
    max_delay: float = 5.0

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.max_delay < 0 or self.factor < 1.0:
            raise ValueError(
                "backoff wants base_delay >= 0, max_delay >= 0, factor >= 1"
            )


#: A zero-delay policy for tests and for callers that want bare retries.
NO_DELAY = BackoffPolicy(base_delay=0.0, max_delay=0.0)


def deterministic_jitter(key: str, attempt: int) -> float:
    """A stable pseudo-random fraction in ``[0, 1)`` for (key, attempt)."""
    digest = hashlib.sha256(f"{key}:{int(attempt)}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def backoff_delay(policy: BackoffPolicy, key: str, attempt: int) -> float:
    """Delay before retry number ``attempt`` (1-based) of ``key``.

    Exponential in the attempt number, capped at ``max_delay``, and
    jittered deterministically into ``[raw/2, raw)`` so that (a) the
    same sweep re-run backs off identically and (b) points that failed
    together do not retry in lockstep.
    """
    if attempt < 1:
        raise ValueError(f"attempt is 1-based, got {attempt}")
    raw = min(policy.max_delay, policy.base_delay * policy.factor ** (attempt - 1))
    return raw * (0.5 + 0.5 * deterministic_jitter(key, attempt))


def retry_call(
    fn: Callable,
    *,
    max_retries: int = 3,
    policy: BackoffPolicy = BackoffPolicy(),
    retriable: Tuple[Type[BaseException], ...] = (Exception,),
    should_retry: Optional[Callable[[BaseException], bool]] = None,
    key: str = "",
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn()`` with up to ``max_retries`` retries on failure.

    An exception is retried when it is an instance of ``retriable``
    *and* ``should_retry`` (if given) returns true for it; anything
    else propagates immediately.  ``on_retry(attempt, exc, delay)``
    is invoked before each backoff sleep -- the hook for logging.
    """
    attempt = 1
    while True:
        try:
            return fn()
        except retriable as exc:
            if should_retry is not None and not should_retry(exc):
                raise
            if attempt > max_retries:
                raise
            delay = backoff_delay(policy, key, attempt)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                sleep(delay)
            attempt += 1


def atomic_tmp_path(target: Union[str, Path]) -> Path:
    """A same-directory temp path whose suffix is the target's full name.

    Keeping the target name as the suffix means suffix-sniffing writers
    (gzip-by-``.gz``) treat both paths identically; the pid prefix keeps
    concurrent writers from clobbering each other's temp files.
    """
    target = Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    return target.with_name(f".tmp{os.getpid()}.{target.name}")


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` via temp file + ``os.replace``.

    A crash mid-write leaves the previous file intact; readers never
    observe a torn file.  Parent directories are created on demand.
    """
    target = Path(path)
    tmp = atomic_tmp_path(target)
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            tmp.unlink()
