"""Tests for the closed-form theory bounds."""

import math

import pytest

from repro.analysis.bounds import (
    entrance_cost_asymmetry,
    ergo_spend_rate_bound,
    goodjest_envelope,
    interval_estimate_envelope,
    intuition_spend_rate,
)


class TestTheorem1Bound:
    def test_reduces_to_sqrt_tj_plus_j_at_unit_smoothness(self):
        bound = ergo_spend_rate_bound(100.0, 4.0, alpha=1.0, beta=1.0)
        assert bound == pytest.approx(math.sqrt(100.0 * 5.0) + 4.0)

    def test_alpha_beta_exponents(self):
        base = ergo_spend_rate_bound(0.0, 1.0, alpha=1.0, beta=1.0)
        doubled_alpha = ergo_spend_rate_bound(0.0, 1.0, alpha=2.0, beta=1.0)
        # With T=0 only the J term remains: scales as alpha^11.
        assert doubled_alpha / base == pytest.approx(2.0**11)
        doubled_beta = ergo_spend_rate_bound(0.0, 1.0, alpha=1.0, beta=2.0)
        assert doubled_beta / base == pytest.approx(2.0**14)

    def test_monotone_in_t(self):
        values = [ergo_spend_rate_bound(t, 1.0) for t in (0.0, 10.0, 1000.0)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            ergo_spend_rate_bound(-1.0, 1.0)
        with pytest.raises(ValueError):
            ergo_spend_rate_bound(1.0, 1.0, alpha=0.5)


class TestIntuition:
    def test_balanced_costs(self):
        assert intuition_spend_rate(100.0, 1.0) == pytest.approx(20.0)

    def test_zero_attack(self):
        assert intuition_spend_rate(0.0, 5.0) == 0.0


class TestGoodJEstEnvelope:
    def test_theorem2_constants(self):
        envelope = goodjest_envelope(alpha=1.0, beta=1.0)
        assert envelope.lower_factor == pytest.approx(1 / 88)
        assert envelope.upper_factor == pytest.approx(1867)

    def test_contains(self):
        envelope = goodjest_envelope()
        assert envelope.contains(estimate=1.0, true_rate=1.0)
        assert envelope.contains(estimate=4.0, true_rate=1.0)
        assert not envelope.contains(estimate=1.0, true_rate=1e6)
        assert not envelope.contains(estimate=1.0, true_rate=0.0)

    def test_lemma5_envelope(self):
        envelope = interval_estimate_envelope(beta=1.0)
        assert envelope.lower_factor == pytest.approx(1 / 21)
        assert envelope.upper_factor == pytest.approx(210)
        wider = interval_estimate_envelope(beta=2.0)
        assert wider.upper_factor == pytest.approx(840)


class TestAsymmetry:
    def test_section71_arithmetic(self):
        adversary, good = entrance_cost_asymmetry(10)
        assert adversary == pytest.approx(55.0)  # 1+2+...+10
        assert good == pytest.approx(11.0)

    def test_good_cost_is_sqrt_of_adversary(self):
        adversary, good = entrance_cost_asymmetry(10_000)
        assert good == pytest.approx(math.sqrt(2 * adversary), rel=0.01)

    def test_zero(self):
        assert entrance_cost_asymmetry(0) == (0.0, 1.0)
