"""Tests for churn event generators."""

import numpy as np
import pytest

from repro.churn.generators import (
    diurnal_rate,
    modulated_join_stream,
    poisson_join_stream,
    smooth_trace,
)
from repro.churn.sessions import ExponentialSessions
from repro.sim.events import GoodDeparture, GoodJoin


class TestPoissonStream:
    def test_rate_is_respected(self, rng):
        events = list(
            poisson_join_stream(2.0, ExponentialSessions(10.0), rng, horizon=5000.0)
        )
        assert len(events) == pytest.approx(10_000, rel=0.1)

    def test_events_in_time_order_with_sessions(self, rng):
        events = list(
            poisson_join_stream(1.0, ExponentialSessions(10.0), rng, horizon=200.0)
        )
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(isinstance(e, GoodJoin) and e.session is not None for e in events)

    def test_zero_rate_yields_nothing(self, rng):
        assert list(
            poisson_join_stream(0.0, ExponentialSessions(10.0), rng, horizon=100.0)
        ) == []

    def test_horizon_respected(self, rng):
        events = list(
            poisson_join_stream(5.0, ExponentialSessions(10.0), rng, horizon=50.0)
        )
        assert all(e.time <= 50.0 for e in events)


class TestModulatedStream:
    def test_diurnal_modulation_shifts_density(self, rng):
        period = 1000.0
        rate_fn = diurnal_rate(base_rate=2.0, amplitude=0.8, period=period)
        events = list(
            modulated_join_stream(
                rate_fn, max_rate=4.0, session_dist=ExponentialSessions(10.0),
                rng=rng, horizon=period,
            )
        )
        first_half = sum(1 for e in events if e.time < period / 2)
        second_half = len(events) - first_half
        # sin > 0 on the first half-period: more arrivals there.
        assert first_half > second_half * 1.5

    def test_rate_above_max_rejected(self, rng):
        def bad_rate(_t):
            return 100.0

        stream = modulated_join_stream(
            bad_rate, max_rate=1.0, session_dist=ExponentialSessions(10.0),
            rng=rng, horizon=100.0,
        )
        with pytest.raises(ValueError, match="outside"):
            list(stream)

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError):
            diurnal_rate(1.0, amplitude=1.5)


class TestSmoothTrace:
    def test_events_sorted_and_balanced(self, rng):
        events = smooth_trace(n0=40, epoch_rates=[2.0, 4.0], rng=rng)
        times = [e.time for e in events]
        assert times == sorted(times)
        joins = sum(1 for e in events if isinstance(e, GoodJoin))
        departures = sum(1 for e in events if isinstance(e, GoodDeparture))
        assert joins == departures  # size kept constant

    def test_rate_doubles_between_epochs(self, rng):
        events = smooth_trace(n0=400, epoch_rates=[1.0, 2.0], rng=rng)
        joins = [e for e in events if isinstance(e, GoodJoin)]
        half = len(joins) // 2
        first_span = joins[half - 1].time - joins[0].time
        second_span = joins[-1].time - joins[half].time
        assert first_span / second_span == pytest.approx(2.0, rel=0.1)

    def test_beta_one_is_evenly_spaced(self, rng):
        events = smooth_trace(n0=40, epoch_rates=[1.0], rng=rng, beta=1.0)
        joins = [e.time for e in events if isinstance(e, GoodJoin)]
        gaps = np.diff(joins)
        assert np.allclose(gaps, 1.0)

    def test_beta_two_allows_jitter(self, rng):
        events = smooth_trace(n0=400, epoch_rates=[1.0], rng=rng, beta=2.0)
        joins = [e.time for e in events if isinstance(e, GoodJoin)]
        gaps = np.diff(joins)
        assert gaps.std() > 0.01  # not perfectly even

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            smooth_trace(n0=2, epoch_rates=[1.0], rng=rng)
        with pytest.raises(ValueError):
            smooth_trace(n0=40, epoch_rates=[0.0], rng=rng)
        with pytest.raises(ValueError):
            smooth_trace(n0=40, epoch_rates=[1.0], rng=rng, beta=0.5)
