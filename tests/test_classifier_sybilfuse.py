"""Tests for the synthetic social graph and the SybilFuse pipeline."""

import numpy as np
import pytest

from repro.classifier.social_graph import synthesize_social_graph, trusted_seeds
from repro.classifier.sybilfuse import GraphClassifier, run_sybilfuse


@pytest.fixture(scope="module")
def social():
    rng = np.random.default_rng(7)
    return synthesize_social_graph(
        benign_size=600, sybil_size=240, attack_edges=25, rng=rng
    )


@pytest.fixture(scope="module")
def scores(social):
    rng = np.random.default_rng(8)
    return run_sybilfuse(social, rng, seed_count=15)


class TestSocialGraph:
    def test_sizes_and_labels(self, social):
        assert social.n == 840
        assert len(social.benign) == 600
        assert len(social.sybil) == 240
        labels = social.labels()
        assert sum(labels.values()) == 600

    def test_attack_edges_connect_regions(self, social):
        cross = sum(
            1
            for u, v in social.graph.edges
            if (u in social.benign) != (v in social.benign)
        )
        assert cross == social.attack_edges

    def test_graph_connected(self, social):
        import networkx as nx

        assert nx.is_connected(social.graph)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            synthesize_social_graph(2, 100, 5, rng)
        with pytest.raises(ValueError):
            synthesize_social_graph(100, 100, 0, rng)

    def test_seeds_are_benign(self, social):
        rng = np.random.default_rng(1)
        seeds = trusted_seeds(social, 10, rng)
        assert len(seeds) == 10
        assert all(s in social.benign for s in seeds)

    def test_too_many_seeds_rejected(self, social):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            trusted_seeds(social, 10_000, rng)


class TestSybilFusePipeline:
    def test_scores_cover_all_nodes(self, social, scores):
        assert len(scores.scores) == social.n

    def test_classifier_beats_chance_clearly(self, scores):
        """The propagation must separate regions far better than coin
        flips -- the structural gap (few attack edges) makes trust pool
        in the benign region."""
        assert scores.accuracy > 0.85

    def test_confusion_rates_are_rates(self, scores):
        assert 0.0 <= scores.true_positive_rate <= 1.0
        assert 0.0 <= scores.false_positive_rate <= 1.0
        assert scores.true_positive_rate > scores.false_positive_rate

    def test_more_attack_edges_degrade_accuracy(self):
        rng = np.random.default_rng(3)
        tight = synthesize_social_graph(400, 160, 4, rng=rng)
        porous = synthesize_social_graph(400, 160, 700, rng=rng)
        tight_scores = run_sybilfuse(tight, np.random.default_rng(4))
        porous_scores = run_sybilfuse(porous, np.random.default_rng(4))
        assert tight_scores.accuracy > porous_scores.accuracy


class TestGraphClassifier:
    def test_interface_matches_measured_rates(self, scores):
        classifier = GraphClassifier(scores)
        rng = np.random.default_rng(5)
        admitted_good = sum(classifier.classify_good(rng) for _ in range(5_000))
        assert admitted_good / 5_000 == pytest.approx(
            scores.true_positive_rate, abs=0.03
        )
        assert classifier.bad_admit_probability == scores.false_positive_rate

    def test_from_synthetic_end_to_end(self):
        rng = np.random.default_rng(6)
        classifier = GraphClassifier.from_synthetic(
            rng, benign_size=300, sybil_size=120, attack_edges=12
        )
        assert classifier.measured_accuracy > 0.8
        assert 0.0 <= classifier.bad_admit_probability < 0.5
