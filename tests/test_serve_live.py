"""Live telemetry over the service: snapshot store, SSE, long-poll.

Same in-process-over-a-real-socket style as ``test_serve_api``: the
SSE stream is read through actual HTTP/1.1 read-until-close framing,
so the wire format (``id:`` / ``event:`` / ``data:`` frames, terminal
``done``) is what a ``curl -N`` client would see.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.api import make_server
from repro.serve.store import JobStore
from repro.serve.supervisor import Supervisor

SPEC = {"scenarios": ["flash-crowd"], "defenses": ["Null"]}

LIVE_JOB = {
    "scenarios": ["flash-crowd"], "defenses": ["Null"],
    "seed": 7, "n0_scale": 0.05, "snapshot_interval": 1.0,
}


def _store(tmp_path) -> JobStore:
    return JobStore(tmp_path / "jobs.sqlite3")


@pytest.fixture()
def service(tmp_path):
    """A live server whose workers are NOT started: jobs stay queued,
    so snapshots can be staged by hand and reads are deterministic."""
    store = JobStore(tmp_path / "jobs.sqlite3")
    supervisor = Supervisor(
        store, tmp_path / "checkpoints", max_workers=1, max_queued=4,
    )
    server = make_server(supervisor, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield base, supervisor
    finally:
        server.shutdown()
        server.server_close()
        store.close()


def request(base, path, payload=None, method=None):
    """Return (status, headers, parsed-JSON-or-text body)."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(
        base + path, data=data, headers=headers, method=method,
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            raw, status, info = resp.read(), resp.status, resp.headers
    except urllib.error.HTTPError as exc:
        raw, status, info = exc.read(), exc.code, exc.headers
    if info.get_content_type() == "application/json":
        return status, info, json.loads(raw)
    return status, info, raw.decode()


def parse_sse(body: str):
    """SSE body -> list of (event, id-or-None, parsed-data) frames."""
    frames = []
    for chunk in body.split("\n\n"):
        if not chunk.strip() or chunk.startswith(":"):
            continue  # keep-alive comment
        event = frame_id = data = None
        for line in chunk.splitlines():
            if line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("id: "):
                frame_id = int(line[len("id: "):])
            elif line.startswith("data: "):
                data = json.loads(line[len("data: "):])
        frames.append((event, frame_id, data))
    return frames


class TestSnapshotStore:
    def test_put_assigns_dense_seqs_per_job(self, tmp_path):
        store = _store(tmp_path)
        store.submit("j1", SPEC)
        store.submit("j2", SPEC)
        assert store.put_snapshot("j1", {"sim_time": 1.0}) == 0
        assert store.put_snapshot("j1", {"sim_time": 2.0}) == 1
        # Seq spaces are per job, not global.
        assert store.put_snapshot("j2", {"sim_time": 1.0}) == 0
        assert store.put_snapshot("j1", {"sim_time": 3.0}) == 2
        assert store.snapshot_count("j1") == 3
        assert store.snapshot_count("j2") == 1

    def test_snapshots_cursor_and_latest(self, tmp_path):
        store = _store(tmp_path)
        store.submit("j1", SPEC)
        for i in range(4):
            store.put_snapshot("j1", {"sim_time": float(i)})
        all_snaps = store.snapshots("j1")
        assert [seq for seq, _ in all_snaps] == [0, 1, 2, 3]
        assert all_snaps[2][1] == {"sim_time": 2.0}
        tail = store.snapshots("j1", after=1)
        assert [seq for seq, _ in tail] == [2, 3]
        assert store.snapshots("j1", after=3) == []
        assert store.latest_snapshot("j1") == (3, {"sim_time": 3.0})
        assert store.latest_snapshot("missing") is None
        assert store.snapshots("missing") == []

    def test_job_ids_and_prune(self, tmp_path):
        store = _store(tmp_path)
        store.submit("j1", SPEC)
        store.submit("j2", SPEC)
        store.put_snapshot("j1", {"sim_time": 1.0})
        store.put_snapshot("j2", {"sim_time": 1.0})
        assert sorted(store.snapshot_job_ids()) == ["j1", "j2"]
        assert store.prune_snapshots("j1") == 1
        assert store.snapshot_count("j1") == 0
        assert store.snapshot_job_ids() == ["j2"]
        assert store.prune_snapshots("j1") == 0

    def test_readers_see_dense_prefixes_under_write_load(self, tmp_path):
        """WAL regression net, snapshot edition (see test_serve_store)."""
        snaps = 200
        store = JobStore(tmp_path / "jobs.sqlite3")
        store.submit("j1", SPEC)
        errors = []
        done = threading.Event()

        def writer():
            try:
                for i in range(snaps):
                    store.put_snapshot("j1", {"index": i})
            except Exception as exc:  # noqa: BLE001
                errors.append(("writer", exc))
            finally:
                done.set()

        def reader():
            try:
                last = 0
                while not done.is_set() or last < snaps:
                    rows = store.snapshots("j1")
                    seqs = [seq for seq, _ in rows]
                    assert seqs == list(range(len(seqs)))
                    assert len(seqs) >= last  # monotone progress
                    last = len(seqs)
                    if last >= snaps:
                        break
            except Exception as exc:  # noqa: BLE001
                errors.append(("reader", exc))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert errors == []
        assert store.snapshot_count("j1") == snaps


class TestLongPoll:
    def test_unknown_job_is_404(self, service):
        base, _ = service
        assert request(base, "/jobs/feedfacecafe/live?since=-1")[0] == 404

    def test_batch_from_beginning_and_cursor(self, service):
        base, supervisor = service
        _, _, created = request(base, "/jobs", LIVE_JOB)
        job_id = created["id"]
        for i in range(3):
            supervisor.store.put_snapshot(job_id, {"sim_time": float(i)})
        status, _, doc = request(base, f"/jobs/{job_id}/live?since=-1")
        assert status == 200
        assert doc["job"] == job_id
        assert doc["state"] == "queued"
        assert doc["done"] is False
        assert [s["seq"] for s in doc["snapshots"]] == [0, 1, 2]
        assert doc["snapshots"][1]["snapshot"] == {"sim_time": 1.0}
        assert doc["next_since"] == 2
        # Follow-up from the returned cursor sees only what's new.
        supervisor.store.put_snapshot(job_id, {"sim_time": 3.0})
        _, _, tail = request(base, f"/jobs/{job_id}/live?since=2")
        assert [s["seq"] for s in tail["snapshots"]] == [3]
        assert tail["next_since"] == 3

    def test_terminal_job_returns_done_immediately(self, service):
        base, supervisor = service
        _, _, created = request(base, "/jobs", LIVE_JOB)
        job_id = created["id"]
        supervisor.store.put_snapshot(job_id, {"sim_time": 0.0})
        supervisor.store.mark_running(job_id)
        supervisor.store.finish(job_id, "succeeded")
        status, _, doc = request(base, f"/jobs/{job_id}/live?since=0")
        assert status == 200
        assert doc["done"] is True
        assert doc["state"] == "succeeded"
        assert doc["snapshots"] == []
        assert doc["next_since"] == 0

    def test_malformed_since_falls_back_to_beginning(self, service):
        base, supervisor = service
        _, _, created = request(base, "/jobs", LIVE_JOB)
        job_id = created["id"]
        supervisor.store.put_snapshot(job_id, {"sim_time": 0.0})
        _, _, doc = request(base, f"/jobs/{job_id}/live?since=bogus")
        assert doc["since"] == -1
        assert [s["seq"] for s in doc["snapshots"]] == [0]


class TestJobReadExtensions:
    def test_running_job_reports_heartbeat_age(self, service):
        base, supervisor = service
        _, _, created = request(base, "/jobs", LIVE_JOB)
        job_id = created["id"]
        assert "heartbeat_age_s" not in created  # queued: no heartbeat
        supervisor.store.mark_running(job_id)
        supervisor.store.heartbeat(job_id)
        _, _, doc = request(base, f"/jobs/{job_id}")
        assert doc["state"] == "running"
        assert doc["heartbeat_age_s"] >= 0.0
        assert doc["heartbeat_at"] is not None
        assert doc["resume"] is False
        assert doc["attempts"] == 1

    def test_draining_503_carries_retry_after(self, service):
        base, supervisor = service
        supervisor.drain(1.0)
        status, headers, doc = request(base, "/jobs", LIVE_JOB)
        assert status == 503
        assert int(headers["Retry-After"]) >= 1
        assert "draining" in doc["error"]


class TestMetricsSurface:
    def test_saturation_and_persistence_counters(self, service):
        base, supervisor = service
        request(base, "/jobs", LIVE_JOB)
        _, _, text = request(base, "/metrics")
        assert "repro_serve_queue_saturation 0.25" in text  # 1 of 4
        assert "repro_serve_rows_persisted_total 0" in text
        assert "repro_serve_snapshots_persisted_total 0" in text

    def test_running_job_exports_latest_snapshot_gauges(self, service):
        base, supervisor = service
        _, _, created = request(base, "/jobs", LIVE_JOB)
        job_id = created["id"]
        supervisor.store.mark_running(job_id)
        supervisor.store.heartbeat(job_id)
        supervisor.store.put_snapshot(job_id, {
            "sim_time": 42.0, "events_per_sec": 1000.0, "system_size": 99,
            "bad_fraction": 0.125, "good_spend_rate": 3.5,
            "adversary_spend_rate": 64.0,
        })
        _, _, text = request(base, "/metrics")
        assert f'repro_serve_job_heartbeat_age_seconds{{job="{job_id}"}}' in text
        assert f'repro_serve_job_sim_time{{job="{job_id}"}} 42' in text
        assert f'repro_serve_job_system_size{{job="{job_id}"}} 99' in text
        assert f'repro_serve_job_bad_fraction{{job="{job_id}"}} 0.125' in text


class TestSnapshotLinger:
    def test_maintenance_prunes_terminal_jobs_after_linger(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        supervisor = Supervisor(
            store, tmp_path / "checkpoints", snapshot_linger_s=0.0,
        )
        record = supervisor.submit(LIVE_JOB)
        store.put_snapshot(record.id, {"sim_time": 1.0})
        store.mark_running(record.id)
        # Running (and freshly queued) jobs are never pruned.
        supervisor.maintain()
        assert store.snapshot_count(record.id) == 1
        store.finish(record.id, "succeeded")
        time.sleep(0.01)  # move past the zero-linger cutoff
        actions = supervisor.maintain()
        assert actions["pruned"] == 1
        assert store.snapshot_count(record.id) == 0
        store.close()

    def test_fresh_terminal_jobs_linger_for_attached_readers(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        supervisor = Supervisor(
            store, tmp_path / "checkpoints", snapshot_linger_s=3600.0,
        )
        record = supervisor.submit(LIVE_JOB)
        store.put_snapshot(record.id, {"sim_time": 1.0})
        store.mark_running(record.id)
        store.finish(record.id, "succeeded")
        supervisor.maintain()
        assert store.snapshot_count(record.id) == 1
        store.close()


class TestEndToEndStreaming:
    def test_sse_streams_snapshots_then_done(self, service):
        base, supervisor = service
        supervisor.start()  # actually run the job
        _, _, created = request(base, "/jobs", LIVE_JOB)
        job_id = created["id"]
        # read() returns when the server closes after the done frame.
        with urllib.request.urlopen(
            base + f"/jobs/{job_id}/live", timeout=120
        ) as resp:
            assert resp.status == 200
            assert resp.headers.get_content_type() == "text/event-stream"
            body = resp.read().decode("utf-8")
        frames = parse_sse(body)
        assert frames[-1][0] == "done"
        done = frames[-1][2]
        assert done["state"] == "succeeded"
        snaps = [(fid, data) for ev, fid, data in frames if ev == "snapshot"]
        assert snaps, "stream carried no snapshot frames"
        seqs = [fid for fid, _ in snaps]
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        assert done["last_seq"] == seqs[-1]
        # The terminal snapshot's cumulative spend matches its row.
        terminal = [data for _, data in snaps if data.get("last")]
        assert terminal
        _, _, rows = request(base, f"/jobs/{job_id}/rows")
        by_point = {r["index"]: r["row"] for r in rows["rows"]}
        for data in terminal:
            row = by_point[data["point"]]
            assert abs(data["good_spend"] - row["good_spend"]) < 1e-9
        supervisor.drain(10.0)
