"""The CI perf trend report (benchmarks/perf_trend.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def trend():
    spec = importlib.util.spec_from_file_location(
        "perf_trend", REPO / "benchmarks" / "perf_trend.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _micro(eps=400_000, heap=300_000, speedup=1.4, sweep=7.5):
    return {
        "engine_events_per_sec": eps,
        "engine_events_per_sec_heap": heap,
        "engine_fastpath_speedup": speedup,
        "sweep_serial_s": sweep,
    }


def _scale(wall=0.6, eps=300_000):
    return {"runs": [{"defense": "null", "wall_s": wall, "events_per_sec": eps}]}


class TestCompare:
    def test_no_regression_within_threshold(self, trend):
        rows = trend.collect_rows(
            _micro(eps=390_000), _micro(), _scale(wall=0.65), _scale(), 0.2
        )
        assert rows
        assert not any(r["regressed"] for r in rows)

    def test_throughput_drop_flagged(self, trend):
        rows = trend.collect_rows(_micro(eps=200_000), _micro(), None, None, 0.2)
        flagged = {r["metric"] for r in rows if r["regressed"]}
        assert "micro: engine events/sec (fast path)" in flagged

    def test_wall_time_growth_flagged(self, trend):
        rows = trend.collect_rows(None, None, _scale(wall=1.0), _scale(), 0.2)
        flagged = {r["metric"] for r in rows if r["regressed"]}
        assert "scale/null: wall (s)" in flagged

    def test_throughput_gain_not_flagged(self, trend):
        rows = trend.collect_rows(_micro(eps=900_000), _micro(), None, None, 0.2)
        assert not any(r["regressed"] for r in rows)

    def test_missing_baseline_yields_no_rows(self, trend):
        assert trend.collect_rows(_micro(), None, _scale(), None, 0.2) == []


class TestLimits:
    def test_overhead_within_budget_not_flagged(self, trend):
        micro = dict(_micro(), sweep_checkpoint_overhead_pct=2.5)
        rows = trend.collect_rows(micro, _micro(), None, None, 0.2)
        row = next(
            r for r in rows if "journaling overhead" in r["metric"]
        )
        assert not row["regressed"]

    def test_overhead_over_budget_flagged_without_baseline(self, trend):
        # Absolute budgets guard even a first run: no committed
        # baseline (micro_base=None), yet the limit row still appears.
        micro = dict(_micro(), sweep_checkpoint_overhead_pct=7.5)
        rows = trend.collect_rows(micro, None, None, None, 0.2)
        (row,) = rows
        assert "journaling overhead" in row["metric"]
        assert row["baseline"] == 5.0
        assert row["regressed"]


class TestRender:
    def test_regression_shows_warning(self, trend):
        rows = trend.collect_rows(_micro(eps=100_000), _micro(), None, None, 0.2)
        text = trend.render_markdown(rows, 0.2, [])
        assert "regressed" in text
        assert ":warning:" in text

    def test_clean_run_reports_ok(self, trend):
        rows = trend.collect_rows(_micro(), _micro(), _scale(), _scale(), 0.2)
        text = trend.render_markdown(rows, 0.2, [])
        assert "No regressions" in text


class TestMain:
    def test_writes_github_summary(self, trend, tmp_path, monkeypatch, capsys):
        fresh = tmp_path / "BENCH_micro.json"
        fresh.write_text(json.dumps(_micro(eps=100_000)))
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        # Baselines resolve at the fresh file's repo-relative path.
        monkeypatch.setattr(trend, "REPO_ROOT", tmp_path)

        def fake_git(cmd, **kwargs):
            class Result:
                stdout = json.dumps(_micro())
            if cmd[:2] == ["git", "show"]:
                return Result()
            raise AssertionError(cmd)

        monkeypatch.setattr(trend.subprocess, "run", fake_git)
        code = trend.main(["--micro", str(fresh), "--scale", str(tmp_path / "nope.json")])
        assert code == 0  # advisory by default
        assert summary.exists()
        assert ":warning:" in summary.read_text()
        assert trend.main(
            ["--micro", str(fresh), "--scale", str(tmp_path / "nope.json"), "--strict"]
        ) == 1

    def test_exit_zero_without_snapshots(self, trend, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        code = trend.main(
            ["--micro", str(tmp_path / "a.json"), "--scale", str(tmp_path / "b.json")]
        )
        assert code == 0

    def test_fresh_file_outside_repo_has_no_baseline(self, trend, tmp_path):
        # A same-named committed file must NOT be used as the baseline
        # for a fresh snapshot living somewhere else.
        outside = tmp_path / "BENCH_micro.json"
        outside.write_text(json.dumps(_micro()))
        assert trend.load_baseline(str(outside), "HEAD") is None
