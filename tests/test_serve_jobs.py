"""Job schema validation and execution on the fault-tolerant runtime."""

import json

import pytest

from repro.scenarios.run import SCENARIO_DEFENSES, run_catalog
from repro.serve.jobs import (
    JobSpec,
    JobValidationError,
    execute_job,
    parse_job,
    spec_from_dict,
)


class TestParseJob:
    def test_minimal_payload_uses_defaults(self):
        spec = parse_job({"scenarios": ["flash-crowd"]})
        assert spec.scenarios == ("flash-crowd",)
        assert spec.defenses == tuple(SCENARIO_DEFENSES)
        assert spec.seed == 2021
        assert spec.n0_scale == 1.0
        assert spec.jobs == 1
        assert spec.max_retries == 2
        assert spec.t_rate is None
        assert spec.fault_spec is None
        assert spec.points == len(SCENARIO_DEFENSES)

    def test_empty_payload_means_whole_catalog(self):
        spec = parse_job({})
        assert len(spec.scenarios) >= 8
        assert spec.defenses == tuple(SCENARIO_DEFENSES)

    def test_explicit_null_means_default(self):
        spec = parse_job({
            "scenarios": ["flash-crowd"], "seed": None, "n0_scale": None,
            "jobs": None, "max_retries": None, "t_rate": None,
            "point_timeout": None, "fault_spec": None,
        })
        assert spec == parse_job({"scenarios": ["flash-crowd"]})

    def test_round_trip_through_store_json(self):
        spec = parse_job({
            "scenarios": ["flash-crowd"], "defenses": ["ERGO"],
            "seed": 7, "t_rate": 100.0, "n0_scale": 0.1, "jobs": 2,
            "max_retries": 1, "point_timeout": 30.0,
            "fault_spec": "slow@*:0.01",
        })
        assert spec_from_dict(json.loads(json.dumps(spec.as_dict()))) == spec

    @pytest.mark.parametrize("payload,fragment", [
        ("not a dict", "JSON object"),
        ({"scenario": ["x"]}, "unknown job field"),
        ({"scenarios": "flash-crowd"}, "list of names"),
        ({"scenarios": ["no-such-scenario"]}, "unknown scenario"),
        ({"defenses": ["NoSuchDefense"]}, "unknown defense"),
        ({"seed": "soon"}, "'seed'"),
        ({"seed": True}, "'seed'"),
        ({"t_rate": -1}, "'t_rate'"),
        ({"n0_scale": 0}, "'n0_scale'"),
        ({"jobs": 0}, "'jobs'"),
        ({"jobs": 10_000}, "'jobs'"),
        ({"max_retries": -1}, "'max_retries'"),
        ({"point_timeout": 0}, "'point_timeout'"),
        ({"fault_spec": "explode@1"}, "unknown fault kind"),
    ])
    def test_rejected_payloads(self, payload, fragment):
        with pytest.raises(JobValidationError) as info:
            parse_job(payload)
        assert fragment in str(info.value)


class TestExecuteJob:
    SPEC = JobSpec(
        scenarios=("flash-crowd",), defenses=("Null", "ERGO"),
        seed=7, n0_scale=0.05,
    )

    def test_rows_stream_through_on_row_and_match_report(self, tmp_path):
        seen = {}
        report = execute_job(
            self.SPEC,
            checkpoint=str(tmp_path / "job.ckpt"),
            on_row=lambda index, row: seen.update({index: row}),
        )
        assert sorted(seen) == [0, 1]
        assert [seen[i] for i in sorted(seen)] == report["rows"]
        assert report["failures"] == []
        # Full success removes the checkpoint journal (no data-dir litter).
        assert not (tmp_path / "job.ckpt").exists()

    def test_matches_direct_run_catalog(self):
        report = execute_job(self.SPEC)
        direct = run_catalog(
            scenarios=["flash-crowd"], defenses=["Null", "ERGO"],
            seed=7, n0_scale=0.05,
        )
        assert json.dumps(report["rows"], sort_keys=True) == (
            json.dumps(direct["rows"], sort_keys=True)
        )

    def test_injected_permanent_failure_collects_not_raises(self, tmp_path):
        spec = JobSpec(
            scenarios=("flash-crowd",), defenses=("Null", "ERGO"),
            seed=7, n0_scale=0.05, max_retries=0, fault_spec="raise@1x*",
        )
        report = execute_job(spec, checkpoint=str(tmp_path / "job.ckpt"))
        (failure,) = report["failures"]
        assert failure["index"] == 1
        assert len(report["rows"]) == 1
        # Failures keep the journal (with the good row) for a resume.
        assert (tmp_path / "job.ckpt").exists()

    def test_all_points_failing_yields_empty_rows(self, tmp_path):
        spec = JobSpec(
            scenarios=("flash-crowd",), defenses=("Null", "ERGO"),
            seed=7, n0_scale=0.05, max_retries=0, fault_spec="raise@*x*",
        )
        report = execute_job(spec, checkpoint=str(tmp_path / "job.ckpt"))
        assert len(report["failures"]) == 2
        assert report["rows"] == []
